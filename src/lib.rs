#![warn(missing_docs)]
//! **dualbank** — a reproduction of *Exploiting Dual Data-Memory Banks
//! in Digital Signal Processors* (Saghir, Chow & Lee, ASPLOS 1996).
//!
//! The paper's DSPs double memory bandwidth with two high-order
//! interleaved data banks (X and Y); this workspace rebuilds the whole
//! system the paper evaluates:
//!
//! * [`frontend`] — a C-subset (**DSP-C**) front-end;
//! * [`ir`] — the compiler IR, analyses, and reference interpreter;
//! * [`sched`] — the list-scheduling operation-compaction engine;
//! * [`bankalloc`] — **the paper's contribution**: compaction-based
//!   data partitioning and partial data duplication;
//! * [`backend`] — optimizations, register allocation, bank-aware code
//!   generation, and linking for the 9-unit VLIW model DSP;
//! * [`sim`] — the cycle-counting instruction-set simulator;
//! * [`workloads`] — the paper's 12 kernel and 11 application
//!   benchmarks, rewritten in DSP-C;
//! * [`driver`] — the parallel batch engine that fans the
//!   strategy×workload matrix over worker threads with a content-hashed
//!   artifact cache and per-stage telemetry.
//!
//! # Quickstart
//!
//! ```
//! use dualbank::{run_source, Strategy};
//!
//! let src = "
//!     float A[64]; float B[64]; float out;
//!     void main() {
//!         int i; float acc; acc = 0.0;
//!         for (i = 0; i < 64; i++) acc += A[i] * B[i];
//!         out = acc;
//!     }";
//! let base = run_source(src, Strategy::Baseline)?;
//! let cb = run_source(src, Strategy::CbPartition)?;
//! assert!(cb.cycles < base.cycles, "partitioning pairs the A/B loads");
//! # Ok::<(), dualbank::RunSourceError>(())
//! ```

pub use dsp_backend as backend;
pub use dsp_bankalloc as bankalloc;
pub use dsp_driver as driver;
pub use dsp_frontend as frontend;
pub use dsp_gen as gen;
pub use dsp_ir as ir;
pub use dsp_machine as machine;
pub use dsp_sched as sched;
pub use dsp_sim as sim;
pub use dsp_workloads as workloads;

pub use dsp_backend::{compile_source, CompileError, CompileOutput, Strategy};
pub use dsp_machine::{Bank, VliwProgram, Word};
pub use dsp_sim::{SimOptions, SimStats, Simulator};

/// The result of compiling and executing a DSP-C program.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Cycles executed (one VLIW instruction per cycle).
    pub cycles: u64,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// The linked program (symbols, disassembly, memory cost terms).
    pub program: VliwProgram,
    /// Final contents of every global, by name.
    pub globals: Vec<(String, Vec<Word>)>,
}

impl RunResult {
    /// Final contents of a global, by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&[Word]> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
    }

    /// The paper's first-order memory cost `X + Y + 2·S + I`, with `S`
    /// measured from the run's stack high-water mark.
    #[must_use]
    pub fn memory_cost(&self) -> u64 {
        u64::from(self.program.x_static_words)
            + u64::from(self.program.y_static_words)
            + 2 * u64::from(self.stats.max_stack_words())
            + u64::from(self.program.inst_count())
    }
}

/// Errors from [`run_source`].
#[derive(Debug)]
pub enum RunSourceError {
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(dsp_sim::SimError),
}

impl std::fmt::Display for RunSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSourceError::Compile(e) => write!(f, "{e}"),
            RunSourceError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunSourceError {}

impl From<CompileError> for RunSourceError {
    fn from(e: CompileError) -> RunSourceError {
        RunSourceError::Compile(e)
    }
}

impl From<dsp_sim::SimError> for RunSourceError {
    fn from(e: dsp_sim::SimError) -> RunSourceError {
        RunSourceError::Sim(e)
    }
}

/// Compile DSP-C under a strategy and execute it on the simulator.
///
/// # Errors
///
/// Returns [`RunSourceError`] on compilation or simulation failure.
pub fn run_source(src: &str, strategy: Strategy) -> Result<RunResult, RunSourceError> {
    let out = compile_source(src, strategy)?;
    let mut sim = Simulator::new(
        &out.program,
        SimOptions {
            dual_ported: strategy.dual_ported(),
            ..SimOptions::default()
        },
    );
    let stats = sim.run()?;
    let globals = out
        .program
        .symbols
        .iter()
        .map(|s| {
            let words = sim.read_symbol(&s.name).expect("symbol exists");
            (s.name.clone(), words)
        })
        .collect();
    Ok(RunResult {
        cycles: stats.cycles,
        stats,
        program: out.program,
        globals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_source_round_trip() {
        let r = run_source(
            "int out; void main() { int i; out = 0; for (i = 1; i <= 10; i++) out += i; }",
            Strategy::CbPartition,
        )
        .expect("runs");
        assert_eq!(r.global("out").unwrap()[0].as_i32(), 55);
        assert!(r.cycles > 0);
        assert!(r.memory_cost() > 0);
    }
}
