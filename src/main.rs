//! `dualbank` — command-line driver for the dual-bank DSP toolchain.
//!
//! ```text
//! dualbank run <file.c> [--strategy S] [--globals]
//! dualbank compile <file.c> [--strategy S] [--emit asm|ir|bin]
//! dualbank sweep <file.c> [--jobs N] [--json <path>]
//! dualbank bench <name|all> [--jobs N] [--json <path>] [--stages]
//! dualbank serve [--addr A] [--workers N] [--jobs N] [--queue N] [--deadline-ms N]
//! dualbank list
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dsp_serve::{Server, ServerConfig};
use dsp_trace::log as tracelog;
use dualbank::driver::json::Value;
use dualbank::driver::{
    parse_byte_budget, parse_cache_dir, parse_entry_budget, parse_worker_count, Engine,
    EngineOptions, Tracer,
};
use dualbank::{backend, workloads, SimOptions, Simulator, Strategy};

fn usage() -> &'static str {
    "dualbank — compiler & simulator for the dual-bank VLIW DSP\n\
     \n\
     USAGE:\n\
     \x20 dualbank run <file.c> [--strategy S] [--globals] [--fuel N]\n\
     \x20     compile and simulate; print cycles and memory cost\n\
     \x20 dualbank compile <file.c> [--strategy S] [--emit asm|ir|bin]\n\
     \x20     print the compiled program (default: asm disassembly)\n\
     \x20 dualbank sweep <file.c> [--jobs N] [--json <path>] [--cache-dir D] [--trace-out P]\n\
     \x20               [--partitioner P]\n\
     \x20     compare all compilation strategies\n\
     \x20 dualbank bench <name|all> [--jobs N] [--json <path>] [--stages] [--cache-dir D]\n\
     \x20               [--trace-out P] [--partitioner P]\n\
     \x20     run paper benchmark(s) across all strategies\n\
     \x20 dualbank fuzz [--seed N] [--count N] [--jobs N] [--corpus-dir D] [--json P]\n\
     \x20               [--mutate] [--mutants N] [--shrink-calls N] [--max-stmts N]\n\
     \x20               [--max-loop-depth N] [--max-arrays N] [--max-array-len N]\n\
     \x20               [--max-scalars N] [--max-funcs N] [--float-pct N] [--bias B]\n\
     \x20     differentially fuzz all strategies with generated DSP-C\n\
     \x20     programs (see docs/fuzzing.md); failures are shrunk to\n\
     \x20     minimal repros and archived in --corpus-dir; --mutate\n\
     \x20     byte-mutates sources through the front-end instead\n\
     \x20 dualbank serve [--addr A] [--workers N] [--jobs N] [--queue N]\n\
     \x20               [--deadline-ms N] [--read-deadline-ms N]\n\
     \x20               [--max-body-kb N] [--cache-capacity N]\n\
     \x20               [--cache-max-kb N] [--cache-dir D] [--cache-disk-max-kb N]\n\
     \x20               [--fuel N] [--no-trace]\n\
     \x20     serve compile/sweep over HTTP (see docs/serving.md);\n\
     \x20     --workers sizes the connection pool, --jobs the shared\n\
     \x20     compile/simulate executor (default: all cores);\n\
     \x20     --replica-id NAME tags responses/metrics, --drain-ms N\n\
     \x20     keeps serving in-flight work that long after a drain\n\
     \x20 dualbank router --replica HOST:PORT [...] [--addr A]\n\
     \x20     front a fleet of dsp-serve replicas with cache-affinity\n\
     \x20     routing and failover (`dualbank router --help` for flags)\n\
     \x20 dualbank chaos --upstream HOST:PORT [--scenario S] [--seed N]\n\
     \x20     deterministic fault-injection TCP proxy for the serving\n\
     \x20     tier (`dualbank chaos --help` for flags; docs/chaos.md)\n\
     \x20 dualbank obs <snapshot|export|watch> --target NAME=HOST:PORT [...]\n\
     \x20     fleet observability plane: aggregate /metrics, check SLO\n\
     \x20     burn rates, and stitch cross-process traces into one\n\
     \x20     Perfetto file (`dualbank obs --help`; docs/observability.md)\n\
     \x20 dualbank report-project [file.json]\n\
     \x20     reduce a run report (file or stdin) to its deterministic\n\
     \x20     projection — byte-comparable across nodes and runs\n\
     \x20 dualbank trace-validate <file.json>\n\
     \x20     sanity-check a --trace-out document (Perfetto-loadable,\n\
     \x20     complete events, nested spans)\n\
     \x20 dualbank list\n\
     \x20     list the paper's 23 benchmarks\n\
     \n\
     OPTIONS:\n\
     \x20 --jobs N    worker threads (default: all cores); results are\n\
     \x20             bit-identical for every N\n\
     \x20 --partitioner P  bank-partitioning algorithm: greedy (paper\n\
     \x20             \u{a7}3.1, default), refined (greedy + one downhill-\n\
     \x20             free improvement sweep), or fm (incremental\n\
     \x20             Fiduccia\u{2013}Mattheyses; see docs/partitioning.md)\n\
     \x20 --bias B    (fuzz) generator bias: none (default) or\n\
     \x20             partition-stress (many arrays, dense same-\n\
     \x20             statement access pairs; stresses the partitioner)\n\
     \x20 --json P    also write the full run report (cycles, stage\n\
     \x20             times, cache stats) as JSON to P (`-` = stdout)\n\
     \x20 --deterministic  with --json, emit only the reproducible core\n\
     \x20             (no wall times or cache flags) — byte-identical\n\
     \x20             across runs, worker counts, and cache states\n\
     \x20 --stages    print the per-stage time and cache summary\n\
     \x20 --cache-dir D         persistent artifact store: warm-start\n\
     \x20             compiles from D, publish fresh ones back (crash-\n\
     \x20             safe; corrupt entries are quarantined, IO errors\n\
     \x20             degrade to in-memory operation)\n\
     \x20 --cache-disk-max-kb N bound the on-disk store (LRU by mtime;\n\
     \x20             0 = unbounded, like --cache-max-kb)\n\
     \x20 --trace-out P  record per-stage spans and write them as a\n\
     \x20             Chrome trace-event file (open in Perfetto); off\n\
     \x20             when the flag is absent, with zero overhead\n\
     \x20 --no-trace  (serve) disable request spans, X-Request-Id\n\
     \x20             minting, /debug/trace, and latency histograms\n\
     \n\
     ENVIRONMENT:\n\
     \x20 DSP_LOG=error|warn|info|debug   stderr log level (default warn;\n\
     \x20             info shows cache warm-start and boot banners)\n\
     \n\
     STRATEGIES: base cb pr dup seldup fulldup ideal (default: cb)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        println!("{}", usage());
        return Ok(());
    };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "compile" => cmd_compile(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "router" => dsp_router::run_router(&args[1..]),
        "chaos" => dsp_chaos::run_chaos(&args[1..]),
        "obs" => dsp_obs::run_obs(&args[1..]),
        "report-project" => cmd_report_project(&args[1..]),
        "trace-validate" => cmd_trace_validate(&args[1..]),
        "list" => {
            for b in workloads::all() {
                println!(
                    "{:<14} {:>12}  {}",
                    b.name,
                    b.kind.to_string(),
                    b.description
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn read_source(args: &[String]) -> Result<String, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && flag_is_not_value(args, a))
        .ok_or("missing input file")?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// True if `candidate` is not the value of a `--flag value` pair.
fn flag_is_not_value(args: &[String], candidate: &String) -> bool {
    match args.iter().position(|a| a == candidate) {
        Some(i) if i > 0 => !args[i - 1].starts_with("--"),
        _ => true,
    }
}

fn strategy_of(args: &[String]) -> Result<Strategy, String> {
    match flag_value(args, "--strategy") {
        Some(s) => Strategy::parse(&s),
        None => Ok(Strategy::CbPartition),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let src = read_source(args)?;
    let strategy = strategy_of(args)?;
    let fuel: u64 = match flag_value(args, "--fuel") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--fuel expects a cycle count, got `{v}`"))?,
        None => 10_000_000,
    };
    let out = backend::compile_source(&src, strategy).map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(
        &out.program,
        SimOptions {
            dual_ported: strategy.dual_ported(),
            fuel,
        },
    );
    let stats = sim.run().map_err(|e| e.to_string())?;
    let globals: Vec<(String, Vec<dualbank::Word>)> = out
        .program
        .symbols
        .iter()
        .map(|s| (s.name.clone(), sim.read_symbol(&s.name).expect("symbol")))
        .collect();
    let result = dualbank::RunResult {
        cycles: stats.cycles,
        stats,
        program: out.program,
        globals,
    };
    println!("strategy:        {strategy}");
    println!("cycles:          {}", result.cycles);
    println!("instructions:    {}", result.program.inst_count());
    println!("dual-mem cycles: {}", result.stats.dual_mem_cycles);
    println!("ops/cycle:       {:.2}", result.stats.ops_per_cycle());
    println!("memory cost:     {} words (X+Y+2S+I)", result.memory_cost());
    if args.iter().any(|a| a == "--globals") {
        println!("\nglobals:");
        for (name, words) in &result.globals {
            let rendered: Vec<String> = words
                .iter()
                .take(16)
                .map(|w| format!("{:#x}", w.0))
                .collect();
            let ellipsis = if words.len() > 16 { " …" } else { "" };
            println!("  {name:<16} [{}{ellipsis}]", rendered.join(", "));
        }
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let src = read_source(args)?;
    let strategy = strategy_of(args)?;
    let emit = flag_value(args, "--emit").unwrap_or_else(|| "asm".into());
    let out = backend::compile_source(&src, strategy).map_err(|e| e.to_string())?;
    match emit.as_str() {
        "asm" => print!("{}", out.program.disassemble()),
        "ir" => print!("{}", out.ir.dump()),
        "bin" => {
            let words = dualbank::machine::encode_stream(&out.program.insts);
            println!(
                "; {} instructions, {} encoded words",
                out.program.inst_count(),
                words.len()
            );
            for chunk in words.chunks(8) {
                let hex: Vec<String> = chunk.iter().map(|w| format!("{w:08x}")).collect();
                println!("{}", hex.join(" "));
            }
        }
        other => return Err(format!("unknown --emit `{other}` (asm|ir|bin)")),
    }
    Ok(())
}

/// The tracer for a batch command: enabled (and destined for `path`)
/// only when `--trace-out <path>` was given, else the no-op recorder.
fn tracer_of(args: &[String]) -> (Arc<Tracer>, Option<String>) {
    match flag_value(args, "--trace-out") {
        Some(path) => (Tracer::new(65536), Some(path)),
        None => (Tracer::disabled(), None),
    }
}

/// Honor `--trace-out <path>`: write the run's spans as a Chrome
/// trace-event document (load it in Perfetto or `chrome://tracing`).
fn write_trace(tracer: &Tracer, path: Option<&str>) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    std::fs::write(path, tracer.export_chrome()).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Build an engine from the shared `--jobs` / `--partitioner` /
/// `--cache-dir` / `--cache-disk-max-kb` flags.
fn engine_of(args: &[String], tracer: Arc<Tracer>) -> Result<Engine, String> {
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => parse_worker_count("--jobs", &v)?,
        None => 0,
    };
    let partitioner = match flag_value(args, "--partitioner") {
        Some(v) => backend::PartitionerKind::parse(&v)?,
        None => backend::PartitionerKind::default(),
    };
    let cache_dir = match flag_value(args, "--cache-dir") {
        Some(v) => Some(parse_cache_dir("--cache-dir", &v)?),
        None => None,
    };
    let cache_disk_max_bytes = match flag_value(args, "--cache-disk-max-kb") {
        Some(v) => parse_byte_budget("--cache-disk-max-kb", &v)?,
        None => None,
    };
    tracelog::route_events_to(&tracer);
    let engine = Engine::new(EngineOptions {
        jobs,
        config: backend::CompileConfig {
            partitioner,
            ..backend::CompileConfig::default()
        },
        cache_dir,
        cache_disk_max_bytes,
        tracer,
        ..EngineOptions::default()
    });
    if let Some(store) = engine.cache().store() {
        let sweep = store.sweep();
        if let Some(err) = &sweep.error {
            tracelog::warn(
                "dualbank",
                &format!("cache dir unusable, running in-memory only: {err}"),
            );
        } else {
            tracelog::info(
                "dualbank",
                &format!(
                    "cache: {} — {} artifact(s) recovered ({} KiB), {} quarantined, {} tmp cleaned",
                    store.dir().display(),
                    sweep.recovered,
                    sweep.bytes / 1024,
                    sweep.quarantined,
                    sweep.tmp_cleaned,
                ),
            );
        }
    }
    Ok(engine)
}

/// Honor `--json <path>` (`-` writes to stdout). With `--deterministic`
/// the report is projected down to its machine-reproducible core —
/// byte-identical across runs, worker counts, and cache temperature —
/// so crash-recovery checks can compare documents with a plain `diff`.
fn emit_json(args: &[String], report: &dualbank::driver::RunReport) -> Result<(), String> {
    let Some(path) = flag_value(args, "--json") else {
        return Ok(());
    };
    let json = if args.iter().any(|a| a == "--deterministic") {
        report.deterministic_json()
    } else {
        report.to_json()
    };
    if path == "-" {
        print!("{json}");
        Ok(())
    } else {
        std::fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let src = read_source(args)?;
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && flag_is_not_value(args, a))
        .map_or_else(|| "sweep".to_string(), |p| p.clone());
    // Wrap the input file as an ad-hoc benchmark. No checked globals:
    // there is no ground truth for arbitrary user code, so the engine
    // skips the reference-interpreter verification.
    let bench = workloads::Benchmark {
        name,
        kind: workloads::Kind::Application,
        description: String::new(),
        source: src,
        check_globals: Vec::new(),
    };
    let (tracer, trace_out) = tracer_of(args);
    let engine = engine_of(args, Arc::clone(&tracer))?;
    let report = engine
        .run_matrix(std::slice::from_ref(&bench), &Strategy::ALL)
        .map_err(|e| e.to_string())?;
    write_trace(&tracer, trace_out.as_deref())?;
    println!(
        "{:<8} {:>10} {:>8} {:>10} {:>10}",
        "strategy", "cycles", "gain %", "insts", "mem words"
    );
    let base = report
        .job(&bench.name, Strategy::Baseline)
        .map_or(0, |j| j.measurement.cycles);
    for &strategy in &report.strategies {
        let Some(job) = report.job(&bench.name, strategy) else {
            continue;
        };
        let m = &job.measurement;
        let gain = (base as f64 / m.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<8} {:>10} {:>8.1} {:>10} {:>10}",
            strategy.label(),
            m.cycles,
            gain,
            m.inst_words,
            m.memory_cost
        );
    }
    emit_json(args, &report)
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name (or `all`)")?;
    let benches = if name == "all" {
        workloads::all()
    } else {
        vec![workloads::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `dualbank list`)"))?]
    };
    let (tracer, trace_out) = tracer_of(args);
    let engine = engine_of(args, Arc::clone(&tracer))?;
    let report = engine
        .run_matrix(&benches, &Strategy::ALL)
        .map_err(|e| e.to_string())?;
    write_trace(&tracer, trace_out.as_deref())?;
    print!("{:<14}", "benchmark");
    for s in &report.strategies {
        print!(" {:>9}", s.label());
    }
    println!();
    for bench in &benches {
        print!("{:<14}", bench.name);
        for &s in &report.strategies {
            match report.job(&bench.name, s) {
                Some(j) => print!(" {:>9}", j.measurement.cycles),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    if args.iter().any(|a| a == "--stages") {
        println!();
        print!("{}", report.stage_table());
    }
    emit_json(args, &report)
}

/// Parse an optional numeric flag with a default.
fn num_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{v}`")),
        None => Ok(default),
    }
}

/// `dualbank fuzz` — differential fuzzing of all strategies against the
/// reference interpreter (or, with `--mutate`, byte-level mutation of
/// generated sources through the front-end). See docs/fuzzing.md.
fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    use dualbank::gen::{fuzz, GenConfig};

    let seed = num_flag(args, "--seed", 1u64)?;
    let count = num_flag(args, "--count", 100usize)?;
    let config = GenConfig {
        max_stmts: num_flag(args, "--max-stmts", GenConfig::default().max_stmts)?,
        max_loop_depth: num_flag(
            args,
            "--max-loop-depth",
            GenConfig::default().max_loop_depth,
        )?,
        max_arrays: num_flag(args, "--max-arrays", GenConfig::default().max_arrays)?,
        max_array_len: num_flag(args, "--max-array-len", GenConfig::default().max_array_len)?,
        max_scalars: num_flag(args, "--max-scalars", GenConfig::default().max_scalars)?,
        max_funcs: num_flag(args, "--max-funcs", GenConfig::default().max_funcs)?,
        float_pct: num_flag(args, "--float-pct", GenConfig::default().float_pct)?,
        bias: match flag_value(args, "--bias") {
            Some(v) => dualbank::gen::Bias::parse(&v)?,
            None => dualbank::gen::Bias::default(),
        },
    };

    let json_out = flag_value(args, "--json");
    let emit = |json: String| -> Result<(), String> {
        match json_out.as_deref() {
            None => Ok(()),
            Some("-") => {
                print!("{json}");
                Ok(())
            }
            Some(path) => {
                std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))
            }
        }
    };

    if args.iter().any(|a| a == "--mutate") {
        let opts = fuzz::MutateOptions {
            seed,
            count,
            mutants_per_program: num_flag(args, "--mutants", 40usize)?,
            config,
        };
        let report = dualbank::gen::run_mutation_campaign(&opts);
        println!(
            "mutation campaign: seed {seed}, {} mutants — {} accepted, {} rejected, {} panic(s)",
            report.mutants,
            report.accepted,
            report.rejected,
            report.panics.len()
        );
        for p in &report.panics {
            println!("  PANIC (base program {}): {}", p.index, p.message);
        }
        emit(report.to_json())?;
        if report.panics.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "front-end panicked on {} mutated input(s)",
                report.panics.len()
            ))
        }
    } else {
        let opts = fuzz::FuzzOptions {
            seed,
            count,
            config,
            corpus_dir: flag_value(args, "--corpus-dir").map(std::path::PathBuf::from),
            diff: dualbank::gen::DiffOptions {
                // Undocumented test hook: force a synthetic mismatch on
                // programs containing the given substring, to exercise
                // the shrink + corpus pipeline end to end.
                inject_when_contains: flag_value(args, "--inject-mismatch"),
                ..dualbank::gen::DiffOptions::default()
            },
            max_shrink_calls: num_flag(args, "--shrink-calls", 1500usize)?,
            jobs: num_flag(args, "--jobs", 0usize)?,
        };
        let report = dualbank::gen::run_campaign(&opts).map_err(|e| e.to_string())?;
        println!(
            "fuzz campaign: seed {seed}, {} programs × {} strategies — {} passed, {} failed",
            report.count,
            Strategy::ALL.len(),
            report.passed,
            report.failed
        );
        println!(
            "  {} source bytes generated, cycle digest {:#018x}",
            report.total_source_bytes, report.cycles_digest
        );
        for s in &report.strategies {
            println!(
                "  {:<8} total {:>12} cycles  (min {:>6}, max {:>8})",
                s.strategy.label(),
                s.total_cycles,
                s.min_cycles,
                s.max_cycles
            );
        }
        for f in &report.failures {
            println!(
                "  FAIL program {} (seed {:#018x}): {} — {} -> {} bytes{}",
                f.index,
                f.program_seed,
                f.kind.label(),
                f.original_bytes,
                f.shrunk_bytes,
                f.corpus_file
                    .as_ref()
                    .map_or(String::new(), |n| format!(" [corpus: {n}]"))
            );
        }
        if !report.aggregate_ideal_ok {
            println!("  AGGREGATE FAIL: a strategy's summed cycles beat Ideal's");
        }
        emit(report.to_json())?;
        if report.failed > 0 {
            Err(format!("{} program(s) diverged", report.failed))
        } else if !report.aggregate_ideal_ok {
            Err("aggregate cycle invariant violated: a strategy's total beats Ideal's".to_string())
        } else {
            Ok(())
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(v) = flag_value(args, "--workers") {
        config.workers = parse_worker_count("--workers", &v)?;
    }
    if let Some(v) = flag_value(args, "--jobs") {
        config.jobs = parse_worker_count("--jobs", &v)?;
    }
    if let Some(v) = flag_value(args, "--queue") {
        config.queue_capacity = parse_worker_count("--queue", &v)?;
    }
    if let Some(v) = flag_value(args, "--deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--deadline-ms expects milliseconds, got `{v}`"))?;
        config.deadline = Duration::from_millis(ms);
    }
    if let Some(v) = flag_value(args, "--read-deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--read-deadline-ms expects milliseconds, got `{v}`"))?;
        config.read_deadline = Duration::from_millis(ms); // 0 disables
    }
    if let Some(v) = flag_value(args, "--max-body-kb") {
        let kb: usize = v
            .parse()
            .map_err(|_| format!("--max-body-kb expects a size, got `{v}`"))?;
        config.max_body = kb * 1024;
    }
    if let Some(v) = flag_value(args, "--cache-capacity") {
        config.cache_capacity = parse_entry_budget("--cache-capacity", &v)?; // 0 = unbounded
    }
    if let Some(v) = flag_value(args, "--cache-max-kb") {
        config.cache_max_bytes = parse_byte_budget("--cache-max-kb", &v)?; // 0 = unbounded
    }
    if let Some(v) = flag_value(args, "--cache-dir") {
        config.cache_dir = Some(parse_cache_dir("--cache-dir", &v)?);
    }
    if let Some(v) = flag_value(args, "--cache-disk-max-kb") {
        config.cache_disk_max_bytes = parse_byte_budget("--cache-disk-max-kb", &v)?;
        // 0 = unbounded
    }
    if let Some(v) = flag_value(args, "--fuel") {
        config.fuel = v
            .parse()
            .map_err(|_| format!("--fuel expects a cycle count, got `{v}`"))?;
    }
    if let Some(id) = flag_value(args, "--replica-id") {
        config.replica_id = Some(id);
    }
    if let Some(v) = flag_value(args, "--drain-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--drain-ms expects milliseconds, got `{v}`"))?;
        config.drain_grace = Duration::from_millis(ms);
    }
    config.trace = !args.iter().any(|a| a == "--no-trace");
    let server = Server::bind(config.clone()).map_err(|e| format!("cannot bind: {e}"))?;
    println!("dsp-serve listening on http://{}", server.local_addr());
    println!(
        "  queue {} · deadline {}ms · max body {} KiB · cache capacity {} · cache bytes {}",
        config.queue_capacity,
        config.deadline.as_millis(),
        config.max_body / 1024,
        config
            .cache_capacity
            .map_or("unbounded".to_string(), |c| c.to_string()),
        config
            .cache_max_bytes
            .map_or("unbounded".to_string(), |b| format!("{} KiB", b / 1024)),
    );
    println!(
        "  executor: {} job worker(s) shared by /compile (interactive) and /sweep (batch)",
        server.executor_workers()
    );
    if let Some(sweep) = server.disk_sweep() {
        match &sweep.error {
            Some(err) => println!("  cache dir unusable, in-memory only: {err}"),
            None => println!(
                "  warm start: {} artifact(s) recovered ({} KiB), {} quarantined, {} tmp cleaned",
                sweep.recovered,
                sweep.bytes / 1024,
                sweep.quarantined,
                sweep.tmp_cleaned,
            ),
        }
    }
    println!("  endpoints: POST /compile · POST /sweep · GET /healthz · GET /metrics");
    println!("  graceful shutdown: POST /admin/shutdown (drains in-flight requests)");
    if config.trace {
        println!("  tracing: on — X-Request-Id echo, GET /debug/trace, latency histograms");
    } else {
        println!("  tracing: off (--no-trace)");
    }
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// `dualbank report-project [file.json]` — reduce a full
/// `dualbank-run-report/v1` document (from a file, or stdin when the
/// path is absent or `-`) to its deterministic projection: the exact
/// bytes `--json --deterministic` emits. This is how multi-node sweep
/// output is compared against a single node's — wall times and cache
/// telemetry differ, the projection must not.
fn cmd_report_project(args: &[String]) -> Result<(), String> {
    let doc = match args.first().map(String::as_str) {
        None | Some("-") => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
    };
    let projected = dualbank::driver::project_deterministic_json(&doc)?;
    print!("{projected}");
    Ok(())
}

/// A complete (`"ph": "X"`) trace event's time lane: thread, start,
/// duration, all in microseconds as Chrome's trace format specifies.
struct CompleteEvent {
    tid: u64,
    ts: f64,
    dur: f64,
}

/// `dualbank trace-validate <file.json>` — assert a `--trace-out`
/// document is what Perfetto expects: valid JSON with a `traceEvents`
/// array of complete events, at least one of which nests inside
/// another on the same thread lane (proof the parent/child structure
/// survived export).
fn cmd_trace_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing trace file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = dualbank::driver::json::parse(&text)
        .map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("`{path}` has no traceEvents array"))?;
    let complete: Vec<CompleteEvent> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            let num = |k: &str| e.get(k).and_then(Value::as_f64);
            Ok(CompleteEvent {
                tid: e.get("tid").and_then(Value::as_u64).unwrap_or(0),
                ts: num("ts").ok_or_else(|| format!("a complete event in `{path}` has no ts"))?,
                dur: num("dur")
                    .ok_or_else(|| format!("a complete event in `{path}` has no dur"))?,
            })
        })
        .collect::<Result<_, String>>()?;
    if complete.is_empty() {
        return Err(format!("`{path}` contains no complete (ph=X) events"));
    }
    // A child nests when its [ts, ts+dur] interval sits inside a
    // longer event's interval on the same thread lane.
    let nested = complete
        .iter()
        .filter(|b| {
            complete.iter().any(|a| {
                a.tid == b.tid && b.dur < a.dur && b.ts >= a.ts && b.ts + b.dur <= a.ts + a.dur
            })
        })
        .count();
    if nested == 0 {
        return Err(format!(
            "`{path}` has {} complete events but none nest — span parenting is broken",
            complete.len()
        ));
    }
    println!(
        "{path}: ok — {} events, {} complete, {nested} nested",
        events.len(),
        complete.len()
    );
    Ok(())
}
