//! A walkthrough of the paper's Figures 4 and 5: build the interference
//! graph of the example program from §3.1 and watch the greedy
//! partitioner move nodes until the cost stops falling (7 → 3 → 2).
//!
//! Run: `cargo run --example partition_walkthrough`

use dualbank::bankalloc::{greedy_partition, AliasClasses, Var, WeightMode};
use dualbank::frontend::compile_str;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example program of Figure 4: every pairing of A, B, C, D may
    // be accessed simultaneously; A and D also pair inside a loop.
    let src = "
        int A[8]; int B[8]; int C[8]; int D[8];
        int j; int k;
        void main() {
            int i;
            j = 1; k = 2;
            D[0] = A[j] + B[k];
            B[0] = B[j] + D[k];
            C[0] = B[j] + C[k];
            C[1] = A[j] - C[k];
            for (i = 0; i < 5; i++)
                A[i] = C[0] + D[i];
        }";
    let program = compile_str(src)?;
    let alias = AliasClasses::build(&program);
    let built = dualbank::bankalloc::build_interference(&program, &alias, WeightMode::LoopDepth);

    let name = |v: Var| -> String {
        match v {
            Var::Global(g) => program.globals[g.index()].name.clone(),
            other => other.to_string(),
        }
    };

    println!("interference graph (edge weights = loop depth + 1):");
    for (a, b, w) in built.graph.iter_edges() {
        println!("  {} -- {}  weight {w}", name(a), name(b));
    }
    println!(
        "\ninitial cost (all variables in bank X): {}",
        built.graph.total_weight()
    );

    let partition = greedy_partition(&built.graph);
    for (step, mv) in partition.trace.iter().enumerate() {
        println!(
            "step {}: move {} to bank Y  (gain {}, cost now {})",
            step + 1,
            name(mv.node),
            mv.gain,
            mv.cost_after
        );
    }
    println!("\nfinal assignment:");
    for v in built.graph.active_nodes() {
        println!("  {:<10} -> bank {}", name(v), partition.bank_of(v));
    }
    println!(
        "\nPaper Figure 5 walks the same algorithm on its four-node\n\
         example: cost 7, move D (cost 3), move C (cost 2), stop."
    );
    Ok(())
}
