//! Sweep any benchmark of the paper's suite (or all of them) across
//! every compilation strategy, through the parallel driver engine.
//!
//! Run: `cargo run --release --example benchmark_sweep [name] [jobs]`
//!
//! With no argument, all 23 benchmarks run; with a name (`lpc`,
//! `fft_1024`, …) only that one. The second argument sets the worker
//! count (default: all cores) — results are bit-identical for any
//! value.

use dualbank::backend::Strategy;
use dualbank::driver::{Engine, EngineOptions};
use dualbank::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1);
    let jobs: usize = match std::env::args().nth(2) {
        Some(n) => n.parse()?,
        None => 0,
    };
    let benches = match name.as_deref() {
        Some(name) => {
            let b =
                workloads::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            vec![b]
        }
        None => workloads::all(),
    };
    let engine = Engine::new(EngineOptions {
        jobs,
        ..EngineOptions::default()
    });
    let report = engine.run_matrix(&benches, &Strategy::ALL)?;
    print!("{}", report.cycles_table());
    println!();
    print!("{}", report.stage_table());
    Ok(())
}
