//! Sweep any benchmark of the paper's suite (or all of them) across
//! every compilation strategy.
//!
//! Run: `cargo run --release --example benchmark_sweep [name]`
//!
//! With no argument, all 23 benchmarks run; with a name (`lpc`,
//! `fft_1024`, …) only that one.

use dualbank::backend::Strategy;
use dualbank::workloads::{self, runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let benches = match arg.as_deref() {
        Some(name) => {
            let b = workloads::by_name(name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            vec![b]
        }
        None => workloads::all(),
    };
    println!(
        "{:<14} {:>6}  {:>9} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7}",
        "benchmark", "kind", "Base", "CB", "Pr", "Dup", "SelDup", "FullDup", "Ideal"
    );
    for bench in benches {
        let ms = runner::measure_all(&bench)?;
        assert_eq!(ms.len(), Strategy::ALL.len());
        print!("{:<14} {:>6} ", bench.name, bench.kind.to_string());
        for m in &ms {
            print!(" {:>8}", m.cycles);
        }
        println!();
    }
    Ok(())
}
