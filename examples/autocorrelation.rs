//! The paper's Figure 6: an autocorrelation loop reads the *same* array
//! at two dynamic offsets — no partitioning can split one array across
//! two banks, so only partial data duplication (or a dual-ported
//! memory) exposes the parallelism.
//!
//! Run: `cargo run --example autocorrelation`

use dualbank::bankalloc::Var;
use dualbank::{run_source, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 6 of the paper, wrapped in a lag sweep as lpc uses it.
    let src = "
        float signal[128] = {1.0, 2.0, 3.0};
        float R[24];
        float out;
        void main() {
            int n; int m; float acc;
            for (m = 1; m <= 24; m++)
                for (n = 0; n < 128 - m; n++)
                    R[m - 1] += signal[n] * signal[n + m];
            acc = 0.0;
            for (n = 0; n < 24; n++) acc += R[n];
            out = acc;
        }";

    // What does the allocation pass see?
    let out = dualbank::compile_source(src, Strategy::PartialDup)?;
    println!("duplicated variables:");
    for v in out.alloc.duplicated() {
        match v {
            Var::Global(g) => println!("  {} (global)", out.ir.globals[g.index()].name),
            other => println!("  {other}"),
        }
    }
    println!("\ninterference graph:\n{}", out.alloc.graph.to_dot());

    println!("strategy   cycles  memory words");
    println!("---------------------------------");
    let mut baseline = 0u64;
    for strategy in [
        Strategy::Baseline,
        Strategy::CbPartition,
        Strategy::PartialDup,
        Strategy::FullDup,
        Strategy::Ideal,
    ] {
        let r = run_source(src, strategy)?;
        if strategy == Strategy::Baseline {
            baseline = r.cycles;
        }
        let gain = (baseline as f64 / r.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<9} {:>7}  {:>12}  ({gain:+.1}%)",
            strategy.label(),
            r.cycles,
            r.memory_cost(),
        );
    }
    println!(
        "\nPartitioning cannot split `signal` against itself; duplication\n\
         stores a copy in each bank and recovers nearly the dual-ported\n\
         gain at a fraction of full duplication's memory cost — the\n\
         paper's lpc story (3% -> 34%, §4.1)."
    );
    Ok(())
}
