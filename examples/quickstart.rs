//! Quickstart: compile the paper's motivating FIR filter (Figure 1)
//! under every configuration and watch the dual banks pay off.
//!
//! Run: `cargo run --example quickstart`

use dualbank::{run_source, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1: an N-th order FIR filter. Allocating A and
    // B to different banks lets one element of each load per cycle.
    let src = "
        float A[64] = {1.0};
        float B[64] = {0.5};
        float out;
        void main() {
            int i; float sum; sum = 0.0;
            for (i = 0; i < 64; i++)
                sum += A[i] * B[i];
            out = sum;
        }";

    println!("strategy   cycles  dual-mem cycles  memory words");
    println!("--------------------------------------------------");
    let mut baseline = 0u64;
    for strategy in Strategy::ALL {
        let r = run_source(src, strategy)?;
        if strategy == Strategy::Baseline {
            baseline = r.cycles;
        }
        let gain = (baseline as f64 / r.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<9} {:>7}  {:>15}  {:>12}  ({gain:+.1}%)",
            strategy.label(),
            r.cycles,
            r.stats.dual_mem_cycles,
            r.memory_cost(),
        );
    }

    // Show the compiled inner loop: two parallel loads feeding a MAC,
    // exactly like the paper's hand-written DSP56001 assembly.
    let out = dualbank::compile_source(src, Strategy::CbPartition)?;
    println!("\nCB-partitioned code:\n{}", out.program.disassemble());
    Ok(())
}
