#!/usr/bin/env bash
# Repo-wide quality gate: build, tests, formatting, lints.
#
# Run from the repository root:
#
#   scripts/check.sh
#
# Pass extra cargo flags via CARGO_FLAGS (e.g. CARGO_FLAGS=--offline).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== cargo build --release =="
cargo build --release --workspace $CARGO_FLAGS

echo "== cargo test -q =="
cargo test -q --workspace $CARGO_FLAGS

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets $CARGO_FLAGS -- -D warnings

echo "== dsp-serve loopback smoke test =="
# Self-contained: spawns a server on a free port, drives /compile over
# 2 keep-alive connections, and exits nonzero on any dropped request.
./target/release/dsp-serve-load --spawn --connections 2 --requests 25

echo "All checks passed."
