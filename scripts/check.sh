#!/usr/bin/env bash
# Repo-wide quality gate: build, tests, formatting, lints.
#
# Run from the repository root:
#
#   scripts/check.sh
#
# Pass extra cargo flags via CARGO_FLAGS (e.g. CARGO_FLAGS=--offline).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== cargo build --release =="
cargo build --release --workspace $CARGO_FLAGS

echo "== cargo test -q =="
cargo test -q --workspace $CARGO_FLAGS

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets $CARGO_FLAGS -- -D warnings

echo "== dsp-serve loopback smoke test =="
# Self-contained: spawns a server on a free port, drives /compile over
# 2 keep-alive connections, and exits nonzero on any dropped request.
./target/release/dsp-serve-load --spawn --connections 2 --requests 25

echo "== dsp-serve mixed-load smoke test =="
# One bench-all /sweep streaming concurrently with /compile traffic
# through the shared executor. Exits nonzero on any dropped request,
# any truncated sweep, or sweep jobs whose deterministic fields
# (cycles, memory cost, bank stats) differ between runs.
./target/release/dsp-serve-load --spawn --mixed --connections 2 --requests 25 \
  --sweep-requests 2 --bench all

echo "== persistent-cache crash smoke test =="
# Kill a sweep mid-run, restart over the crashed store, and require the
# warmed report to be byte-identical to a cold store-less run. The
# atomic tmp-file+rename publish means a SIGKILL at any instant must
# leave zero quarantined entries.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
./target/release/dualbank bench all --jobs 1 --cache-dir "$CACHE_DIR" \
  >/dev/null 2>&1 &
KILL_PID=$!
sleep 0.3
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
# DSP_LOG=info: the warm-start banner (grepped below) logs at info.
DSP_LOG=info ./target/release/dualbank bench all --jobs 1 --cache-dir "$CACHE_DIR" \
  --json "$CACHE_DIR/warm.json" --deterministic >/dev/null 2>"$CACHE_DIR/stderr"
grep -q ' 0 quarantined' "$CACHE_DIR/stderr" \
  || { echo "FAIL: crash left quarantined entries"; cat "$CACHE_DIR/stderr"; exit 1; }
./target/release/dualbank bench all --jobs 1 \
  --json "$CACHE_DIR/cold.json" --deterministic >/dev/null
cmp "$CACHE_DIR/warm.json" "$CACHE_DIR/cold.json" \
  || { echo "FAIL: post-crash warm report differs from cold run"; exit 1; }

echo "== trace smoke test =="
# --trace-out must yield a Perfetto-loadable Chrome trace document
# with nonzero nested spans, and tracing must not perturb results:
# the deterministic report is byte-identical with tracing on or off.
./target/release/dualbank bench fir_32_1 --jobs 2 --trace-out "$CACHE_DIR/trace.json" \
  --json "$CACHE_DIR/traced.json" --deterministic >/dev/null
./target/release/dualbank trace-validate "$CACHE_DIR/trace.json"
./target/release/dualbank bench fir_32_1 --jobs 2 \
  --json "$CACHE_DIR/untraced.json" --deterministic >/dev/null
cmp "$CACHE_DIR/traced.json" "$CACHE_DIR/untraced.json" \
  || { echo "FAIL: tracing perturbed the deterministic report"; exit 1; }

echo "== dsp-router multi-node smoke test =="
# Two replicas behind the router: the routed sweep must reduce to the
# byte-identical deterministic report of a plain CLI run, draining one
# replica must be absorbed by the ring, and load pushed through the
# router afterwards must finish with zero failed requests.
RDIR=$(mktemp -d)
RA_PID=""; RB_PID=""; RT_PID=""
trap 'kill $RA_PID $RB_PID $RT_PID 2>/dev/null || true; rm -rf "$CACHE_DIR" "$RDIR"' EXIT
# --workers 6 gives each replica connection headroom for the router's
# pooled keep-alives plus its readiness probes (see docs/serving.md).
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id ra >"$RDIR/ra.log" 2>&1 & RA_PID=$!
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id rb >"$RDIR/rb.log" 2>&1 & RB_PID=$!
node_addr() { # extract host:port from a node's startup banner
  for _ in $(seq 100); do
    local a
    a=$(sed -n 's#^dsp-[a-z-]* listening on http://##p' "$1" | head -n1)
    if [ -n "$a" ]; then echo "$a"; return 0; fi
    sleep 0.1
  done
  echo "FAIL: no startup banner in $1" >&2; cat "$1" >&2; return 1
}
RA_ADDR=$(node_addr "$RDIR/ra.log")
RB_ADDR=$(node_addr "$RDIR/rb.log")
./target/release/dsp-router --addr 127.0.0.1:0 --replicas "$RA_ADDR,$RB_ADDR" \
  >"$RDIR/router.log" 2>&1 & RT_PID=$!
RT_ADDR=$(node_addr "$RDIR/router.log")
for _ in $(seq 100); do
  curl -fsS "http://$RT_ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS -X POST "http://$RT_ADDR/sweep" -H 'Content-Type: application/json' \
  -d '{"bench": "fir_32_1"}' >"$RDIR/routed.json"
./target/release/dualbank report-project "$RDIR/routed.json" >"$RDIR/routed.det.json"
./target/release/dualbank bench fir_32_1 --jobs 1 \
  --json "$RDIR/single.json" --deterministic >/dev/null
cmp "$RDIR/routed.det.json" "$RDIR/single.json" \
  || { echo "FAIL: routed sweep differs from a single-node run under projection"; exit 1; }
# Drain one replica and wait for the router to eject it from the ring.
# (Fetch to a file rather than `curl | grep -q`: under pipefail, grep's
# early exit on a match EPIPEs curl and fails the pipeline spuriously.)
curl -fsS -X POST "http://$RB_ADDR/admin/shutdown" >/dev/null
for _ in $(seq 100); do
  curl -fsS "http://$RT_ADDR/metrics" -o "$RDIR/rt-metrics.txt" || true
  grep -q "dsp_router_upstream_up{replica=\"$RB_ADDR\"} 0" "$RDIR/rt-metrics.txt" && break
  sleep 0.1
done
grep -q "dsp_router_upstream_up{replica=\"$RB_ADDR\"} 0" "$RDIR/rt-metrics.txt" \
  || { echo "FAIL: router never ejected the drained replica"; exit 1; }
# Load through the router against the surviving replica: the load tool
# exits nonzero on any failed request.
./target/release/dsp-serve-load --addr "$RT_ADDR" --connections 2 --requests 25
kill $RA_PID $RT_PID 2>/dev/null || true
wait "$RA_PID" "$RT_PID" 2>/dev/null || true
RA_PID=""; RB_PID=""; RT_PID=""

echo "== chaos fault-injection smoke test =="
# Two replicas, replica B reachable only through a fixed-seed dsp-chaos
# proxy. Trickle (benign): the routed sweep must still complete and
# reduce to the byte-identical deterministic report. Reset
# (destructive): retries + breaker must ride every cell out to the
# clean replica — same byte-identical bar. Every request runs under a
# hard `timeout` so a wedged worker fails the gate instead of hanging
# it, and the proxy's own /metrics must show the faults were real.
CHAOS_DIR=$(mktemp -d)
CA_PID=""; CB_PID=""; CX1_PID=""; CX2_PID=""; CR1_PID=""; CR2_PID=""
chaos_pids() { echo "$CA_PID $CB_PID $CX1_PID $CX2_PID $CR1_PID $CR2_PID ${CHAOS_PID:-} ${ROUTER_PID:-}"; }
trap 'kill $(chaos_pids) 2>/dev/null || true; rm -rf "$CACHE_DIR" "$RDIR" "$CHAOS_DIR"' EXIT
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id ca >"$CHAOS_DIR/ca.log" 2>&1 & CA_PID=$!
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id cb >"$CHAOS_DIR/cb.log" 2>&1 & CB_PID=$!
CA_ADDR=$(node_addr "$CHAOS_DIR/ca.log")
CB_ADDR=$(node_addr "$CHAOS_DIR/cb.log")
chaos_admin_addr() { # the proxy's second banner line
  for _ in $(seq 100); do
    local a
    a=$(sed -n 's#^dsp-chaos admin on http://##p' "$1" | head -n1)
    if [ -n "$a" ]; then echo "$a"; return 0; fi
    sleep 0.1
  done
  echo "FAIL: no admin banner in $1" >&2; cat "$1" >&2; return 1
}
run_chaos_scenario() { # $1 scenario  $2 chaos log  $3 router log  $4 out.json
  local scen=$1 clog=$2 rlog=$3 out=$4
  ./target/release/dsp-chaos --listen 127.0.0.1:0 --admin 127.0.0.1:0 \
    --upstream "$CB_ADDR" --scenario "$scen" --seed 7 --fault-pct 100 \
    >"$clog" 2>&1 & CHAOS_PID=$!
  local cx_addr cx_admin rt_addr
  cx_addr=$(node_addr "$clog")
  cx_admin=$(chaos_admin_addr "$clog")
  ./target/release/dsp-router --addr 127.0.0.1:0 \
    --replicas "$CA_ADDR,$cx_addr" --retries 3 --probe-ms 200 \
    --breaker-threshold 2 --breaker-cooldown-ms 300 \
    >"$rlog" 2>&1 & ROUTER_PID=$!
  rt_addr=$(node_addr "$rlog")
  for _ in $(seq 100); do
    curl -fsS "http://$rt_addr/readyz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  timeout 90 curl -fsS -X POST "http://$rt_addr/sweep" \
    -H 'Content-Type: application/json' -d '{"bench": "fir_32_1"}' >"$out" \
    || { echo "FAIL: $scen routed sweep failed or wedged past the deadline"; exit 1; }
  curl -fsS "http://$cx_admin/metrics" -o "$CHAOS_DIR/$scen-admin.txt"
  local injected
  injected=$(sed -n "s/^dsp_chaos_faults_total{kind=\"$scen\"} //p" \
    "$CHAOS_DIR/$scen-admin.txt")
  [ "${injected:-0}" -gt 0 ] \
    || { echo "FAIL: $scen proxy injected no faults"; cat "$CHAOS_DIR/$scen-admin.txt"; exit 1; }
}
# Trickle: slow-but-progressing bytes through the proxy, complete doc.
run_chaos_scenario trickle "$CHAOS_DIR/cx1.log" "$CHAOS_DIR/cr1.log" \
  "$CHAOS_DIR/trickled.json"
CX1_PID=$CHAOS_PID; CR1_PID=$ROUTER_PID
./target/release/dualbank report-project "$CHAOS_DIR/trickled.json" \
  >"$CHAOS_DIR/trickled.det.json"
cmp "$CHAOS_DIR/trickled.det.json" "$RDIR/single.json" \
  || { echo "FAIL: trickled routed sweep differs from single-node run under projection"; exit 1; }
# Reset: every connection to B is RST; cells must retry onto A.
run_chaos_scenario reset "$CHAOS_DIR/cx2.log" "$CHAOS_DIR/cr2.log" \
  "$CHAOS_DIR/reset.json"
CX2_PID=$CHAOS_PID; CR2_PID=$ROUTER_PID
./target/release/dualbank report-project "$CHAOS_DIR/reset.json" \
  >"$CHAOS_DIR/reset.det.json"
cmp "$CHAOS_DIR/reset.det.json" "$RDIR/single.json" \
  || { echo "FAIL: reset-storm routed sweep differs from single-node run under projection"; exit 1; }
kill $(chaos_pids) 2>/dev/null || true
wait $(chaos_pids) 2>/dev/null || true
CA_PID=""; CB_PID=""; CX1_PID=""; CX2_PID=""; CR1_PID=""; CR2_PID=""
CHAOS_PID=""; ROUTER_PID=""
# The load generator's own chaos matrix: spawned server behind an
# in-process proxy, observed fault classes checked per scenario.
timeout 120 ./target/release/dsp-serve-load --spawn --connections 2 \
  --requests 15 --chaos trickle,reset --chaos-seed 7

echo "== fleet observability (dsp-obs) smoke test =="
# Two replicas behind a router, one routed sweep: `dualbank obs
# snapshot` must show that sweep's spans stitched across all three
# processes under a single trace id, and `dsp-obs export` of the same
# trace must produce a Perfetto file that passes trace-validate with
# the router.upstream hop present. The metric-name drift test (live
# /metrics vs docs, both directions) rides in this step too.
OBS_DIR=$(mktemp -d)
OA_PID=""; OB_PID=""; OR_PID=""
obs_pids() { echo "$OA_PID $OB_PID $OR_PID"; }
trap 'kill $(chaos_pids) $(obs_pids) 2>/dev/null || true; rm -rf "$CACHE_DIR" "$RDIR" "$CHAOS_DIR" "$OBS_DIR"' EXIT
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id oa >"$OBS_DIR/oa.log" 2>&1 & OA_PID=$!
./target/release/dualbank serve --addr 127.0.0.1:0 --jobs 1 --workers 6 \
  --replica-id ob >"$OBS_DIR/ob.log" 2>&1 & OB_PID=$!
OA_ADDR=$(node_addr "$OBS_DIR/oa.log")
OB_ADDR=$(node_addr "$OBS_DIR/ob.log")
./target/release/dsp-router --addr 127.0.0.1:0 --replicas "$OA_ADDR,$OB_ADDR" \
  >"$OBS_DIR/router.log" 2>&1 & OR_PID=$!
OR_ADDR=$(node_addr "$OBS_DIR/router.log")
for _ in $(seq 100); do
  curl -fsS "http://$OR_ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
OBS_TARGETS="--target router=$OR_ADDR --targets oa=$OA_ADDR,ob=$OB_ADDR"
# Sweep cells hash (strategy, source) onto their home replica, so one
# source's 7 cells *almost* always span both replicas — vary the
# source until a trace touches all three processes.
TRACE_ID=""
for n in 1 2 3 4 5; do
  timeout 90 curl -fsS -X POST "http://$OR_ADDR/sweep" \
    -H 'Content-Type: application/json' \
    -d "{\"source\": \"int x; void main() { x = 1 + $n; }\"}" >/dev/null \
    || { echo "FAIL: routed sweep for the obs smoke failed"; exit 1; }
  ./target/release/dualbank obs snapshot $OBS_TARGETS --out "$OBS_DIR/snap.json"
  TRACE_ID=$(sed -n 's/.*{"trace": "\([0-9a-f]*\)", "spans": [0-9]*, "nodes": \["router", "oa", "ob"\].*/\1/p' \
    "$OBS_DIR/snap.json" | head -n1)
  [ -n "$TRACE_ID" ] && break
done
[ -n "$TRACE_ID" ] \
  || { echo "FAIL: no trace stitched across router+oa+ob in obs snapshot"; cat "$OBS_DIR/snap.json"; exit 1; }
# Golden structure: every section of the dualbank-obs/v1 document.
for key in '"schema": "dualbank-obs/v1"' '"targets": \[' '"counters": {' \
           '"latency": \[' '"slo": {' '"availability"' '"traces": \['; do
  grep -q "$key" "$OBS_DIR/snap.json" \
    || { echo "FAIL: obs snapshot missing $key"; cat "$OBS_DIR/snap.json"; exit 1; }
done
grep -q '"up": true' "$OBS_DIR/snap.json" \
  || { echo "FAIL: obs snapshot saw no live target"; exit 1; }
# The standalone binary exports the stitched trace; it must be a valid
# Perfetto document carrying the cross-process hop.
./target/release/dsp-obs export --trace-id "$TRACE_ID" $OBS_TARGETS \
  --out "$OBS_DIR/stitched.json"
./target/release/dualbank trace-validate "$OBS_DIR/stitched.json"
grep -q '"name": "router.upstream"' "$OBS_DIR/stitched.json" \
  || { echo "FAIL: stitched export lost the router.upstream hop"; exit 1; }
grep -q '"name": "process_name", "ph": "M", "pid": 3' "$OBS_DIR/stitched.json" \
  || { echo "FAIL: stitched export does not carry three process tracks"; exit 1; }
kill $(obs_pids) 2>/dev/null || true
wait $(obs_pids) 2>/dev/null || true
OA_PID=""; OB_PID=""; OR_PID=""
# Docs and live /metrics must agree on every dsp_* family name.
cargo test -q $CARGO_FLAGS --test metrics_drift

echo "== dsp-gen differential fuzz smoke test =="
# A fixed-seed campaign: 200 generated programs through every strategy,
# each diffed against the reference interpreter. Exits nonzero on any
# mismatch, trap, or Ideal-beating cycle count; two identical
# invocations must produce byte-identical JSON reports (no wall times,
# no paths — see docs/fuzzing.md).
FUZZ_DIR=$(mktemp -d)
trap 'kill $(chaos_pids) 2>/dev/null || true; rm -rf "$CACHE_DIR" "$RDIR" "$CHAOS_DIR" "$FUZZ_DIR"' EXIT
./target/release/dualbank fuzz --seed 1 --count 200 \
  --json "$FUZZ_DIR/fuzz_a.json" >/dev/null
./target/release/dualbank fuzz --seed 1 --count 200 \
  --json "$FUZZ_DIR/fuzz_b.json" >/dev/null
cmp "$FUZZ_DIR/fuzz_a.json" "$FUZZ_DIR/fuzz_b.json" \
  || { echo "FAIL: fuzz report not byte-deterministic across runs"; exit 1; }
# The detect → shrink → archive path, end to end: an injected synthetic
# miscompile must be caught, minimized, and land in the corpus dir.
./target/release/dualbank fuzz --seed 2 --count 30 \
  --corpus-dir "$FUZZ_DIR/corpus" --inject-mismatch "A1" >/dev/null 2>&1 \
  && { echo "FAIL: injected miscompile campaign exited zero"; exit 1; }
ls "$FUZZ_DIR/corpus"/*.dsp >/dev/null 2>&1 \
  || { echo "FAIL: injected miscompile produced no corpus entry"; exit 1; }
# Front-end robustness: byte-mutated programs must never panic.
./target/release/dualbank fuzz --mutate --seed 1 --count 40 --mutants 50 >/dev/null

echo "== partitioner parity smoke test =="
# Sweep the full benchmark matrix once per partitioner. Two invariants:
# where FM finds nothing to improve it must be *byte-identical* to the
# greedy run under the deterministic projection (same partitions, same
# schedules), and where it does differ, FM's summed cycle count must
# never regress the greedy's.
PART_DIR=$(mktemp -d)
trap 'kill $(chaos_pids) 2>/dev/null || true; rm -rf "$CACHE_DIR" "$RDIR" "$CHAOS_DIR" "$FUZZ_DIR" "$PART_DIR"' EXIT
./target/release/dualbank bench all --jobs 1 --partitioner greedy \
  --json "$PART_DIR/greedy.json" --deterministic >/dev/null
./target/release/dualbank bench all --jobs 1 --partitioner fm \
  --json "$PART_DIR/fm.json" --deterministic >/dev/null
sum_cycles() { grep -o '"cycles": [0-9]*' "$1" | awk '{s+=$2} END{print s}'; }
GREEDY_CYCLES=$(sum_cycles "$PART_DIR/greedy.json")
FM_CYCLES=$(sum_cycles "$PART_DIR/fm.json")
if cmp -s "$PART_DIR/greedy.json" "$PART_DIR/fm.json"; then
  echo "   fm == greedy byte-for-byte ($FM_CYCLES cycles summed)"
elif [ "$FM_CYCLES" -le "$GREEDY_CYCLES" ]; then
  echo "   fm improved: $GREEDY_CYCLES -> $FM_CYCLES summed cycles"
else
  echo "FAIL: fm regressed summed cycles ($GREEDY_CYCLES -> $FM_CYCLES)"; exit 1
fi

echo "== persistent-cache fault-injection suite =="
# Every store IO site failing in turn (open/read/write/fsync/rename/
# remove/list), plus torn-write and bit-rot scenarios — already built
# above; -q keeps the gate output short.
cargo test -q -p dsp-driver $CARGO_FLAGS --test store_faults --test disk_store

echo "All checks passed."
