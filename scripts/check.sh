#!/usr/bin/env bash
# Repo-wide quality gate: build, tests, formatting, lints.
#
# Run from the repository root:
#
#   scripts/check.sh
#
# Pass extra cargo flags via CARGO_FLAGS (e.g. CARGO_FLAGS=--offline).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== cargo build --release =="
cargo build --release --workspace $CARGO_FLAGS

echo "== cargo test -q =="
cargo test -q --workspace $CARGO_FLAGS

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets $CARGO_FLAGS -- -D warnings

echo "== dsp-serve loopback smoke test =="
# Self-contained: spawns a server on a free port, drives /compile over
# 2 keep-alive connections, and exits nonzero on any dropped request.
./target/release/dsp-serve-load --spawn --connections 2 --requests 25

echo "== dsp-serve mixed-load smoke test =="
# One bench-all /sweep streaming concurrently with /compile traffic
# through the shared executor. Exits nonzero on any dropped request,
# any truncated sweep, or sweep jobs whose deterministic fields
# (cycles, memory cost, bank stats) differ between runs.
./target/release/dsp-serve-load --spawn --mixed --connections 2 --requests 25 \
  --sweep-requests 2 --bench all

echo "== persistent-cache crash smoke test =="
# Kill a sweep mid-run, restart over the crashed store, and require the
# warmed report to be byte-identical to a cold store-less run. The
# atomic tmp-file+rename publish means a SIGKILL at any instant must
# leave zero quarantined entries.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
./target/release/dualbank bench all --jobs 1 --cache-dir "$CACHE_DIR" \
  >/dev/null 2>&1 &
KILL_PID=$!
sleep 0.3
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
# DSP_LOG=info: the warm-start banner (grepped below) logs at info.
DSP_LOG=info ./target/release/dualbank bench all --jobs 1 --cache-dir "$CACHE_DIR" \
  --json "$CACHE_DIR/warm.json" --deterministic >/dev/null 2>"$CACHE_DIR/stderr"
grep -q ' 0 quarantined' "$CACHE_DIR/stderr" \
  || { echo "FAIL: crash left quarantined entries"; cat "$CACHE_DIR/stderr"; exit 1; }
./target/release/dualbank bench all --jobs 1 \
  --json "$CACHE_DIR/cold.json" --deterministic >/dev/null
cmp "$CACHE_DIR/warm.json" "$CACHE_DIR/cold.json" \
  || { echo "FAIL: post-crash warm report differs from cold run"; exit 1; }

echo "== trace smoke test =="
# --trace-out must yield a Perfetto-loadable Chrome trace document
# with nonzero nested spans, and tracing must not perturb results:
# the deterministic report is byte-identical with tracing on or off.
./target/release/dualbank bench fir_32_1 --jobs 2 --trace-out "$CACHE_DIR/trace.json" \
  --json "$CACHE_DIR/traced.json" --deterministic >/dev/null
./target/release/dualbank trace-validate "$CACHE_DIR/trace.json"
./target/release/dualbank bench fir_32_1 --jobs 2 \
  --json "$CACHE_DIR/untraced.json" --deterministic >/dev/null
cmp "$CACHE_DIR/traced.json" "$CACHE_DIR/untraced.json" \
  || { echo "FAIL: tracing perturbed the deterministic report"; exit 1; }

echo "== persistent-cache fault-injection suite =="
# Every store IO site failing in turn (open/read/write/fsync/rename/
# remove/list), plus torn-write and bit-rot scenarios — already built
# above; -q keeps the gate output short.
cargo test -q -p dsp-driver $CARGO_FLAGS --test store_faults --test disk_store

echo "All checks passed."
