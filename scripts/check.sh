#!/usr/bin/env bash
# Repo-wide quality gate: build, tests, formatting, lints.
#
# Run from the repository root:
#
#   scripts/check.sh
#
# Pass extra cargo flags via CARGO_FLAGS (e.g. CARGO_FLAGS=--offline).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== cargo build --release =="
cargo build --release --workspace $CARGO_FLAGS

echo "== cargo test -q =="
cargo test -q --workspace $CARGO_FLAGS

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets $CARGO_FLAGS -- -D warnings

echo "All checks passed."
