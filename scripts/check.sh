#!/usr/bin/env bash
# Repo-wide quality gate: build, tests, formatting, lints.
#
# Run from the repository root:
#
#   scripts/check.sh
#
# Pass extra cargo flags via CARGO_FLAGS (e.g. CARGO_FLAGS=--offline).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== cargo build --release =="
cargo build --release --workspace $CARGO_FLAGS

echo "== cargo test -q =="
cargo test -q --workspace $CARGO_FLAGS

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets $CARGO_FLAGS -- -D warnings

echo "== dsp-serve loopback smoke test =="
# Self-contained: spawns a server on a free port, drives /compile over
# 2 keep-alive connections, and exits nonzero on any dropped request.
./target/release/dsp-serve-load --spawn --connections 2 --requests 25

echo "== dsp-serve mixed-load smoke test =="
# One bench-all /sweep streaming concurrently with /compile traffic
# through the shared executor. Exits nonzero on any dropped request,
# any truncated sweep, or sweep jobs whose deterministic fields
# (cycles, memory cost, bank stats) differ between runs.
./target/release/dsp-serve-load --spawn --mixed --connections 2 --requests 25 \
  --sweep-requests 2 --bench all

echo "All checks passed."
