//! Image enhancement using histogram equalization (paper `histogram`,
//! a6).
//!
//! Three passes: build the intensity histogram (`hist[img[i]]++` — a
//! serial load/modify/store chain through a data-dependent address),
//! scan it into a cumulative distribution, and remap the image through
//! the resulting lookup table (`lut[img[i]]`, another data-dependent
//! chain). The paper found this program gains **nothing** from any
//! scheme — even the dual-ported Ideal — because there simply are no
//! independent memory-access pairs to exploit.

use crate::data::{i32_list, pixels};
use crate::{Benchmark, Kind};

/// Image size in pixels.
const N: usize = 640;
/// Intensity levels.
const LEVELS: usize = 256;

/// Build the `histogram` benchmark.
#[must_use]
pub fn histogram() -> Benchmark {
    let img = pixels(501, N);
    let source = format!(
        "int img[{N}] = {{{img}}};
int hist[{LEVELS}];
int cdf[{LEVELS}];
int lut[{LEVELS}];
int out[{N}];

void main() {{
    int i; int sum; int cdf_min; int denom;

    /* Histogram: serial load-modify-store through img[i]. */
    for (i = 0; i < {N}; i++)
        hist[img[i]] += 1;

    /* Cumulative distribution (loop-carried dependence). */
    sum = 0;
    for (i = 0; i < {LEVELS}; i++) {{
        sum += hist[i];
        cdf[i] = sum;
    }}

    /* First nonzero CDF entry. */
    cdf_min = 0;
    i = 0;
    while (i < {LEVELS}) {{
        if (cdf[i] > 0) {{ cdf_min = cdf[i]; i = {LEVELS}; }}
        else i++;
    }}

    /* Equalization lookup table. */
    denom = {N} - cdf_min;
    if (denom < 1) denom = 1;
    for (i = 0; i < {LEVELS}; i++) {{
        int v;
        v = (cdf[i] - cdf_min) * {lm1} / denom;
        if (v < 0) v = 0;
        if (v > {lm1}) v = {lm1};
        lut[i] = v;
    }}

    /* Remap the image. */
    for (i = 0; i < {N}; i++)
        out[i] = lut[img[i]];
}}
",
        lm1 = LEVELS - 1,
        img = i32_list(&img),
    );
    Benchmark {
        name: "histogram".into(),
        kind: Kind::Application,
        description: "Image enhancement using histogram equalization".into(),
        source,
        check_globals: vec!["out".into(), "hist".into(), "lut".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_every_pixel() {
        let b = histogram();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let hist: Vec<i32> = interp
            .global_mem_by_name("hist")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert_eq!(hist.iter().sum::<i32>(), N as i32);
        let out: Vec<i32> = interp
            .global_mem_by_name("out")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert!(out.iter().all(|&v| (0..=255).contains(&v)));
    }
}
