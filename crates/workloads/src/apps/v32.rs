//! V.32 modem encoder (paper `V32encode`, a7).
//!
//! The transmit path of a V.32 modem: the self-synchronizing scrambler
//! (generating polynomial `1 + x^-18 + x^-23`), differential quadrant
//! encoding of the two high bits, the 8-state convolutional encoder of
//! the trellis-coded modulation, and constellation mapping to I/Q
//! coordinates. The scrambler reads its own history at two dynamic
//! offsets (`scr[i+5]`, `scr[i]` behind the write at `scr[i+23]`) — a
//! same-array pattern like the paper's Figure 6, which is why V32encode
//! was one of the three programs with duplication candidates (the paper
//! measured Dup only marginally better than CB: 1.09 vs 1.08).

use crate::data::{bits, f32_list, i32_list, quantize};
use crate::{Benchmark, Kind};

/// Number of input bits (must be a multiple of 4: one QAM symbol per
/// 4 bits at 9600 bit/s).
const NBITS: usize = 480;

/// Build the `V32encode` benchmark.
#[must_use]
pub fn v32encode() -> Benchmark {
    let input = bits(701, NBITS);
    // 32-point cross constellation (V.32 TCM), quantized coordinates.
    let const_re: Vec<f32> = (0..32)
        .map(|i| quantize(((i % 8) as f32 - 3.5) / 2.0))
        .collect();
    let const_im: Vec<f32> = (0..32)
        .map(|i| quantize(((i / 8) as f32 - 1.5) * 0.75 + ((i % 3) as f32 - 1.0) * 0.25))
        .collect();
    // Differential quadrant table: new_quadrant = diff_map[old*4 + dibit].
    let diff_map: [i32; 16] = [0, 1, 2, 3, 1, 2, 3, 0, 2, 3, 0, 1, 3, 0, 1, 2];
    let nsym = NBITS / 4;
    let source = format!(
        "int input[{NBITS}] = {{{input}}};
int scr[{scrlen}];
float const_re[32] = {{{cre}}};
float const_im[32] = {{{cim}}};
int diff_map[16] = {{{dmap}}};
int symbols[{nsym}];
float tx_i[{nsym}];
float tx_q[{nsym}];

void main() {{
    int i; int s; int quadrant; int s1; int s2; int s3;

    /* Self-synchronizing scrambler: 1 + x^-18 + x^-23.
       scr[i+23] is the output stream; history reads at two lags. */
    for (i = 0; i < {NBITS}; i++)
        scr[i + 23] = input[i] ^ scr[i + 5] ^ scr[i];

    /* Per-symbol encoding: 4 scrambled bits -> one 32-point symbol. */
    quadrant = 0;
    s1 = 0; s2 = 0; s3 = 0;
    for (s = 0; s < {nsym}; s++) {{
        int q1; int q2; int q3; int q4; int dibit;
        int y0; int sym;
        q1 = scr[s * 4 + 23];
        q2 = scr[s * 4 + 24];
        q3 = scr[s * 4 + 25];
        q4 = scr[s * 4 + 26];

        /* Differential encoding of the two high bits. */
        dibit = q1 * 2 + q2;
        quadrant = diff_map[quadrant * 4 + dibit];

        /* 8-state convolutional encoder (rate 2/3) on the quadrant
           bits: state (s1,s2,s3), redundant bit y0. */
        y0 = s3;
        {{
            int b1; int b2; int ns1; int ns2; int ns3;
            b1 = quadrant / 2;
            b2 = quadrant % 2;
            ns1 = s2 ^ b1;
            ns2 = s3 ^ b2 ^ (s1 & b1);
            ns3 = s1 ^ b1 ^ b2;
            s1 = ns1; s2 = ns2; s3 = ns3;
        }}

        /* 5-bit symbol: redundant bit + quadrant + data bits. */
        sym = y0 * 16 + quadrant * 4 + q3 * 2 + q4;
        symbols[s] = sym;
        tx_i[s] = const_re[sym];
        tx_q[s] = const_im[sym];
    }}
}}
",
        scrlen = NBITS + 23,
        input = i32_list(&input),
        cre = f32_list(&const_re),
        cim = f32_list(&const_im),
        dmap = i32_list(&diff_map),
    );
    Benchmark {
        name: "V32encode".into(),
        kind: Kind::Application,
        description: "V.32 modem encoder".into(),
        source,
        check_globals: vec!["symbols".into(), "tx_i".into(), "tx_q".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_five_bits() {
        let b = v32encode();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let symbols: Vec<i32> = interp
            .global_mem_by_name("symbols")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert!(symbols.iter().all(|&s| (0..32).contains(&s)));
        // The scrambler must actually whiten: not all symbols equal.
        assert!(symbols.windows(2).any(|w| w[0] != w[1]));
    }
}
