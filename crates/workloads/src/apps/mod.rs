//! The DSP application benchmarks (paper Table 2).
//!
//! Eleven complete programs from speech processing, image processing
//! and data communication, re-implemented in DSP-C from their published
//! algorithm descriptions. Each preserves the *memory-parallelism
//! structure* the paper reports for it:
//!
//! * `lpc` — dominated by an autocorrelation with a dynamic lag, the
//!   paper's Figure-6 pattern: partitioning alone barely helps, partial
//!   duplication nearly reaches the dual-ported ideal;
//! * `spectral` — same-array butterfly accesses inside a store-heavy
//!   in-place transform: duplication's bookkeeping stores eat its gain;
//! * `histogram` and the three `G721*` codecs — serial dependence
//!   chains and control code: no memory parallelism for *any* scheme;
//! * `edge_detect` / `compress` — regular image loops whose array pairs
//!   partition cleanly;
//! * `adpcm`, `V32encode`, `trellis` — mixtures of control code and
//!   small parallel loops with modest gains.

mod adpcm;
mod compress;
mod edge_detect;
mod g721;
mod histogram;
mod lpc;
mod spectral;
mod trellis;
mod v32;

pub use adpcm::adpcm;
pub use compress::compress;
pub use edge_detect::edge_detect;
pub use g721::{g721_ml_decode, g721_ml_encode, g721_wf_encode};
pub use histogram::histogram;
pub use lpc::lpc;
pub use spectral::spectral;
pub use trellis::trellis;
pub use v32::v32encode;

use crate::Benchmark;

/// The eleven applications of Table 2, in the order of Figure 8
/// (a1 … a11).
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        adpcm(),
        lpc(),
        spectral(),
        edge_detect(),
        compress(),
        histogram(),
        v32encode(),
        g721_ml_encode(),
        g721_ml_decode(),
        g721_wf_encode(),
        trellis(),
    ]
}
