//! Edge detection using 2D convolution and Sobel operators (paper
//! `edge_detect`, a4).
//!
//! Classic embedded line-buffer structure: each image row is staged
//! into one of three row buffers, and the Sobel gradients are computed
//! from the buffers. The row buffers are *distinct arrays*, so the
//! partitioner can split them across the banks and pair the window
//! loads — the paper measured CB ≈ Dup ≈ Ideal (≈15 %) with no
//! duplication cost for this program.

use crate::data::{i32_list, pixels};
use crate::{Benchmark, Kind};

/// Image width.
const W: usize = 24;
/// Image height.
const H: usize = 18;

/// Build the `edge_detect` benchmark.
#[must_use]
pub fn edge_detect() -> Benchmark {
    let img = pixels(301, W * H);
    let source = format!(
        "int img[{size}] = {{{img}}};
int edges[{size}];
int row0[{W}];
int row1[{W}];
int row2[{W}];

void main() {{
    int x; int y; int i;
    for (y = 1; y < {hm1}; y++) {{
        int b0; int b1; int b2;
        b0 = (y - 1) * {W};
        b1 = y * {W};
        b2 = (y + 1) * {W};
        /* Stage three rows into line buffers (one image read per
           iteration, pairing with the buffer store across banks). */
        for (i = 0; i < {W}; i++)
            row0[i] = img[b0 + i];
        for (i = 0; i < {W}; i++)
            row1[i] = img[b1 + i];
        for (i = 0; i < {W}; i++)
            row2[i] = img[b2 + i];
        /* Sobel window, sliding-register style: each row buffer is
           loaded exactly once per iteration, so the only memory pairs
           are across *different* arrays — which partitioning handles
           without duplication, as the paper reports for this program. */
        {{
            int p00; int p01; int p02;
            int p10; int p11; int p12;
            int p20; int p21; int p22;
            p00 = 0; p01 = 0; p10 = 0; p11 = 0; p20 = 0; p21 = 0;
            for (x = 0; x < {W}; x++) {{
                int gx; int gy; int mag;
                p02 = row0[x];
                p12 = row1[x];
                p22 = row2[x];
                if (x >= 2) {{
                    gx = p02 - p00 + 2 * p12 - 2 * p10 + p22 - p20;
                    gy = p20 + 2 * p21 + p22 - p00 - 2 * p01 - p02;
                    if (gx < 0) gx = -gx;
                    if (gy < 0) gy = -gy;
                    mag = gx + gy;
                    if (mag > 255) mag = 255;
                    edges[y * {W} + x - 1] = mag;
                }}
                p00 = p01; p01 = p02;
                p10 = p11; p11 = p12;
                p20 = p21; p21 = p22;
            }}
        }}
    }}
}}
",
        size = W * H,
        hm1 = H - 1,
        img = i32_list(&img),
    );
    Benchmark {
        name: "edge_detect".into(),
        kind: Kind::Application,
        description: "Edge detection using 2D convolution and Sobel operators".into(),
        source,
        check_globals: vec!["edges".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_clamped_bytes() {
        let b = edge_detect();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let edges: Vec<i32> = interp
            .global_mem_by_name("edges")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert!(edges.iter().all(|&v| (0..=255).contains(&v)));
        assert!(edges.iter().any(|&v| v > 0));
    }
}
