//! CCITT G.721 ADPCM speech codec implementations (paper
//! `G721MLencode`, `G721MLdecode`, `G721WFencode`; a8–a10).
//!
//! G.721 transmits 32 kbit/s ADPCM: a 4-bit adaptive quantizer around
//! an adaptive predictor with two poles and six zeros. The paper used
//! two independent implementations ("ML" and "WF") of the encoder plus
//! the ML decoder, and reports that *none* of them gains from any
//! memory-bank scheme — every sample is one long serial dependence
//! chain through scalar state, with table lookups whose addresses
//! depend on just-computed values.
//!
//! The versions here preserve that structure: the ML pair uses a
//! floating-point signal path, the WF encoder an integer/shift-based
//! one; all three carry the standard 2-pole/6-zero predictor update.

use crate::data::{i32_list, Lcg};
use crate::{Benchmark, Kind};

/// Number of speech samples.
const N: usize = 360;

fn speech_samples(seed: u32) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    (0..N)
        .map(|i| {
            let t = i as f64;
            let v = 5000.0 * (t * 0.11).sin() + 2000.0 * (t * 0.041).cos();
            (v as i32) + rng.next_range(301) - 150
        })
        .collect()
}

/// The shared predictor/quantizer body of the ML (floating-point)
/// implementation.
fn ml_core() -> &'static str {
    r"
/* Adaptive predictor state: 2 poles, 6 zeros. */
float a1; float a2;
float b[6];
float dq[6];
float sr1; float sr2;
float step;

float predict() {
    int i; float acc;
    acc = a1 * sr1 + a2 * sr2;
    for (i = 0; i < 6; i++)
        acc += b[i] * dq[i];
    return acc;
}

void update(float d, float srv) {
    int i;
    /* Zero coefficients: sign-sign LMS. */
    for (i = 0; i < 6; i++) {
        float g;
        if (d * dq[i] >= 0.0) g = 0.005; else g = -0.005;
        b[i] = b[i] * 0.996 + g;
        if (b[i] > 2.0) b[i] = 2.0;
        if (b[i] < -2.0) b[i] = -2.0;
    }
    /* Shift the difference delay line. */
    for (i = 5; i > 0; i--)
        dq[i] = dq[i - 1];
    dq[0] = d;
    /* Pole coefficients, leaky adaptation with stability clamps. */
    {
        float g1;
        if (srv * sr1 >= 0.0) g1 = 0.006; else g1 = -0.006;
        a1 = a1 * 0.994 + g1;
        if (a1 > 0.9) a1 = 0.9;
        if (a1 < -0.9) a1 = -0.9;
        if (srv * sr2 >= 0.0) a2 = a2 * 0.994 + 0.002;
        else a2 = a2 * 0.994 - 0.002;
        if (a2 > 0.75 - a1) a2 = 0.75 - a1;
        if (a2 < -0.75) a2 = -0.75;
    }
    sr2 = sr1;
    sr1 = srv;
    /* Step-size adaptation. */
    if (d < 0.0) d = -d;
    if (d > step) step = step * 1.05 + 8.0;
    else step = step * 0.98 + 1.0;
    if (step < 16.0) step = 16.0;
    if (step > 8000.0) step = 8000.0;
}
"
}

/// Build the `G721MLencode` benchmark.
#[must_use]
pub fn g721_ml_encode() -> Benchmark {
    let speech = speech_samples(801);
    let source = format!(
        "int speech[{N}] = {{{speech}}};
int code[{N}];
{core}
void main() {{
    int n;
    a1 = 0.0; a2 = 0.0; sr1 = 0.0; sr2 = 0.0; step = 32.0;
    for (n = 0; n < {N}; n++) {{
        float se; float d; float dqv; int i; int sign;
        se = predict();
        d = (float) speech[n] - se;
        if (d < 0.0) {{ sign = 8; d = -d; }} else sign = 0;
        /* 3-bit magnitude quantization against the adaptive step. */
        i = 0;
        if (d >= step) {{ i = i | 4; d -= step; }}
        if (d >= step / 2.0) {{ i = i | 2; d -= step / 2.0; }}
        if (d >= step / 4.0) i = i | 1;
        code[n] = sign | i;
        /* Inverse quantizer and state update. */
        dqv = step * ((float) i / 4.0 + 0.125);
        if (sign) dqv = -dqv;
        update(dqv, se + dqv);
    }}
}}
",
        speech = i32_list(&speech),
        core = ml_core(),
    );
    Benchmark {
        name: "G721MLencode".into(),
        kind: Kind::Application,
        description: "CCITT G.721 ADPCM speech encoder (ML implementation)".into(),
        source,
        check_globals: vec!["code".into()],
    }
}

/// Build the `G721MLdecode` benchmark: decodes the ML encoder's output
/// (generated offline by the same algorithm).
#[must_use]
pub fn g721_ml_decode() -> Benchmark {
    // Deterministic 4-bit code stream resembling encoder output.
    let mut rng = Lcg::new(803);
    let codes: Vec<i32> = (0..N).map(|_| rng.next_range(16)).collect();
    let source = format!(
        "int code[{N}] = {{{codes}}};
int pcm[{N}];
{core}
void main() {{
    int n;
    a1 = 0.0; a2 = 0.0; sr1 = 0.0; sr2 = 0.0; step = 32.0;
    for (n = 0; n < {N}; n++) {{
        float se; float dqv; float srv; int c; int mag;
        se = predict();
        c = code[n];
        mag = c & 7;
        dqv = step * ((float) mag / 4.0 + 0.125);
        if (c & 8) dqv = -dqv;
        srv = se + dqv;
        if (srv > 32767.0) srv = 32767.0;
        if (srv < -32768.0) srv = -32768.0;
        pcm[n] = (int) srv;
        update(dqv, srv);
    }}
}}
",
        codes = i32_list(&codes),
        core = ml_core(),
    );
    Benchmark {
        name: "G721MLdecode".into(),
        kind: Kind::Application,
        description: "CCITT G.721 ADPCM speech decoder (ML implementation)".into(),
        source,
        check_globals: vec!["pcm".into()],
    }
}

/// Build the `G721WFencode` benchmark: an independent, integer
/// (shift/compare) implementation of the same encoder.
#[must_use]
pub fn g721_wf_encode() -> Benchmark {
    let speech = speech_samples(805);
    let source = format!(
        "int speech[{N}] = {{{speech}}};
int code[{N}];
int wb[6];
int wdq[6];
int wa1; int wa2; int wsr1; int wsr2; int wstep;

int wpredict() {{
    int i; int acc;
    acc = (wa1 * wsr1 + wa2 * wsr2) >> 7;
    for (i = 0; i < 6; i++)
        acc += (wb[i] * wdq[i]) >> 7;
    return acc;
}}

void main() {{
    int n; int i;
    wa1 = 0; wa2 = 0; wsr1 = 0; wsr2 = 0; wstep = 32;
    for (n = 0; n < {N}; n++) {{
        int se; int d; int sign; int mag; int dqv; int srv;
        se = wpredict();
        d = speech[n] - se;
        if (d < 0) {{ sign = 8; d = -d; }} else sign = 0;
        mag = 0;
        if (d >= wstep) {{ mag = mag | 4; d -= wstep; }}
        if (d >= wstep >> 1) {{ mag = mag | 2; d -= wstep >> 1; }}
        if (d >= wstep >> 2) mag = mag | 1;
        code[n] = sign | mag;
        dqv = (wstep * mag) >> 2;
        dqv = dqv + (wstep >> 3);
        if (sign) dqv = -dqv;
        srv = se + dqv;
        /* Sign-sign LMS on the zeros. */
        for (i = 0; i < 6; i++) {{
            int up;
            if (dqv >= 0) {{ if (wdq[i] >= 0) up = 1; else up = -1; }}
            else {{ if (wdq[i] >= 0) up = -1; else up = 1; }}
            wb[i] = wb[i] - (wb[i] >> 8) + up;
            if (wb[i] > 256) wb[i] = 256;
            if (wb[i] < -256) wb[i] = -256;
        }}
        for (i = 5; i > 0; i--)
            wdq[i] = wdq[i - 1];
        wdq[0] = dqv;
        /* Poles. */
        if (srv >= 0) {{ if (wsr1 >= 0) wa1 = wa1 - (wa1 >> 7) + 1;
                         else wa1 = wa1 - (wa1 >> 7) - 1; }}
        else {{ if (wsr1 >= 0) wa1 = wa1 - (wa1 >> 7) - 1;
                else wa1 = wa1 - (wa1 >> 7) + 1; }}
        if (wa1 > 116) wa1 = 116;
        if (wa1 < -116) wa1 = -116;
        if (srv >= 0) {{ if (wsr2 >= 0) wa2 = wa2 - (wa2 >> 7) + 1;
                         else wa2 = wa2 - (wa2 >> 7) - 1; }}
        else {{ if (wsr2 >= 0) wa2 = wa2 - (wa2 >> 7) - 1;
                else wa2 = wa2 - (wa2 >> 7) + 1; }}
        if (wa2 > 96) wa2 = 96;
        if (wa2 < -96) wa2 = -96;
        wsr2 = wsr1;
        wsr1 = srv;
        /* Step adaptation. */
        if (mag >= 4) wstep = wstep + (wstep >> 4) + 8;
        else wstep = wstep - (wstep >> 5) + 1;
        if (wstep < 16) wstep = 16;
        if (wstep > 8192) wstep = 8192;
    }}
}}
",
        speech = i32_list(&speech),
    );
    Benchmark {
        name: "G721WFencode".into(),
        kind: Kind::Application,
        description: "CCITT G.721 ADPCM speech encoder (WF implementation)".into(),
        source,
        check_globals: vec!["code".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(b: &Benchmark, out: &str) -> Vec<i32> {
        let program =
            dsp_frontend::compile_str(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        interp
            .global_mem_by_name(out)
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect()
    }

    #[test]
    fn ml_encoder_produces_four_bit_codes() {
        let codes = run(&g721_ml_encode(), "code");
        assert!(codes.iter().all(|&c| (0..16).contains(&c)));
        assert!(codes.iter().any(|&c| c != 0));
    }

    #[test]
    fn ml_decoder_produces_bounded_pcm() {
        let pcm = run(&g721_ml_decode(), "pcm");
        assert!(pcm.iter().all(|&v| (-32768..=32767).contains(&v)));
    }

    #[test]
    fn wf_encoder_produces_four_bit_codes() {
        let codes = run(&g721_wf_encode(), "code");
        assert!(codes.iter().all(|&c| (0..16).contains(&c)));
        assert!(codes.iter().any(|&c| c != 0));
    }
}
