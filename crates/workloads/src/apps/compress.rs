//! Image compression using the Discrete Cosine Transform (paper
//! `compress`, a5).
//!
//! JPEG-style pipeline on 8×8 blocks: separable 2D DCT (two passes of
//! coefficient-matrix multiplication), uniform quantization with a
//! standard luminance table, and a run-length count of zero
//! coefficients. The DCT inner loops pair the pixel block against the
//! cosine coefficient table — classic partitionable traffic.

use crate::data::{i32_list, pixels, quantize};
use crate::{Benchmark, Kind};

/// Image width (multiple of 8).
const W: usize = 32;
/// Image height (multiple of 8).
const H: usize = 24;

/// Build the `compress` benchmark.
#[must_use]
pub fn compress() -> Benchmark {
    let img = pixels(401, W * H);
    // DCT-II coefficient matrix, row-major: c[u*8+x] = s(u) cos((2x+1)uπ/16).
    let mut dct = Vec::with_capacity(64);
    for u in 0..8 {
        let s = if u == 0 {
            (1.0f32 / 8.0).sqrt()
        } else {
            (2.0f32 / 8.0).sqrt()
        };
        for x in 0..8 {
            dct.push(quantize(
                s * ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos(),
            ));
        }
    }
    // JPEG luminance quantization table.
    let quant: [i32; 64] = [
        16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69,
        56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81,
        104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
    ];
    let blocks = (W / 8) * (H / 8);
    let source = format!(
        "int img[{size}] = {{{img}}};
float dct[64] = {{{dct}}};
int quant[64] = {{{quant}}};
float block[64];
float tmp[64];
float coef[64];
int qcoef[{qsize}];
int zero_runs[{blocks}];

void main() {{
    int bx; int by; int u; int v; int x; int b;
    b = 0;
    for (by = 0; by < {bh}; by++) {{
        for (bx = 0; bx < {bw}; bx++) {{
            int px; int py;
            /* Load the block, level-shifted. */
            for (py = 0; py < 8; py++)
                for (px = 0; px < 8; px++)
                    block[py * 8 + px] =
                        (float) (img[(by * 8 + py) * {W} + bx * 8 + px] - 128);

            /* Row DCT: tmp = block * dctT. */
            for (py = 0; py < 8; py++)
                for (u = 0; u < 8; u++) {{
                    float acc; acc = 0.0;
                    for (x = 0; x < 8; x++)
                        acc += block[py * 8 + x] * dct[u * 8 + x];
                    tmp[py * 8 + u] = acc;
                }}

            /* Column DCT: coef = dct * tmp. */
            for (v = 0; v < 8; v++)
                for (u = 0; u < 8; u++) {{
                    float acc; acc = 0.0;
                    for (x = 0; x < 8; x++)
                        acc += dct[v * 8 + x] * tmp[x * 8 + u];
                    coef[v * 8 + u] = acc;
                }}

            /* Quantize and count zeros. */
            {{
                int zeros; zeros = 0;
                for (u = 0; u < 64; u++) {{
                    int q;
                    q = (int) (coef[u] / (float) quant[u]);
                    qcoef[b * 64 + u] = q;
                    if (q == 0) zeros++;
                }}
                zero_runs[b] = zeros;
            }}
            b++;
        }}
    }}
}}
",
        size = W * H,
        qsize = blocks * 64,
        bw = W / 8,
        bh = H / 8,
        img = i32_list(&img),
        dct = crate::data::f32_list(&dct),
        quant = i32_list(&quant),
    );
    Benchmark {
        name: "compress".into(),
        kind: Kind::Application,
        description: "Image compression using the Discrete Cosine Transform".into(),
        source,
        check_globals: vec!["qcoef".into(), "zero_runs".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_quantizes_blocks() {
        let b = compress();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let runs: Vec<i32> = interp
            .global_mem_by_name("zero_runs")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        // Quantization produces plenty of zeros in every block.
        assert!(runs.iter().all(|&z| (0..=64).contains(&z)));
        assert!(runs.iter().sum::<i32>() > 0);
    }
}
