//! Linear Predictive Coding speech encoder (paper `lpc`, a2).
//!
//! Frame-based LPC analysis: Hamming windowing, autocorrelation, and
//! Levinson–Durbin recursion producing predictor coefficients per
//! frame. The autocorrelation loop is the paper's Figure 6 —
//! `R[m] += ws[n] * ws[n+m]` with a *dynamic* lag `m` — and dominates
//! execution, which is why the paper measured only a 3 % gain from CB
//! partitioning but 34 % once partial data duplication lets the two
//! `ws` loads issue together.

use crate::data::{f32_list, quantize, tone_signal};
use crate::{Benchmark, Kind};

/// Number of speech samples.
const SAMPLES: usize = 360;
/// Analysis frame length.
const FRAME: usize = 120;
/// Predictor order.
const ORDER: usize = 10;

/// Build the `lpc` benchmark.
#[must_use]
pub fn lpc() -> Benchmark {
    let speech = tone_signal(101, SAMPLES);
    let window: Vec<f32> = (0..FRAME)
        .map(|i| {
            quantize(0.54 - 0.46 * (std::f32::consts::TAU * i as f32 / (FRAME as f32 - 1.0)).cos())
        })
        .collect();
    let frames = SAMPLES / FRAME;
    let source = format!(
        "float speech[{SAMPLES}] = {{{speech}}};
float window[{FRAME}] = {{{window}}};
float ws[{FRAME}];
float R[{order1}];
float lpc_a[{coef_total}];
float refl[{coef_total}];
float tmp_a[{order1}];

void main() {{
    int frame; int n; int m; int i;
    for (frame = 0; frame < {frames}; frame++) {{
        int base; base = frame * {FRAME};

        /* Hamming window. */
        for (n = 0; n < {FRAME}; n++)
            ws[n] = speech[base + n] * window[n];

        /* Autocorrelation (paper Figure 6: dynamic lag). */
        for (m = 0; m <= {ORDER}; m++) {{
            float acc; acc = 0.0;
            for (n = 0; n < {FRAME} - m; n++)
                acc += ws[n] * ws[n + m];
            R[m] = acc;
        }}

        /* Levinson-Durbin recursion. */
        {{
            float err; float k; float acc;
            err = R[0];
            if (err < 0.000001) err = 0.000001;
            for (i = 1; i <= {ORDER}; i++) {{
                acc = R[i];
                for (m = 1; m < i; m++)
                    acc -= tmp_a[m] * R[i - m];
                k = acc / err;
                refl[frame * {ORDER} + i - 1] = k;
                tmp_a[i] = k;
                for (m = 1; m < i; m++)
                    lpc_a[frame * {ORDER} + m - 1] = tmp_a[m] - k * tmp_a[i - m];
                for (m = 1; m < i; m++)
                    tmp_a[m] = lpc_a[frame * {ORDER} + m - 1];
                err = err * (1.0 - k * k);
                if (err < 0.000001) err = 0.000001;
            }}
            for (m = 1; m <= {ORDER}; m++)
                lpc_a[frame * {ORDER} + m - 1] = tmp_a[m];
        }}
    }}
}}
",
        order1 = ORDER + 1,
        coef_total = frames * ORDER,
        speech = f32_list(&speech),
        window = f32_list(&window),
    );
    Benchmark {
        name: "lpc".into(),
        kind: Kind::Application,
        description: "Linear Predictive Coding speech encoder".into(),
        source,
        check_globals: vec!["lpc_a".into(), "refl".into(), "R".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpc_runs_and_produces_coefficients() {
        let b = lpc();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let a: Vec<f32> = interp
            .global_mem_by_name("lpc_a")
            .unwrap()
            .iter()
            .map(|w| w.as_f32())
            .collect();
        assert!(a.iter().any(|&v| v != 0.0), "coefficients must be nonzero");
        assert!(a.iter().all(|v| v.is_finite()), "no NaN/inf: {a:?}");
    }
}
