//! Adaptive Differential Pulse-Code Modulation speech encoder (paper
//! `adpcm`, a1).
//!
//! IMA/DVI-style ADPCM: a 4-bit quantizer whose step size adapts
//! through an 89-entry table indexed by a running state variable. Each
//! sample's work is a short dependence chain of compares and table
//! lookups — little memory parallelism, matching the paper's ~3 % gain
//! under every scheme.

use crate::data::{i32_list, Lcg};
use crate::{Benchmark, Kind};

/// Number of speech samples.
const N: usize = 600;

/// The standard IMA step-size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The IMA index-adjust table (indexed by the 3 magnitude bits).
const INDEX_TABLE: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// Build the `adpcm` benchmark.
#[must_use]
pub fn adpcm() -> Benchmark {
    // 16-bit-ish speech samples: a slow tone plus noise.
    let mut rng = Lcg::new(601);
    let speech: Vec<i32> = (0..N)
        .map(|i| {
            let t = i as f64;
            let v = 6000.0 * (t * 0.13).sin() + 2500.0 * (t * 0.031).sin();
            (v as i32) + rng.next_range(401) - 200
        })
        .collect();
    let source = format!(
        "int speech[{N}] = {{{speech}}};
int step_table[89] = {{{steps}}};
int index_table[8] = {{{idx}}};
int code[{N}];
int reconstructed[{N}];

void main() {{
    int n; int predicted; int index;
    predicted = 0;
    index = 0;
    for (n = 0; n < {N}; n++) {{
        int sample; int diff; int sign; int step; int delta; int vpdiff;
        sample = speech[n];
        step = step_table[index];
        diff = sample - predicted;
        if (diff < 0) {{ sign = 8; diff = -diff; }} else sign = 0;

        /* Quantize the difference magnitude into 3 bits. */
        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) {{ delta = 4; diff -= step; vpdiff += step; }}
        step = step >> 1;
        if (diff >= step) {{ delta = delta | 2; diff -= step; vpdiff += step; }}
        step = step >> 1;
        if (diff >= step) {{ delta = delta | 1; vpdiff += step; }}

        /* Update the predictor. */
        if (sign) predicted -= vpdiff; else predicted += vpdiff;
        if (predicted > 32767) predicted = 32767;
        if (predicted < -32768) predicted = -32768;

        code[n] = sign | delta;
        reconstructed[n] = predicted;

        /* Adapt the step-size index. */
        index += index_table[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
    }}
}}
",
        speech = i32_list(&speech),
        steps = i32_list(&STEP_TABLE),
        idx = i32_list(&INDEX_TABLE),
    );
    Benchmark {
        name: "adpcm".into(),
        kind: Kind::Application,
        description: "Adaptive Differential Pulse-Code Modulation speech encoder".into(),
        source,
        check_globals: vec!["code".into(), "reconstructed".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_four_bits_and_tracking_is_stable() {
        let b = adpcm();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let code: Vec<i32> = interp
            .global_mem_by_name("code")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert!(code.iter().all(|&c| (0..16).contains(&c)));
        let rec: Vec<i32> = interp
            .global_mem_by_name("reconstructed")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        assert!(rec.iter().all(|&v| (-32768..=32767).contains(&v)));
    }
}
