//! Trellis (Viterbi) decoder (paper `trellis`, a11).
//!
//! Soft-decision Viterbi decoding of the rate-1/2, constraint-length-3
//! convolutional code (generators 7, 5). The add-compare-select loop
//! reads the old path metrics and the two branch metrics while writing
//! the new metrics and survivor bits — traffic the partitioner can
//! split across the banks for a modest gain (the paper measured 5 %).

use crate::data::{i32_list, Lcg};
use crate::{Benchmark, Kind};

/// Number of information bits.
const NBITS: usize = 120;
/// Trellis states (constraint length 3).
const STATES: usize = 4;

/// Encode with generators 7 (111) and 5 (101) and add deterministic
/// "soft" noise, producing 3-bit soft symbols (0 = strong 0, 7 =
/// strong 1).
fn encode_soft(bits: &[i32], seed: u32) -> (Vec<i32>, Vec<i32>) {
    let mut rng = Lcg::new(seed);
    let mut s1 = 0;
    let mut s2 = 0;
    let mut soft0 = Vec::with_capacity(bits.len());
    let mut soft1 = Vec::with_capacity(bits.len());
    for &b in bits {
        let c0 = b ^ s1 ^ s2; // 111
        let c1 = b ^ s2; // 101
        s2 = s1;
        s1 = b;
        let jitter0 = rng.next_range(3) - 1;
        let jitter1 = rng.next_range(3) - 1;
        soft0.push((c0 * 7 + jitter0).clamp(0, 7));
        soft1.push((c1 * 7 + jitter1).clamp(0, 7));
    }
    (soft0, soft1)
}

/// Build the `trellis` benchmark.
#[must_use]
pub fn trellis() -> Benchmark {
    let info = crate::data::bits(901, NBITS - 2);
    let mut bits = info;
    bits.push(0); // tail bits flush the encoder
    bits.push(0);
    let (soft0, soft1) = encode_soft(&bits, 903);
    // Precomputed trellis structure: for each state s, predecessors
    // p0/p1 and the expected code bits on those transitions.
    // State = (s1, s2) bits; transition from p on input b: new state
    // (b, p1_bit).
    let mut pred0 = [0i32; STATES];
    let mut pred1 = [0i32; STATES];
    let mut exp00 = [0i32; STATES]; // expected c0 on pred0 edge
    let mut exp01 = [0i32; STATES];
    let mut exp10 = [0i32; STATES];
    let mut exp11 = [0i32; STATES];
    for s in 0..STATES {
        let b = (s >> 1) & 1; // newest bit in state
        let mut preds = Vec::new();
        for p in 0..STATES {
            // from p = (p1, p2), input b -> (b, p1)
            if (p >> 1) & 1 == s & 1 {
                preds.push(p);
            }
        }
        assert_eq!(preds.len(), 2);
        pred0[s] = preds[0] as i32;
        pred1[s] = preds[1] as i32;
        for (k, &p) in preds.iter().enumerate() {
            let p1 = (p >> 1) & 1;
            let p2 = p & 1;
            let c0 = (b ^ p1 ^ p2) as i32;
            let c1 = (b ^ p2) as i32;
            if k == 0 {
                exp00[s] = c0;
                exp01[s] = c1;
            } else {
                exp10[s] = c0;
                exp11[s] = c1;
            }
        }
    }
    let source = format!(
        "int soft0[{NBITS}] = {{{soft0}}};
int soft1[{NBITS}] = {{{soft1}}};
int pred0[{STATES}] = {{{pred0}}};
int pred1[{STATES}] = {{{pred1}}};
int exp00[{STATES}] = {{{exp00}}};
int exp01[{STATES}] = {{{exp01}}};
int exp10[{STATES}] = {{{exp10}}};
int exp11[{STATES}] = {{{exp11}}};
int pm_old[{STATES}];
int pm_new[{STATES}];
int survivor[{surv}];
int decoded[{NBITS}];

int branch_metric(int soft, int expected) {{
    if (expected) return 7 - soft;
    return soft;
}}

void main() {{
    int t; int s; int i;
    pm_old[0] = 0;
    for (s = 1; s < {STATES}; s++) pm_old[s] = 1000;

    for (t = 0; t < {NBITS}; t++) {{
        int r0; int r1;
        r0 = soft0[t];
        r1 = soft1[t];
        for (s = 0; s < {STATES}; s++) {{
            int m0; int m1;
            m0 = pm_old[pred0[s]]
               + branch_metric(r0, exp00[s]) + branch_metric(r1, exp01[s]);
            m1 = pm_old[pred1[s]]
               + branch_metric(r0, exp10[s]) + branch_metric(r1, exp11[s]);
            if (m0 <= m1) {{
                pm_new[s] = m0;
                survivor[t * {STATES} + s] = pred0[s];
            }} else {{
                pm_new[s] = m1;
                survivor[t * {STATES} + s] = pred1[s];
            }}
        }}
        for (s = 0; s < {STATES}; s++)
            pm_old[s] = pm_new[s];
    }}

    /* Traceback from the best final state. */
    {{
        int best; int bm; int state;
        best = 0; bm = pm_old[0];
        for (s = 1; s < {STATES}; s++)
            if (pm_old[s] < bm) {{ bm = pm_old[s]; best = s; }}
        state = best;
        for (i = {NBITS} - 1; i >= 0; i--) {{
            decoded[i] = (state >> 1) & 1;
            state = survivor[i * {STATES} + state];
        }}
    }}
}}
",
        surv = NBITS * STATES,
        soft0 = i32_list(&soft0),
        soft1 = i32_list(&soft1),
        pred0 = i32_list(&pred0),
        pred1 = i32_list(&pred1),
        exp00 = i32_list(&exp00),
        exp01 = i32_list(&exp01),
        exp10 = i32_list(&exp10),
        exp11 = i32_list(&exp11),
    );
    Benchmark {
        name: "trellis".into(),
        kind: Kind::Application,
        description: "Trellis (Viterbi) decoder".into(),
        source,
        check_globals: vec!["decoded".into(), "pm_old".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_recovers_the_transmitted_bits() {
        let b = trellis();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let decoded: Vec<i32> = interp
            .global_mem_by_name("decoded")
            .unwrap()
            .iter()
            .map(|w| w.as_i32())
            .collect();
        // With the mild jitter used, Viterbi decodes the stream with at
        // most a few errors.
        let mut sent = crate::data::bits(901, NBITS - 2);
        sent.push(0);
        sent.push(0);
        let errors: usize = sent.iter().zip(&decoded).filter(|(a, b)| a != b).count();
        assert!(errors <= 3, "{errors} bit errors");
    }
}
