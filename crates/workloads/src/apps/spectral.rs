//! Spectral analysis by periodogram averaging (paper `spectral`, a3).
//!
//! Welch's method: overlapping segments are windowed, transformed with
//! an in-place radix-2 FFT, and their squared magnitudes averaged into
//! a power-spectral-density estimate. The in-place butterflies access
//! `segre[i]`/`segre[ip]` (and the imaginary twins) — same-array pairs
//! that partitioning cannot split — **and** store four results per
//! butterfly, so marking the segment buffers for duplication doubles a
//! large store stream. That is exactly why the paper found partial
//! duplication *less* effective than plain CB partitioning here
//! (Dup 1.06 vs CB 1.09 in Table 3).

use crate::data::{f32_list, quantize, tone_signal};
use crate::{Benchmark, Kind};

/// Input length.
const SAMPLES: usize = 192;
/// Segment (FFT) length; power of two.
const SEG: usize = 64;
/// Hop between segments (50 % overlap).
const HOP: usize = 32;

/// Build the `spectral` benchmark.
#[must_use]
pub fn spectral() -> Benchmark {
    let signal = tone_signal(201, SAMPLES);
    let window: Vec<f32> = (0..SEG)
        .map(|i| quantize(0.5 - 0.5 * (std::f32::consts::TAU * i as f32 / SEG as f32).cos()))
        .collect();
    let wr: Vec<f32> = (0..SEG / 2)
        .map(|i| quantize((std::f32::consts::TAU * i as f32 / SEG as f32).cos()))
        .collect();
    let wi: Vec<f32> = (0..SEG / 2)
        .map(|i| quantize(-(std::f32::consts::TAU * i as f32 / SEG as f32).sin()))
        .collect();
    let nseg = (SAMPLES - SEG) / HOP + 1;
    let log2 = SEG.trailing_zeros();
    let source = format!(
        "float signal[{SAMPLES}] = {{{signal}}};
float window[{SEG}] = {{{window}}};
float wr[{half}] = {{{wr}}};
float wi[{half}] = {{{wi}}};
float segre[{SEG}];
float segim[{SEG}];
float psd[{half}];

void main() {{
    int seg; int i; int j; int k; int stage;
    int le; int le1; int widx; int wstep; int ip;
    float tr; float ti; float ur; float ui;

    for (seg = 0; seg < {nseg}; seg++) {{
        int base; base = seg * {HOP};

        /* Windowed segment, zero imaginary part. */
        for (i = 0; i < {SEG}; i++) {{
            segre[i] = signal[base + i] * window[i];
            segim[i] = 0.0;
        }}

        /* Bit-reverse permutation. */
        j = 0;
        for (i = 0; i < {segm1}; i++) {{
            if (i < j) {{
                tr = segre[i]; segre[i] = segre[j]; segre[j] = tr;
                ti = segim[i]; segim[i] = segim[j]; segim[j] = ti;
            }}
            k = {half};
            while (k <= j) {{ j = j - k; k = k / 2; }}
            j = j + k;
        }}

        /* In-place butterflies: same-array accesses at i and i+le1. */
        le = 1;
        for (stage = 0; stage < {log2}; stage++) {{
            le1 = le;
            le = le * 2;
            wstep = {SEG} / le;
            for (j = 0; j < le1; j++) {{
                widx = j * wstep;
                ur = wr[widx];
                ui = wi[widx];
                for (i = j; i < {SEG}; i += le) {{
                    ip = i + le1;
                    tr = ur * segre[ip] - ui * segim[ip];
                    ti = ur * segim[ip] + ui * segre[ip];
                    segre[ip] = segre[i] - tr;
                    segim[ip] = segim[i] - ti;
                    segre[i] = segre[i] + tr;
                    segim[i] = segim[i] + ti;
                }}
            }}
        }}

        /* Accumulate the periodogram. */
        for (k = 0; k < {half}; k++)
            psd[k] += segre[k] * segre[k] + segim[k] * segim[k];
    }}

    /* Average. */
    for (k = 0; k < {half}; k++)
        psd[k] = psd[k] / {nseg}.0;
}}
",
        half = SEG / 2,
        segm1 = SEG - 1,
        signal = f32_list(&signal),
        window = f32_list(&window),
        wr = f32_list(&wr),
        wi = f32_list(&wi),
    );
    Benchmark {
        name: "spectral".into(),
        kind: Kind::Application,
        description: "Spectral analysis using periodogram averaging".into(),
        source,
        check_globals: vec!["psd".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_produces_finite_psd() {
        let b = spectral();
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let psd: Vec<f32> = interp
            .global_mem_by_name("psd")
            .unwrap()
            .iter()
            .map(|w| w.as_f32())
            .collect();
        assert!(psd.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(psd.iter().any(|&v| v > 0.0));
    }
}
