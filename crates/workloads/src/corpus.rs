//! Corpus loading: benchmarks from `.dsp` files on disk.
//!
//! A corpus file is plain DSP-C source, optionally preceded by `//`
//! comment lines recording provenance (the fuzzer writes seed, failure
//! kind, and shrink statistics there). Loading derives the benchmark
//! name from the file name and checks **every** global — corpus
//! programs exist to catch miscompiles, so the whole final memory
//! state is the contract, not a hand-picked output variable.
//!
//! Both the regression suite (`tests/fuzz_corpus.rs`) and the load
//! generator (`dsp-serve-load --corpus`) consume this layout.

use std::path::{Path, PathBuf};

use crate::{Benchmark, Kind};

/// Extension of corpus entries (`fir-mismatch.dsp`).
pub const CORPUS_EXT: &str = "dsp";

/// An error loading a corpus.
#[derive(Debug)]
pub enum CorpusError {
    /// Directory or file IO failed.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Underlying error.
        error: std::io::Error,
    },
    /// A corpus entry failed to parse as DSP-C.
    Parse {
        /// Offending path.
        path: PathBuf,
        /// Front-end error text.
        detail: String,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io { path, error } => {
                write!(f, "corpus: cannot read `{}`: {error}", path.display())
            }
            CorpusError::Parse { path, detail } => {
                write!(f, "corpus: `{}` is not DSP-C: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// Wrap DSP-C source text as a benchmark that checks every global.
///
/// # Errors
///
/// Returns [`CorpusError::Parse`] when the source fails the front-end
/// (corpus entries must stay compilable — a stale entry is a bug).
pub fn benchmark_from_source(
    name: &str,
    source: &str,
    origin: &Path,
) -> Result<Benchmark, CorpusError> {
    let ast = dsp_frontend::parse::parse(source).map_err(|e| CorpusError::Parse {
        path: origin.to_path_buf(),
        detail: e.to_string(),
    })?;
    let check_globals = ast
        .items
        .iter()
        .filter_map(|item| match item {
            dsp_frontend::ast::Item::Global(g) => Some(g.name.clone()),
            dsp_frontend::ast::Item::Func(_) => None,
        })
        .collect();
    Ok(Benchmark {
        name: name.to_string(),
        kind: Kind::Application,
        description: format!("corpus entry {}", origin.display()),
        source: source.to_string(),
        check_globals,
    })
}

/// Load one `.dsp` corpus file.
///
/// # Errors
///
/// Returns [`CorpusError`] on IO or parse failure.
pub fn load_file(path: &Path) -> Result<Benchmark, CorpusError> {
    let source = std::fs::read_to_string(path).map_err(|error| CorpusError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    let name = path
        .file_stem()
        .map_or_else(|| "corpus".to_string(), |s| s.to_string_lossy().to_string());
    benchmark_from_source(&name, &source, path)
}

/// Load every `*.dsp` file in `dir`, sorted by file name so corpus
/// order (and everything derived from it: engine matrices, fuzz
/// replay, load-generator splits) is deterministic.
///
/// # Errors
///
/// Returns [`CorpusError`] on IO failure or the first unparsable entry.
pub fn load_dir(dir: &Path) -> Result<Vec<Benchmark>, CorpusError> {
    let entries = std::fs::read_dir(dir).map_err(|error| CorpusError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == CORPUS_EXT))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_file(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_a_directory_in_name_order() {
        let dir = std::env::temp_dir().join(format!("dsp-corpus-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("b-second.dsp"),
            "// seed: 7\nint out; void main() { out = 2; }",
        )
        .unwrap();
        std::fs::write(dir.join("a-first.dsp"), "int out; void main() { out = 1; }").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not dsp").unwrap();
        let benches = load_dir(&dir).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].name, "a-first");
        assert_eq!(benches[1].name, "b-second");
        assert_eq!(benches[0].check_globals, vec!["out".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_global_is_checked() {
        let b = benchmark_from_source(
            "t",
            "int a; float B[4]; int helper() { return 1; } void main() { a = helper(); }",
            Path::new("t.dsp"),
        )
        .unwrap();
        assert_eq!(b.check_globals, vec!["a".to_string(), "B".to_string()]);
    }

    #[test]
    fn unparsable_entry_is_an_error() {
        let err = benchmark_from_source("bad", "int ;;;", Path::new("bad.dsp")).unwrap_err();
        assert!(err.to_string().contains("not DSP-C"), "{err}");
    }

    #[test]
    fn corpus_benchmarks_run_through_the_harness() {
        let b = benchmark_from_source(
            "sum",
            "int A[4] = {1, 2, 3, 4}; int out;
             void main() { int i; out = 0; for (i = 0; i < 4; i++) out += A[i]; }",
            Path::new("sum.dsp"),
        )
        .unwrap();
        let m = crate::runner::measure(&b, dsp_backend::Strategy::CbPartition).unwrap();
        assert!(m.cycles > 0);
    }
}
