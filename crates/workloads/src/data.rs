//! Deterministic input-data generation for the benchmark programs.
//!
//! All benchmarks use fixed seeds so every run — test, bench, or
//! example — executes exactly the same computation.

/// A small deterministic linear-congruential generator (Numerical
/// Recipes constants), independent of any external crate so workload
/// data can never drift.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    /// Create a generator with the given seed.
    #[must_use]
    pub fn new(seed: u32) -> Lcg {
        Lcg { state: seed }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(1_664_525)
            .wrapping_add(1_013_904_223);
        self.state
    }

    /// Uniform float in `[-1, 1)` with limited precision (so decimal
    /// formatting round-trips exactly).
    pub fn next_f32(&mut self) -> f32 {
        let v = (self.next_u32() >> 16) as i32 - 32_768; // [-32768, 32767]
        v as f32 / 32_768.0
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u32) -> i32 {
        assert!(bound > 0, "bound must be positive");
        (self.next_u32() % bound) as i32
    }
}

/// Format a float so the DSP-C lexer parses back the identical `f32`.
#[must_use]
pub fn fmt_f32(v: f32) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{v:.1}")
    } else {
        format!("{v:e}")
    }
}

/// Render a float initializer list.
#[must_use]
pub fn f32_list(values: &[f32]) -> String {
    values
        .iter()
        .map(|&v| fmt_f32(v))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render an int initializer list.
#[must_use]
pub fn i32_list(values: &[i32]) -> String {
    values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// `n` pseudo-random floats in `[-1, 1)`.
#[must_use]
pub fn noise(seed: u32, n: usize) -> Vec<f32> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.next_f32()).collect()
}

/// A deterministic multi-tone test signal: a sum of two sinusoids plus
/// low-level noise, quantized for exact formatting.
#[must_use]
pub fn tone_signal(seed: u32, n: usize) -> Vec<f32> {
    let mut rng = Lcg::new(seed);
    (0..n)
        .map(|i| {
            let t = i as f32;
            let s = (0.45 * (t * 0.19).sin() + 0.3 * (t * 0.047).sin()) + 0.1 * rng.next_f32();
            quantize(s)
        })
        .collect()
}

/// Sine table of length `n` scaled by `amp`, quantized.
#[must_use]
pub fn sine_table(n: usize, amp: f32) -> Vec<f32> {
    (0..n)
        .map(|i| quantize(amp * (std::f32::consts::TAU * i as f32 / n as f32).sin()))
        .collect()
}

/// Cosine table of length `n` scaled by `amp`, quantized.
#[must_use]
pub fn cosine_table(n: usize, amp: f32) -> Vec<f32> {
    (0..n)
        .map(|i| quantize(amp * (std::f32::consts::TAU * i as f32 / n as f32).cos()))
        .collect()
}

/// Quantize to 2^-15 steps so decimal formatting is exact and fixed
/// across platforms.
#[must_use]
pub fn quantize(v: f32) -> f32 {
    (v * 32_768.0).round() / 32_768.0
}

/// `n` pseudo-random pixel values in `[0, 256)`.
#[must_use]
pub fn pixels(seed: u32, n: usize) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.next_range(256)).collect()
}

/// `n` pseudo-random bits.
#[must_use]
pub fn bits(seed: u32, n: usize) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.next_range(2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = Lcg::new(42);
            (0..5).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Lcg::new(42);
            (0..5).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fmt_round_trips() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, -0.25, 3.25159, -0.007, 123_456.78] {
            let s = fmt_f32(v);
            let parsed: f32 = s.parse().expect("parses");
            assert_eq!(parsed, v, "{s}");
        }
        let mut rng = Lcg::new(7);
        for _ in 0..1000 {
            let v = rng.next_f32();
            let parsed: f32 = fmt_f32(v).parse().unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn quantized_signals_format_exactly() {
        for v in tone_signal(3, 64) {
            let parsed: f32 = fmt_f32(v).parse().unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn ranges_respected() {
        let px = pixels(1, 100);
        assert!(px.iter().all(|&p| (0..256).contains(&p)));
        let bs = bits(1, 100);
        assert!(bs.iter().all(|&b| b == 0 || b == 1));
    }
}
