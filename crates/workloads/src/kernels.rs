//! The DSP kernel benchmarks (paper Table 1).
//!
//! Six core signal-processing algorithms, each instantiated at a large
//! and a small size, exactly as in the paper: `fft_1024`, `fft_256`,
//! `fir_256_64`, `fir_32_1`, `iir_4_64`, `iir_1_1`, `latnrm_32_64`,
//! `latnrm_8_1`, `lmsfir_32_64`, `lmsfir_8_1`, `mult_10_10`,
//! `mult_4_4`. Input signals and coefficients are deterministic
//! ([`crate::data`]), baked into the generated DSP-C source as
//! initializer lists.

use crate::data::{f32_list, noise, quantize, sine_table, tone_signal};
use crate::{Benchmark, Kind};

/// `taps`-tap FIR filter over `samples` output samples
/// (`fir_256_64`, `fir_32_1`).
#[must_use]
pub fn fir(taps: usize, samples: usize) -> Benchmark {
    let c = sine_table(taps, 0.9);
    let x = tone_signal(11, taps + samples);
    let source = format!(
        "float c[{taps}] = {{{c}}};
float x[{len}] = {{{x}}};
float y[{samples}];

void main() {{
    int n; int k;
    for (n = 0; n < {samples}; n++) {{
        float acc; acc = 0.0;
        for (k = 0; k < {taps}; k++)
            acc += c[k] * x[n + k];
        y[n] = acc;
    }}
}}
",
        len = taps + samples,
        c = f32_list(&c),
        x = f32_list(&x),
    );
    Benchmark {
        name: format!("fir_{taps}_{samples}"),
        kind: Kind::Kernel,
        description: format!("{taps}-tap FIR filter processing {samples} samples"),
        source,
        check_globals: vec!["y".into()],
    }
}

/// Radix-2, in-place, decimation-in-time FFT of `n` points
/// (`fft_1024`, `fft_256`). `n` must be a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn fft(n: usize) -> Benchmark {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let re = tone_signal(5, n);
    let im = vec![0.0f32; n];
    let wr = cosine_half_table(n);
    let wi = sine_half_table(n);
    let log2n = n.trailing_zeros();
    let source = format!(
        "float re[{n}] = {{{re}}};
float im[{n}] = {{{im}}};
float wr[{half}] = {{{wr}}};
float wi[{half}] = {{{wi}}};

void main() {{
    int i; int j; int k; int stage;
    int le; int le1; int widx; int wstep; int ip;
    float tr; float ti; float ur; float ui;

    /* Bit-reverse permutation. */
    j = 0;
    for (i = 0; i < {nm1}; i++) {{
        if (i < j) {{
            tr = re[i]; re[i] = re[j]; re[j] = tr;
            ti = im[i]; im[i] = im[j]; im[j] = ti;
        }}
        k = {half};
        while (k <= j) {{ j = j - k; k = k / 2; }}
        j = j + k;
    }}

    /* Butterfly stages. */
    le = 1;
    for (stage = 0; stage < {log2n}; stage++) {{
        le1 = le;
        le = le * 2;
        wstep = {n} / le;
        for (j = 0; j < le1; j++) {{
            widx = j * wstep;
            ur = wr[widx];
            ui = wi[widx];
            for (i = j; i < {n}; i += le) {{
                ip = i + le1;
                tr = ur * re[ip] - ui * im[ip];
                ti = ur * im[ip] + ui * re[ip];
                re[ip] = re[i] - tr;
                im[ip] = im[i] - ti;
                re[i] = re[i] + tr;
                im[i] = im[i] + ti;
            }}
        }}
    }}
}}
",
        half = n / 2,
        nm1 = n - 1,
        re = f32_list(&re),
        im = f32_list(&im),
        wr = f32_list(&wr),
        wi = f32_list(&wi),
    );
    Benchmark {
        name: format!("fft_{n}"),
        kind: Kind::Kernel,
        description: format!("radix-2 in-place decimation-in-time FFT, {n} points"),
        source,
        check_globals: vec!["re".into(), "im".into()],
    }
}

fn cosine_half_table(n: usize) -> Vec<f32> {
    (0..n / 2)
        .map(|i| quantize((std::f32::consts::TAU * i as f32 / n as f32).cos()))
        .collect()
}

fn sine_half_table(n: usize) -> Vec<f32> {
    (0..n / 2)
        .map(|i| quantize(-(std::f32::consts::TAU * i as f32 / n as f32).sin()))
        .collect()
}

/// Cascaded-biquad IIR filter: `sections` direct-form-II sections over
/// `samples` samples (`iir_4_64`, `iir_1_1`).
#[must_use]
pub fn iir(sections: usize, samples: usize) -> Benchmark {
    // Mild, stable coefficients.
    let a1: Vec<f32> = (0..sections)
        .map(|s| quantize(-0.5 + 0.05 * s as f32))
        .collect();
    let a2: Vec<f32> = (0..sections)
        .map(|s| quantize(0.25 - 0.02 * s as f32))
        .collect();
    let b0: Vec<f32> = (0..sections)
        .map(|s| quantize(0.3 + 0.01 * s as f32))
        .collect();
    let b1: Vec<f32> = (0..sections).map(|_| quantize(0.15)).collect();
    let b2: Vec<f32> = (0..sections)
        .map(|s| quantize(0.05 + 0.005 * s as f32))
        .collect();
    let x = tone_signal(23, samples);
    let source = format!(
        "float a1[{sections}] = {{{a1}}};
float a2[{sections}] = {{{a2}}};
float b0[{sections}] = {{{b0}}};
float b1[{sections}] = {{{b1}}};
float b2[{sections}] = {{{b2}}};
float w1[{sections}];
float w2[{sections}];
float x[{samples}] = {{{x}}};
float y[{samples}];

void main() {{
    int n; int s;
    for (n = 0; n < {samples}; n++) {{
        float v; float w0;
        v = x[n];
        for (s = 0; s < {sections}; s++) {{
            w0 = v - a1[s] * w1[s] - a2[s] * w2[s];
            v = b0[s] * w0 + b1[s] * w1[s] + b2[s] * w2[s];
            w2[s] = w1[s];
            w1[s] = w0;
        }}
        y[n] = v;
    }}
}}
",
        a1 = f32_list(&a1),
        a2 = f32_list(&a2),
        b0 = f32_list(&b0),
        b1 = f32_list(&b1),
        b2 = f32_list(&b2),
        x = f32_list(&x),
    );
    Benchmark {
        name: format!("iir_{sections}_{samples}"),
        kind: Kind::Kernel,
        description: format!("IIR filter, {sections} biquad section(s), {samples} samples"),
        source,
        check_globals: vec!["y".into()],
    }
}

/// Normalized lattice filter of the given `order` over `samples`
/// samples (`latnrm_32_64`, `latnrm_8_1`).
#[must_use]
pub fn latnrm(order: usize, samples: usize) -> Benchmark {
    let k: Vec<f32> = (0..order)
        .map(|m| quantize(0.8 * (0.37 * (m as f32 + 1.0)).sin() / (m as f32 + 2.0).sqrt()))
        .collect();
    let c: Vec<f32> = (0..order)
        .map(|m| quantize((1.0 - 0.6 * (0.21 * m as f32).sin().powi(2)).sqrt()))
        .collect();
    let x = tone_signal(31, samples);
    let source = format!(
        "float k[{order}] = {{{k}}};
float c[{order}] = {{{c}}};
float d[{order}];
float x[{samples}] = {{{x}}};
float y[{samples}];

void main() {{
    int n; int m;
    for (n = 0; n < {samples}; n++) {{
        float f; float b; float dm;
        f = x[n];
        b = x[n];
        for (m = 0; m < {order}; m++) {{
            dm = d[m];
            f = c[m] * f + k[m] * dm;
            b = k[m] * f + c[m] * dm;
            d[m] = b;
        }}
        y[n] = f;
    }}
}}
",
        k = f32_list(&k),
        c = f32_list(&c),
        x = f32_list(&x),
    );
    Benchmark {
        name: format!("latnrm_{order}_{samples}"),
        kind: Kind::Kernel,
        description: format!("normalized lattice filter, order {order}, {samples} samples"),
        source,
        check_globals: vec!["y".into()],
    }
}

/// Least-mean-squares adaptive FIR: `taps` coefficients adapting over
/// `samples` samples (`lmsfir_32_64`, `lmsfir_8_1`).
#[must_use]
pub fn lmsfir(taps: usize, samples: usize) -> Benchmark {
    let x = tone_signal(41, taps + samples);
    let d = tone_signal(43, samples);
    let source = format!(
        "float c[{taps}];
float x[{len}] = {{{x}}};
float d[{samples}] = {{{d}}};
float y[{samples}];
float err[{samples}];

void main() {{
    int n; int kk;
    float mu; mu = 0.01;
    for (n = 0; n < {samples}; n++) {{
        float acc; float e;
        acc = 0.0;
        for (kk = 0; kk < {taps}; kk++)
            acc += c[kk] * x[n + kk];
        y[n] = acc;
        e = mu * (d[n] - acc);
        err[n] = e;
        for (kk = 0; kk < {taps}; kk++)
            c[kk] += e * x[n + kk];
    }}
}}
",
        len = taps + samples,
        x = f32_list(&x),
        d = f32_list(&d),
    );
    Benchmark {
        name: format!("lmsfir_{taps}_{samples}"),
        kind: Kind::Kernel,
        description: format!("LMS adaptive FIR filter, {taps} taps, {samples} samples"),
        source,
        check_globals: vec!["y".into(), "err".into(), "c".into()],
    }
}

/// Dense matrix multiply `C = A × B`, `n × n` (`mult_10_10`,
/// `mult_4_4`).
#[must_use]
pub fn matmul(n: usize) -> Benchmark {
    let a = noise(51, n * n);
    let b = noise(53, n * n);
    let source = format!(
        "float A[{nn}] = {{{a}}};
float B[{nn}] = {{{b}}};
float C[{nn}];

void main() {{
    int i; int j; int k;
    for (i = 0; i < {n}; i++)
        for (j = 0; j < {n}; j++) {{
            float acc; acc = 0.0;
            for (k = 0; k < {n}; k++)
                acc += A[i * {n} + k] * B[k * {n} + j];
            C[i * {n} + j] = acc;
        }}
}}
",
        nn = n * n,
        a = f32_list(&a),
        b = f32_list(&b),
    );
    Benchmark {
        name: format!("mult_{n}_{n}"),
        kind: Kind::Kernel,
        description: format!("{n}x{n} matrix multiplication"),
        source,
        check_globals: vec!["C".into()],
    }
}

/// The twelve kernel benchmarks of Table 1, in figure order
/// (k1 … k12).
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        fft(1024),
        fft(256),
        fir(256, 64),
        fir(32, 1),
        iir(4, 64),
        iir(1, 1),
        latnrm(32, 64),
        latnrm(8, 1),
        lmsfir(32, 64),
        lmsfir(8, 1),
        matmul(10),
        matmul(4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sources_compile_and_run_in_interpreter() {
        // Use the small variants to keep the test quick; the large ones
        // run in the integration suite.
        for b in [
            fir(32, 1),
            iir(1, 1),
            latnrm(8, 1),
            lmsfir(8, 1),
            matmul(4),
            fft(256),
        ] {
            let program =
                dsp_frontend::compile_str(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let mut interp = dsp_ir::Interpreter::new(&program);
            interp.run().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            for g in &b.check_globals {
                assert!(
                    program.global_by_name(g).is_some(),
                    "{}: missing {g}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn fft_is_correct_against_reference() {
        let b = fft(256);
        let program = dsp_frontend::compile_str(&b.source).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&program);
        interp.run().unwrap();
        let re: Vec<f32> = interp
            .global_mem_by_name("re")
            .unwrap()
            .iter()
            .map(|w| w.as_f32())
            .collect();
        let im: Vec<f32> = interp
            .global_mem_by_name("im")
            .unwrap()
            .iter()
            .map(|w| w.as_f32())
            .collect();
        // Reference DFT in f64.
        let x = crate::data::tone_signal(5, 256);
        for k in [0usize, 1, 17, 128, 255] {
            let mut sr = 0f64;
            let mut si = 0f64;
            for (n, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / 256.0;
                sr += f64::from(v) * ang.cos();
                si += f64::from(v) * ang.sin();
            }
            assert!(
                (f64::from(re[k]) - sr).abs() < 0.05 && (f64::from(im[k]) - si).abs() < 0.05,
                "bin {k}: got ({}, {}), want ({sr:.4}, {si:.4})",
                re[k],
                im[k]
            );
        }
    }

    #[test]
    fn twelve_kernels_with_paper_names() {
        let names: Vec<String> = all().into_iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "fft_1024",
                "fft_256",
                "fir_256_64",
                "fir_32_1",
                "iir_4_64",
                "iir_1_1",
                "latnrm_32_64",
                "latnrm_8_1",
                "lmsfir_32_64",
                "lmsfir_8_1",
                "mult_10_10",
                "mult_4_4",
            ]
        );
    }
}
