#![warn(missing_docs)]
//! The benchmark suite of the paper: 12 DSP kernels (Table 1) and 11
//! DSP applications (Table 2), written in DSP-C with deterministic,
//! baked-in input data.
//!
//! Each [`Benchmark`] carries its source text and the list of globals
//! whose final contents define correctness: the [`runner`] executes the
//! compiled program on the simulator and compares those globals,
//! word-for-word, against the reference interpreter.
//!
//! # Example
//!
//! ```
//! use dsp_backend::Strategy;
//! use dsp_workloads::{kernels, runner};
//!
//! let bench = kernels::fir(32, 1);
//! let m = runner::measure(&bench, Strategy::CbPartition)?;
//! assert!(m.cycles > 0);
//! # Ok::<(), dsp_workloads::runner::RunError>(())
//! ```

pub mod apps;
pub mod corpus;
pub mod data;
pub mod kernels;
pub mod runner;

/// Kernel or full application (paper Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A signal-processing loop kernel.
    Kernel,
    /// A complete embedded application.
    Application,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::Kernel => write!(f, "kernel"),
            Kind::Application => write!(f, "application"),
        }
    }
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Name, matching the paper's tables (e.g. `fir_256_64`, `lpc`).
    pub name: String,
    /// Kernel or application.
    pub kind: Kind,
    /// One-line description (paper Table 1/2 wording).
    pub description: String,
    /// The DSP-C source text.
    pub source: String,
    /// Globals whose final values define the benchmark's correctness.
    pub check_globals: Vec<String>,
}

/// All 23 benchmarks: the 12 kernels followed by the 11 applications,
/// in the order of Figures 7 and 8.
#[must_use]
pub fn all() -> Vec<Benchmark> {
    let mut out = kernels::all();
    out.extend(apps::all());
    out
}

/// Look up a benchmark by its paper name.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete() {
        let suite = all();
        assert_eq!(suite.len(), 23);
        assert_eq!(suite.iter().filter(|b| b.kind == Kind::Kernel).count(), 12);
        assert_eq!(
            suite.iter().filter(|b| b.kind == Kind::Application).count(),
            11
        );
    }

    #[test]
    fn names_are_unique() {
        let suite = all();
        let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lpc").is_some());
        assert!(by_name("fft_1024").is_some());
        assert!(by_name("nonesuch").is_none());
    }
}
