//! Compile-run-verify harness for the benchmarks.
//!
//! [`measure`] compiles a benchmark under one [`Strategy`], executes it
//! on the simulator, verifies every checked global against the
//! reference interpreter, and reports the paper's metrics: cycles and
//! the first-order memory cost `X + Y + 2·S + I` (§4.2), with `S`
//! measured as the stack high-water mark of the run.

use dsp_backend::{compile_ir, CompileError, Strategy};
use dsp_ir::{InterpError, Interpreter, Program};
use dsp_machine::{VliwProgram, Word};
use dsp_sim::{SimError, SimOptions, SimStats, Simulator};

use crate::Benchmark;

/// The result of measuring one (benchmark, strategy) pair.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Strategy used.
    pub strategy: Strategy,
    /// Cycles executed.
    pub cycles: u64,
    /// Memory cost in words: `X + Y + 2·S + I` with measured `S`.
    pub memory_cost: u64,
    /// Static data words in bank X / bank Y.
    pub static_words: (u32, u32),
    /// Measured stack high-water mark (the `S` term).
    pub stack_words: u32,
    /// Instruction-memory words (`I` term).
    pub inst_words: u32,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Number of variables the allocator duplicated.
    pub duplicated_vars: usize,
}

/// Errors from the harness.
#[derive(Debug)]
pub enum RunError {
    /// The benchmark source failed to compile.
    Compile(CompileError),
    /// The reference interpreter failed.
    Interp(InterpError),
    /// The simulator failed.
    Sim(SimError),
    /// A checked global differed from the interpreter.
    Mismatch {
        /// The offending global.
        global: String,
        /// Description of the first difference.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Interp(e) => write!(f, "interpreter error: {e}"),
            RunError::Sim(e) => write!(f, "simulator error: {e}"),
            RunError::Mismatch { global, detail } => {
                write!(f, "global `{global}` mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> RunError {
        RunError::Compile(e)
    }
}

impl From<InterpError> for RunError {
    fn from(e: InterpError) -> RunError {
        RunError::Interp(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> RunError {
        RunError::Sim(e)
    }
}

/// Compile and parse the benchmark source into IR (cached by callers
/// that measure several strategies).
///
/// # Errors
///
/// Returns [`RunError::Compile`] on front-end failure.
pub fn frontend(bench: &Benchmark) -> Result<Program, RunError> {
    dsp_frontend::compile_str(&bench.source)
        .map_err(|e| RunError::Compile(CompileError::Frontend(e)))
}

/// Measure one (benchmark, strategy) pair, verifying correctness.
///
/// # Errors
///
/// Returns a [`RunError`] on compile/run failure or output mismatch.
pub fn measure(bench: &Benchmark, strategy: Strategy) -> Result<Measurement, RunError> {
    let ir = frontend(bench)?;
    measure_ir(bench, &ir, strategy)
}

/// Run the reference interpreter over the benchmark's IR and return the
/// final words of every global, by name.
///
/// The result is strategy-independent, so callers that sweep several
/// strategies (notably `dsp-driver`) run this once per benchmark and
/// verify each compiled configuration against the same snapshot.
///
/// # Errors
///
/// Returns [`InterpError`] if the reference run traps (the only way
/// this can fail — kept narrow and `Clone` so `dsp-driver` can cache
/// the outcome).
pub fn reference_globals(ir: &Program) -> Result<Vec<(String, Vec<Word>)>, InterpError> {
    let mut interp = Interpreter::new(ir);
    interp.run()?;
    Ok(ir
        .globals
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            (
                g.name.clone(),
                interp.global_mem(dsp_ir::GlobalId(gi as u32)).to_vec(),
            )
        })
        .collect())
}

/// Verify a simulated run against a reference snapshot from
/// [`reference_globals`]: every checked global must match word for
/// word, and duplicated copies must agree with their primaries.
///
/// # Errors
///
/// Returns [`RunError::Mismatch`] on the first difference.
pub fn verify_sim(
    bench: &Benchmark,
    strategy: Strategy,
    sim: &Simulator,
    reference: &[(String, Vec<Word>)],
) -> Result<(), RunError> {
    for name in &bench.check_globals {
        let want = reference
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
            .ok_or_else(|| RunError::Mismatch {
                global: name.clone(),
                detail: "missing in interpreter".into(),
            })?;
        let got = sim.read_symbol(name).ok_or_else(|| RunError::Mismatch {
            global: name.clone(),
            detail: "missing in simulator".into(),
        })?;
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            if w != g {
                return Err(RunError::Mismatch {
                    global: name.clone(),
                    detail: format!("[{strategy}] index {i}: interpreter {w:?}, simulator {g:?}"),
                });
            }
        }
        if let Some(copy) = sim.read_symbol_copy(name) {
            if copy != got {
                return Err(RunError::Mismatch {
                    global: name.clone(),
                    detail: format!("[{strategy}] duplicated copies diverged"),
                });
            }
        }
    }
    Ok(())
}

/// Assemble a [`Measurement`] from a compiled artifact and the
/// statistics of its simulated run.
#[must_use]
pub fn build_measurement(
    bench: &Benchmark,
    out: &dsp_backend::CompileOutput,
    stats: SimStats,
) -> Measurement {
    measure_program(
        &bench.name,
        &out.program,
        out.strategy,
        out.alloc.duplicated().len(),
        stats,
    )
}

/// [`build_measurement`] for callers that no longer hold the full
/// [`dsp_backend::CompileOutput`] — everything a measurement needs is
/// the linked program, the strategy, and the duplicated-variable count
/// (which is how the driver's disk-rehydrated artifacts are measured).
#[must_use]
pub fn measure_program(
    name: &str,
    program: &VliwProgram,
    strategy: Strategy,
    duplicated_vars: usize,
    stats: SimStats,
) -> Measurement {
    let stack = stats.max_stack_words();
    let memory_cost = u64::from(program.x_static_words)
        + u64::from(program.y_static_words)
        + 2 * u64::from(stack)
        + u64::from(program.inst_count());
    Measurement {
        name: name.to_string(),
        strategy,
        cycles: stats.cycles,
        memory_cost,
        static_words: (program.x_static_words, program.y_static_words),
        stack_words: stack,
        inst_words: program.inst_count(),
        stats,
        duplicated_vars,
    }
}

/// [`measure`] with a pre-parsed IR program (avoids re-lexing the
/// baked-in data tables for every strategy).
///
/// # Errors
///
/// Returns a [`RunError`] on compile/run failure or output mismatch.
pub fn measure_ir(
    bench: &Benchmark,
    ir: &Program,
    strategy: Strategy,
) -> Result<Measurement, RunError> {
    let reference = reference_globals(ir)?;

    let out = compile_ir(ir, strategy)?;
    let mut sim = Simulator::new(
        &out.program,
        SimOptions {
            dual_ported: strategy.dual_ported(),
            ..SimOptions::default()
        },
    );
    let stats = sim.run()?;

    verify_sim(bench, strategy, &sim, &reference)?;
    Ok(build_measurement(bench, &out, stats))
}

/// Measure a benchmark under every strategy; the IR front-end runs only
/// once.
///
/// # Errors
///
/// Returns the first [`RunError`] encountered.
pub fn measure_all(bench: &Benchmark) -> Result<Vec<Measurement>, RunError> {
    let ir = frontend(bench)?;
    Strategy::ALL
        .iter()
        .map(|&s| measure_ir(bench, &ir, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_kernel_all_strategies() {
        let bench = crate::kernels::fir(8, 4);
        let ms = measure_all(&bench).expect("all strategies run");
        assert_eq!(ms.len(), Strategy::ALL.len());
        let base = ms[0].cycles;
        for m in &ms {
            assert!(m.cycles > 0 && m.cycles <= base + 8);
            assert!(m.memory_cost > 0);
        }
    }

    #[test]
    fn ideal_never_slower_than_cb() {
        let bench = crate::kernels::matmul(4);
        let cb = measure(&bench, Strategy::CbPartition).unwrap();
        let ideal = measure(&bench, Strategy::Ideal).unwrap();
        assert!(ideal.cycles <= cb.cycles);
    }
}
