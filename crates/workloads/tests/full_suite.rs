//! Full-suite verification: every benchmark × every strategy executes
//! on the simulator and matches the reference interpreter word for
//! word, and the headline *shapes* of the paper's results hold.

use dsp_backend::Strategy;
use dsp_workloads::runner::{measure_all, Measurement};
use dsp_workloads::{all, by_name, Kind};

fn cycles_of(ms: &[Measurement], s: Strategy) -> u64 {
    ms.iter()
        .find(|m| m.strategy == s)
        .expect("measured")
        .cycles
}

fn gain(base: u64, opt: u64) -> f64 {
    (base as f64 / opt as f64 - 1.0) * 100.0
}

/// Every benchmark, every strategy: correct execution (the comparison
/// against the interpreter happens inside `measure_all`).
#[test]
fn entire_suite_is_correct_under_every_strategy() {
    for bench in all() {
        let ms = measure_all(&bench).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let base = cycles_of(&ms, Strategy::Baseline);
        let ideal = cycles_of(&ms, Strategy::Ideal);
        assert!(
            ideal <= base,
            "{}: Ideal ({ideal}) must not lose to baseline ({base})",
            bench.name
        );
        for m in &ms {
            // Ideal (dual-ported memory) is a *near* lower bound: the
            // greedy list scheduler follows a descendant-count priority
            // heuristic, and CB's forced bank diversity occasionally
            // steers it to a slightly better schedule than the fully
            // flexible Ideal claims do (observed on iir_4_64, ~12 %).
            // No scheme may beat Ideal by more than that heuristic
            // noise.
            assert!(
                (m.cycles as f64) * 1.15 + 2.0 >= ideal as f64,
                "{} [{}]: {} cycles far below the Ideal bound {ideal}",
                bench.name,
                m.strategy,
                m.cycles
            );
        }
    }
}

/// Figure 7's shape: CB partitioning helps every kernel and lands at or
/// near the dual-ported ideal.
#[test]
fn kernels_gain_substantially_and_cb_tracks_ideal() {
    let mut cb_gains = Vec::new();
    for bench in all().into_iter().filter(|b| b.kind == Kind::Kernel) {
        let ms = measure_all(&bench).unwrap();
        let base = cycles_of(&ms, Strategy::Baseline);
        let cb = cycles_of(&ms, Strategy::CbPartition);
        let ideal = cycles_of(&ms, Strategy::Ideal);
        let g_cb = gain(base, cb);
        let g_ideal = gain(base, ideal);
        assert!(
            cb < base,
            "{}: CB must improve on the baseline ({cb} vs {base})",
            bench.name
        );
        // CB reaches most of the ideal headroom on kernels.
        assert!(
            g_cb >= 0.5 * g_ideal,
            "{}: CB gain {g_cb:.1}% too far from ideal {g_ideal:.1}%",
            bench.name
        );
        cb_gains.push(g_cb);
    }
    let avg = cb_gains.iter().sum::<f64>() / cb_gains.len() as f64;
    assert!(
        avg >= 10.0,
        "average kernel gain should be well into double digits, got {avg:.1}%"
    );
}

/// The paper's \"no parallelism\" group: histogram and the three G721
/// codecs gain (almost) nothing even with a dual-ported memory.
#[test]
fn serial_applications_gain_nothing() {
    for name in ["histogram", "G721MLencode", "G721MLdecode", "G721WFencode"] {
        let bench = by_name(name).unwrap();
        let ms = measure_all(&bench).unwrap();
        let base = cycles_of(&ms, Strategy::Baseline);
        let ideal = cycles_of(&ms, Strategy::Ideal);
        let g = gain(base, ideal);
        assert!(
            g < 5.0,
            "{name}: ideal gain should be marginal, got {g:.1}%"
        );
    }
}

/// The lpc story (paper §4.1): partitioning alone gains little because
/// the autocorrelation reads one array twice; partial duplication
/// recovers most of the ideal gain.
#[test]
fn lpc_needs_duplication() {
    let bench = by_name("lpc").unwrap();
    let ms = measure_all(&bench).unwrap();
    let base = cycles_of(&ms, Strategy::Baseline);
    let cb = cycles_of(&ms, Strategy::CbPartition);
    let dup = cycles_of(&ms, Strategy::PartialDup);
    let ideal = cycles_of(&ms, Strategy::Ideal);
    let (g_cb, g_dup, g_ideal) = (gain(base, cb), gain(base, dup), gain(base, ideal));
    assert!(
        g_dup > g_cb + 5.0,
        "duplication must clearly beat CB: dup {g_dup:.1}% vs cb {g_cb:.1}%"
    );
    assert!(
        g_dup >= 0.6 * g_ideal,
        "duplication should recover most of ideal: {g_dup:.1}% vs {g_ideal:.1}%"
    );
}

/// Duplication actually duplicates on exactly the programs the paper
/// names (lpc, spectral, V32encode among the applications).
#[test]
fn duplication_candidates_match_the_paper() {
    for bench in all().into_iter().filter(|b| b.kind == Kind::Application) {
        let m = dsp_workloads::runner::measure(&bench, Strategy::PartialDup).unwrap();
        let expect_dup = matches!(bench.name.as_str(), "lpc" | "spectral" | "V32encode");
        assert_eq!(
            m.duplicated_vars > 0,
            expect_dup,
            "{}: duplicated {} variables",
            bench.name,
            m.duplicated_vars
        );
    }
}

/// Full duplication is never cheaper than partial duplication in
/// memory, and partial duplication's cost stays close to CB's
/// (Table 3's cost columns).
#[test]
fn duplication_cost_ordering() {
    for name in ["lpc", "spectral", "V32encode", "edge_detect"] {
        let bench = by_name(name).unwrap();
        let ms = measure_all(&bench).unwrap();
        let cost = |s: Strategy| {
            ms.iter()
                .find(|m| m.strategy == s)
                .expect("measured")
                .memory_cost
        };
        assert!(
            cost(Strategy::FullDup) >= cost(Strategy::PartialDup),
            "{name}: full-dup memory must dominate partial"
        );
        assert!(
            cost(Strategy::PartialDup) >= cost(Strategy::CbPartition),
            "{name}: partial-dup memory must not undercut CB"
        );
    }
}
