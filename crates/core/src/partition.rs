//! Partitioning the interference graph into two memory banks.
//!
//! The paper partitions by "searching for a minimum-cost partitioning"
//! with a greedy algorithm (§3.1, Figure 5): all nodes start in the
//! first set (bank X) and the second set is empty; the cost of a
//! partitioning is the total weight of edges joining nodes in the
//! *same* set (those parallel accesses are lost). The algorithm
//! repeatedly moves the node whose move to the second set yields the
//! greatest net decrease in cost, stopping when no move decreases cost.
//!
//! Exact minimum-cost bipartitioning is NP-complete (it is weighted
//! max-cut), so this module also provides an exhaustive oracle for
//! small graphs — used in tests to confirm the paper's observation that
//! the greedy result is near-optimal — and a bidirectional refinement
//! pass as an ablation.

use std::collections::HashMap;

use dsp_machine::Bank;

use crate::graph::InterferenceGraph;
use crate::vars::Var;

/// One greedy move, for tracing (Figure 5 reproduces as a trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    /// The node moved from bank X's set to bank Y's.
    pub node: Var,
    /// The cost decrease achieved.
    pub gain: u64,
    /// Total cost after the move.
    pub cost_after: u64,
}

/// A bank assignment for every node of an interference graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Bank of each node.
    pub bank: HashMap<Var, Bank>,
    /// Total weight of unsatisfied edges (both endpoints in one bank).
    pub cost: u64,
    /// The greedy moves, in order (empty for other algorithms).
    pub trace: Vec<Move>,
}

impl Partition {
    /// Bank assigned to `v` (bank X if the variable never appeared in
    /// the graph — isolated variables are indifferent).
    #[must_use]
    pub fn bank_of(&self, v: Var) -> Bank {
        self.bank.get(&v).copied().unwrap_or(Bank::X)
    }
}

/// Compute the cost of an assignment: total weight of edges whose
/// endpoints share a bank.
#[must_use]
pub fn partition_cost(graph: &InterferenceGraph, bank: &HashMap<Var, Bank>) -> u64 {
    graph
        .iter_edges()
        .filter(|(a, b, _)| {
            bank.get(a).copied().unwrap_or(Bank::X) == bank.get(b).copied().unwrap_or(Bank::X)
        })
        .map(|(_, _, w)| w)
        .sum()
}

/// The paper's greedy partitioner (Figure 5).
///
/// Ties between equal-gain candidates are broken toward the node added
/// to the graph most recently, which reproduces the move order of the
/// paper's worked example.
#[must_use]
pub fn greedy_partition(graph: &InterferenceGraph) -> Partition {
    let nodes = graph.active_nodes();
    // Precomputed adjacency keeps each sweep O(v + E) instead of
    // rescanning the edge list per candidate.
    let adj = adjacency(graph, &nodes);
    let mut bank: HashMap<Var, Bank> = nodes.iter().map(|&v| (v, Bank::X)).collect();
    let mut cost = graph.total_weight();
    let mut trace = Vec::new();
    loop {
        // gain(v) = (weight to same-set nodes) - (weight to other-set nodes).
        let best = nodes
            .iter()
            .enumerate()
            .filter(|(_, v)| bank[*v] == Bank::X)
            .map(|(i, &v)| {
                let mut to_x = 0i64;
                let mut to_y = 0i64;
                for &(u, w) in &adj[i] {
                    match bank[&u] {
                        Bank::X => to_x += w as i64,
                        Bank::Y => to_y += w as i64,
                    }
                }
                (v, to_x - to_y)
            })
            .max_by_key(|&(_, gain)| gain);
        match best {
            Some((v, gain)) if gain > 0 => {
                bank.insert(v, Bank::Y);
                cost -= gain as u64;
                trace.push(Move {
                    node: v,
                    gain: gain as u64,
                    cost_after: cost,
                });
            }
            _ => break,
        }
    }
    debug_assert_eq!(cost, partition_cost(graph, &bank));
    Partition { bank, cost, trace }
}

/// Adjacency lists aligned with `nodes`.
fn adjacency(graph: &InterferenceGraph, nodes: &[Var]) -> Vec<Vec<(Var, u64)>> {
    let index: HashMap<Var, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut adj: Vec<Vec<(Var, u64)>> = vec![Vec::new(); nodes.len()];
    for (a, b, w) in graph.iter_edges() {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            adj[ia].push((b, w));
            adj[ib].push((a, w));
        }
    }
    adj
}

/// Bidirectional refinement: after the greedy pass, also consider moving
/// nodes *back* from Y to X, one at a time, while any single move
/// decreases cost. An ablation of the paper's one-directional greedy.
#[must_use]
pub fn refined_partition(graph: &InterferenceGraph) -> Partition {
    let mut p = greedy_partition(graph);
    let nodes = graph.active_nodes();
    let adj = adjacency(graph, &nodes);
    loop {
        let mut best: Option<(Var, i64)> = None;
        for (i, &v) in nodes.iter().enumerate() {
            let my_bank = p.bank[&v];
            let mut same = 0i64;
            let mut other = 0i64;
            for &(u, w) in &adj[i] {
                if p.bank[&u] == my_bank {
                    same += w as i64;
                } else {
                    other += w as i64;
                }
            }
            let gain = same - other;
            if gain > best.map_or(0, |(_, g)| g) {
                best = Some((v, gain));
            }
        }
        match best {
            Some((v, gain)) => {
                let b = p.bank[&v];
                p.bank.insert(v, b.other());
                p.cost -= gain as u64;
            }
            None => break,
        }
    }
    debug_assert_eq!(p.cost, partition_cost(graph, &p.bank));
    p.trace.clear();
    p
}

/// Exhaustive minimum-cost partition; exponential, only for graphs of at
/// most 24 active nodes. Used as a test oracle.
///
/// # Panics
///
/// Panics if the graph has more than 24 active nodes.
#[must_use]
pub fn exhaustive_partition(graph: &InterferenceGraph) -> Partition {
    let nodes = graph.active_nodes();
    assert!(
        nodes.len() <= 24,
        "exhaustive partitioning limited to 24 nodes, got {}",
        nodes.len()
    );
    let mut best_cost = u64::MAX;
    let mut best_mask = 0u32;
    // Fix node 0 in bank X (symmetry) when present.
    let n = nodes.len();
    let combos = if n == 0 { 1u32 } else { 1u32 << (n - 1) };
    for mask in 0..combos {
        let bank: HashMap<Var, Bank> = nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let b = if i > 0 && mask >> (i - 1) & 1 == 1 {
                    Bank::Y
                } else {
                    Bank::X
                };
                (v, b)
            })
            .collect();
        let cost = partition_cost(graph, &bank);
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    let bank: HashMap<Var, Bank> = nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let b = if i > 0 && best_mask >> (i - 1) & 1 == 1 {
                Bank::Y
            } else {
                Bank::X
            };
            (v, b)
        })
        .collect();
    Partition {
        bank,
        cost: if n == 0 { 0 } else { best_cost },
        trace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::GlobalId;

    fn v(i: u32) -> Var {
        Var::Global(GlobalId(i))
    }

    /// The interference graph of the paper's Figures 4–5:
    /// nodes A, B, C, D; edges (A,B)=1, (A,C)=1, (B,C)=1, (B,D)=1,
    /// (C,D)=1, (A,D)=2; total weight 7.
    fn figure4_graph() -> (InterferenceGraph, [Var; 4]) {
        let (a, b, c, d) = (v(0), v(1), v(2), v(3));
        let mut g = InterferenceGraph::new();
        g.add_node(a);
        g.add_node(b);
        g.add_node(c);
        g.add_node(d);
        g.add_edge_weight(a, b, 1);
        g.add_edge_weight(a, c, 1);
        g.add_edge_weight(b, c, 1);
        g.add_edge_weight(b, d, 1);
        g.add_edge_weight(c, d, 1);
        g.add_edge_weight(a, d, 2);
        (g, [a, b, c, d])
    }

    #[test]
    fn figure5_greedy_trace() {
        // Paper Figure 5: initial cost 7; moving D drops it to 3; moving
        // C drops it to 2; no further move helps.
        let (g, [a, b, c, d]) = figure4_graph();
        assert_eq!(g.total_weight(), 7);
        let p = greedy_partition(&g);
        assert_eq!(p.trace.len(), 2, "{:?}", p.trace);
        assert_eq!(p.trace[0].node, d);
        assert_eq!(p.trace[0].cost_after, 3);
        assert_eq!(p.trace[1].node, c);
        assert_eq!(p.trace[1].cost_after, 2);
        assert_eq!(p.cost, 2);
        assert_eq!(p.bank_of(a), Bank::X);
        assert_eq!(p.bank_of(b), Bank::X);
        assert_eq!(p.bank_of(c), Bank::Y);
        assert_eq!(p.bank_of(d), Bank::Y);
    }

    #[test]
    fn greedy_matches_exhaustive_on_figure4() {
        let (g, _) = figure4_graph();
        let greedy = greedy_partition(&g);
        let exact = exhaustive_partition(&g);
        assert_eq!(greedy.cost, exact.cost);
    }

    #[test]
    fn two_nodes_one_edge_split() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 5);
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 0);
        assert_ne!(p.bank_of(v(0)), p.bank_of(v(1)));
    }

    #[test]
    fn triangle_cannot_be_fully_satisfied() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 1);
        g.add_edge_weight(v(1), v(2), 1);
        g.add_edge_weight(v(0), v(2), 1);
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 1); // one edge must stay intra-bank
        assert_eq!(exhaustive_partition(&g).cost, 1);
    }

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new();
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 0);
        assert!(p.trace.is_empty());
        assert_eq!(exhaustive_partition(&g).cost, 0);
    }

    #[test]
    fn isolated_node_defaults_to_x() {
        let mut g = InterferenceGraph::new();
        g.add_node(v(9));
        let p = greedy_partition(&g);
        assert_eq!(p.bank_of(v(9)), Bank::X);
        // A variable that never appeared at all also reads as X.
        assert_eq!(p.bank_of(v(100)), Bank::X);
    }

    #[test]
    fn refinement_never_worse_than_greedy() {
        // Random-ish fixed graphs; refined cost must be <= greedy cost.
        for seed in 0..20u32 {
            let mut g = InterferenceGraph::new();
            let n = 8;
            let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
            for i in 0..n {
                for j in (i + 1)..n {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    if state % 3 == 0 {
                        g.add_edge_weight(v(i), v(j), u64::from(state % 7 + 1));
                    }
                }
            }
            let greedy = greedy_partition(&g);
            let refined = refined_partition(&g);
            let exact = exhaustive_partition(&g);
            assert!(refined.cost <= greedy.cost, "seed {seed}");
            assert!(exact.cost <= refined.cost, "seed {seed}");
        }
    }

    #[test]
    fn cost_function_counts_same_bank_edges_only() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 3);
        g.add_edge_weight(v(1), v(2), 4);
        let mut bank = HashMap::new();
        bank.insert(v(0), Bank::X);
        bank.insert(v(1), Bank::Y);
        bank.insert(v(2), Bank::Y);
        assert_eq!(partition_cost(&g, &bank), 4);
    }
}
