//! The weighted, undirected interference graph (paper §3.1).
//!
//! Nodes are the program's variables (alias classes); an edge between
//! two nodes means the corresponding variables may be accessed in
//! parallel and should therefore be stored in separate memory banks.
//! The edge weight "represent[s] the degradation in performance if the
//! corresponding variables are not accessed in parallel".

use std::collections::HashMap;

use crate::vars::Var;

/// A weighted, undirected interference graph over variables.
#[derive(Debug, Clone, Default)]
pub struct InterferenceGraph {
    nodes: Vec<Var>,
    index: HashMap<Var, usize>,
    /// Upper-triangle edge weights keyed by `(min_index, max_index)`.
    edges: HashMap<(usize, usize), u64>,
}

impl InterferenceGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> InterferenceGraph {
        InterferenceGraph::default()
    }

    /// Ensure `v` is a node; returns its index.
    pub fn add_node(&mut self, v: Var) -> usize {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(v);
        self.index.insert(v, i);
        i
    }

    /// Add `weight` to the edge between `a` and `b` (created at 0 if
    /// absent). Self-edges are ignored.
    pub fn add_edge_weight(&mut self, a: Var, b: Var, weight: u64) {
        if a == b {
            return;
        }
        let (ia, ib) = (self.add_node(a), self.add_node(b));
        let key = (ia.min(ib), ia.max(ib));
        *self.edges.entry(key).or_insert(0) += weight;
    }

    /// Raise the edge weight between `a` and `b` to at least `weight`.
    pub fn raise_edge_weight(&mut self, a: Var, b: Var, weight: u64) {
        if a == b {
            return;
        }
        let (ia, ib) = (self.add_node(a), self.add_node(b));
        let key = (ia.min(ib), ia.max(ib));
        let w = self.edges.entry(key).or_insert(0);
        *w = (*w).max(weight);
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The nodes, in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[Var] {
        &self.nodes
    }

    /// Iterate over `(a, b, weight)` edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (Var, Var, u64)> + '_ {
        self.edges
            .iter()
            .map(|(&(a, b), &w)| (self.nodes[a], self.nodes[b], w))
    }

    /// The weight between two variables (0 if no edge).
    #[must_use]
    pub fn weight(&self, a: Var, b: Var) -> u64 {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return 0;
        };
        let key = (ia.min(ib), ia.max(ib));
        self.edges.get(&key).copied().unwrap_or(0)
    }

    /// Neighbors of `v` with edge weights.
    #[must_use]
    pub fn neighbors(&self, v: Var) -> Vec<(Var, u64)> {
        let Some(&i) = self.index.get(&v) else {
            return Vec::new();
        };
        let mut out: Vec<(Var, u64)> = self
            .edges
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == i {
                    Some((self.nodes[b], w))
                } else if b == i {
                    Some((self.nodes[a], w))
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    /// Sum of all edge weights.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Remove a node and all its edges (used when a variable is marked
    /// for duplication: a copy in each bank satisfies every edge).
    pub fn remove_node(&mut self, v: Var) {
        let Some(&i) = self.index.get(&v) else {
            return;
        };
        self.edges.retain(|&(a, b), _| a != i && b != i);
        // Keep indices stable by leaving a tombstone out of `index`;
        // the node list retains the entry but lookups no longer find it.
        self.index.remove(&v);
        self.nodes[i] = v; // unchanged; documents intent
    }

    /// True if `v` is (still) a node of the graph.
    #[must_use]
    pub fn contains(&self, v: Var) -> bool {
        self.index.contains_key(&v)
    }

    /// Active nodes (excluding removed ones), in insertion order.
    #[must_use]
    pub fn active_nodes(&self) -> Vec<Var> {
        self.nodes
            .iter()
            .copied()
            .filter(|v| self.index.contains_key(v))
            .collect()
    }

    /// Render a Graphviz `dot` description (handy for debugging and for
    /// the walkthrough example).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph interference {\n");
        for v in self.active_nodes() {
            let _ = writeln!(out, "  \"{v}\";");
        }
        for (a, b, w) in self.iter_edges() {
            let _ = writeln!(out, "  \"{a}\" -- \"{b}\" [label={w}];");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::GlobalId;

    fn g(i: u32) -> Var {
        Var::Global(GlobalId(i))
    }

    #[test]
    fn edges_accumulate() {
        let mut graph = InterferenceGraph::new();
        graph.add_edge_weight(g(0), g(1), 2);
        graph.add_edge_weight(g(1), g(0), 3);
        assert_eq!(graph.weight(g(0), g(1)), 5);
        assert_eq!(graph.edge_count(), 1);
    }

    #[test]
    fn raise_takes_max() {
        let mut graph = InterferenceGraph::new();
        graph.raise_edge_weight(g(0), g(1), 2);
        graph.raise_edge_weight(g(0), g(1), 1);
        assert_eq!(graph.weight(g(0), g(1)), 2);
        graph.raise_edge_weight(g(0), g(1), 7);
        assert_eq!(graph.weight(g(0), g(1)), 7);
    }

    #[test]
    fn self_edges_ignored() {
        let mut graph = InterferenceGraph::new();
        graph.add_edge_weight(g(0), g(0), 9);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let mut graph = InterferenceGraph::new();
        graph.add_edge_weight(g(2), g(0), 1);
        graph.add_edge_weight(g(2), g(1), 4);
        assert_eq!(graph.neighbors(g(2)), vec![(g(0), 1), (g(1), 4)]);
    }

    #[test]
    fn remove_node_drops_edges() {
        let mut graph = InterferenceGraph::new();
        graph.add_edge_weight(g(0), g(1), 1);
        graph.add_edge_weight(g(1), g(2), 1);
        graph.remove_node(g(1));
        assert_eq!(graph.edge_count(), 0);
        assert!(!graph.contains(g(1)));
        assert_eq!(graph.active_nodes(), vec![g(0), g(2)]);
    }

    #[test]
    fn dot_output_mentions_edges() {
        let mut graph = InterferenceGraph::new();
        graph.add_edge_weight(g(0), g(1), 2);
        let dot = graph.to_dot();
        assert!(dot.contains("label=2"), "{dot}");
    }
}
