//! The paper's first-order performance/cost metrics (§4.2, Table 3).
//!
//! * **Performance Gain** `PG = base_cycles / optimized_cycles` — 1.33
//!   means 33 % faster than the unoptimized (single-bank) build.
//! * **Cost Increase** `CI = optimized_memory / base_memory`, where
//!   memory is the first-order model `Cost = X + Y + 2·S + I` in words
//!   (data in both banks, two stacks, and instructions assumed the same
//!   size as data words).
//! * **Performance/Cost Ratio** `PCR = PG / CI` — a value above 1 means
//!   the speedup outweighs the extra memory.

/// Performance gain of an optimized build over the baseline.
///
/// # Panics
///
/// Panics if `optimized_cycles` is zero.
#[must_use]
pub fn performance_gain(base_cycles: u64, optimized_cycles: u64) -> f64 {
    assert!(optimized_cycles > 0, "optimized build executed no cycles");
    base_cycles as f64 / optimized_cycles as f64
}

/// Percentage form of [`performance_gain`]: `(PG - 1) * 100`.
#[must_use]
pub fn gain_percent(base_cycles: u64, optimized_cycles: u64) -> f64 {
    (performance_gain(base_cycles, optimized_cycles) - 1.0) * 100.0
}

/// Cost increase of an optimized build over the baseline.
///
/// # Panics
///
/// Panics if `base_cost` is zero.
#[must_use]
pub fn cost_increase(base_cost: u64, optimized_cost: u64) -> f64 {
    assert!(base_cost > 0, "baseline build occupies no memory");
    optimized_cost as f64 / base_cost as f64
}

/// Performance/cost ratio.
#[must_use]
pub fn performance_cost_ratio(pg: f64, ci: f64) -> f64 {
    pg / ci
}

/// The three Table-3 metrics for one (benchmark, technique) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeOff {
    /// Performance gain (≥ 1 is a speedup).
    pub pg: f64,
    /// Cost increase (≥ 1 is more memory).
    pub ci: f64,
    /// `pg / ci`.
    pub pcr: f64,
}

impl TradeOff {
    /// Compute the trade-off of an optimized build against a baseline.
    ///
    /// # Panics
    ///
    /// Panics if the optimized cycle count or the baseline cost is zero.
    #[must_use]
    pub fn compute(
        base_cycles: u64,
        base_cost: u64,
        optimized_cycles: u64,
        optimized_cost: u64,
    ) -> TradeOff {
        let pg = performance_gain(base_cycles, optimized_cycles);
        let ci = cost_increase(base_cost, optimized_cost);
        TradeOff {
            pg,
            ci,
            pcr: performance_cost_ratio(pg, ci),
        }
    }
}

impl std::fmt::Display for TradeOff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PG {:.2}  CI {:.2}  PCR {:.2}",
            self.pg, self.ci, self.pcr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpc_like_numbers() {
        // Paper Table 3, lpc with partial duplication: PG 1.34, CI 1.12,
        // PCR 1.20.
        let t = TradeOff::compute(134_000, 10_000, 100_000, 11_200);
        assert!((t.pg - 1.34).abs() < 1e-9);
        assert!((t.ci - 1.12).abs() < 1e-9);
        assert!((t.pcr - 1.196).abs() < 1e-2);
    }

    #[test]
    fn no_change_is_unity() {
        let t = TradeOff::compute(5000, 800, 5000, 800);
        assert_eq!(t.pg, 1.0);
        assert_eq!(t.ci, 1.0);
        assert_eq!(t.pcr, 1.0);
    }

    #[test]
    fn gain_percent_matches_paper_phrasing() {
        // "improves performance by 49%" == PG 1.49.
        assert!((gain_percent(149, 100) - 49.0).abs() < 1e-9);
    }

    #[test]
    fn cheaper_build_has_ci_below_one() {
        // Packing parallel accesses into fewer instructions can shrink
        // memory (paper: "the cost difference is actually a decrease").
        let t = TradeOff::compute(100, 1000, 90, 980);
        assert!(t.ci < 1.0);
        assert!(t.pcr > t.pg);
    }

    #[test]
    #[should_panic(expected = "no cycles")]
    fn zero_cycles_panics() {
        let _ = performance_gain(1, 0);
    }
}
