#![warn(missing_docs)]
//! Compaction-based data partitioning and partial data duplication —
//! the primary contribution of Saghir, Chow & Lee, *Exploiting Dual
//! Data-Memory Banks in Digital Signal Processors* (ASPLOS 1996).
//!
//! The crate implements the paper's data-allocation pass:
//!
//! 1. [`vars::AliasClasses`] groups variables that an array parameter
//!    may alias, so each class is allocated as a unit;
//! 2. [`builder::build_interference`] runs a *trial compaction* of every
//!    basic block (all data pinned to one bank) and records, as weighted
//!    edges of an [`graph::InterferenceGraph`], every pair of variables
//!    whose accesses were data-compatible but fought over the single
//!    memory unit — and marks variables accessed twice in one candidate
//!    instruction for duplication;
//! 3. [`partition::greedy_partition`] splits the nodes across the X and
//!    Y banks, minimizing the weight of unsatisfied edges;
//! 4. [`BankAllocation`] packages the result for the back-end, including
//!    the duplication set of the *partial data duplication* technique
//!    and the [`cost`] metrics of the paper's Table 3.
//!
//! # Example
//!
//! ```
//! use dsp_bankalloc::{AllocOptions, BankAllocation};
//!
//! let program = dsp_frontend::compile_str(
//!     "float A[64]; float B[64]; float out;
//!      void main() {
//!          int i; float acc; acc = 0.0;
//!          for (i = 0; i < 64; i++) acc += A[i] * B[i];
//!          out = acc;
//!      }",
//! )?;
//! let alloc = BankAllocation::compute(&program, &AllocOptions::default(), None);
//! // The FIR pattern forces A and B into different banks.
//! let a = program.global_by_name("A").unwrap();
//! let b = program.global_by_name("B").unwrap();
//! assert_ne!(alloc.bank_of_global(a), alloc.bank_of_global(b));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod builder;
pub mod cost;
pub mod gain;
pub mod graph;
pub mod partition;
pub mod vars;

use std::collections::{BTreeMap, BTreeSet};

pub use builder::{build_interference, BuildResult, DupStats, WeightMode};
pub use cost::TradeOff;
pub use gain::GainBuckets;
pub use graph::InterferenceGraph;
pub use partition::{
    exhaustive_partition, fm_partition, greedy_partition, naive_greedy_partition, partition_cost,
    refined_partition, Partition, Partitioner,
};
pub use vars::{AliasClasses, Var};

use dsp_ir::ops::MemBase;
use dsp_ir::{ExecStats, FuncId, GlobalId, Program};
use dsp_machine::Bank;

/// How interference-edge weights are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightKind {
    /// Loop nesting depth (the paper's default heuristic).
    #[default]
    LoopDepth,
    /// Profile-driven block execution counts (`Pr` in the paper). The
    /// caller must pass [`ExecStats`] to [`BankAllocation::compute`].
    Profile,
    /// Unit weights (ablation).
    Uniform,
}

/// Which duplication policy to apply (paper §3.2, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicationMode {
    /// No duplication: partitioning only.
    #[default]
    None,
    /// Duplicate exactly the variables the trial compaction marked
    /// (simultaneous accesses to the same array).
    Partial,
    /// Duplicate every variable (the straw-man policy of Table 3).
    Full,
    /// The paper's §5 refinement: duplicate a marked variable only when
    /// its estimated cycle savings exceed the estimated bookkeeping
    /// cost ([`builder::DupStats::worthwhile`]). Most selective with
    /// profile data; falls back to loop-depth statics otherwise.
    Selective,
}

/// Which partitioning algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerKind {
    /// The paper's one-directional greedy (Figure 5).
    #[default]
    Greedy,
    /// Greedy followed by bidirectional single-move refinement.
    Refined,
    /// Fiduccia–Mattheyses passes (lock-and-pass, best-prefix rollback).
    Fm,
    /// Exhaustive minimum (graphs of ≤ 24 nodes only; test oracle).
    Exhaustive,
}

impl PartitionerKind {
    /// The production algorithms, in the order they are swept
    /// (the exhaustive oracle is test-only: it panics past 24 nodes, so
    /// it is excluded from every user-facing axis).
    pub const ALL: [PartitionerKind; 3] = [
        PartitionerKind::Greedy,
        PartitionerKind::Refined,
        PartitionerKind::Fm,
    ];

    /// Short machine-readable name, matching
    /// [`Partitioner::name`] — used in CLI flags, request bodies,
    /// reports, and metric labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        self.as_partitioner().name()
    }

    /// Parse a [`PartitionerKind::label`]. Only the production
    /// algorithms parse; the exhaustive oracle is deliberately not
    /// reachable from user input.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<PartitionerKind, String> {
        match s {
            "greedy" => Ok(PartitionerKind::Greedy),
            "refined" => Ok(PartitionerKind::Refined),
            "fm" => Ok(PartitionerKind::Fm),
            other => Err(format!(
                "unknown partitioner '{other}' (expected greedy, refined, or fm)"
            )),
        }
    }

    /// Stable small integer for cache keys (covers the oracle too).
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            PartitionerKind::Greedy => 0,
            PartitionerKind::Refined => 1,
            PartitionerKind::Fm => 2,
            PartitionerKind::Exhaustive => 3,
        }
    }

    /// The algorithm behind the [`Partitioner`] trait.
    #[must_use]
    pub fn as_partitioner(self) -> &'static dyn Partitioner {
        match self {
            PartitionerKind::Greedy => &partition::Greedy,
            PartitionerKind::Refined => &partition::Refined,
            PartitionerKind::Fm => &partition::Fm,
            PartitionerKind::Exhaustive => &partition::Oracle,
        }
    }
}

/// Options for the data-allocation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocOptions {
    /// Edge-weight heuristic.
    pub weights: WeightKind,
    /// Duplication policy.
    pub duplication: DuplicationMode,
    /// Partitioning algorithm.
    pub partitioner: PartitionerKind,
}

/// Wall times of the two phases of the data-allocation pass, for the
/// pipeline telemetry of `dsp-driver`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocTimings {
    /// Trial compaction: per-block candidate scheduling that builds the
    /// interference graph (phase 2 of the pass).
    pub trial_compaction: std::time::Duration,
    /// Graph partitioning across the X/Y banks (phase 3).
    pub partition: std::time::Duration,
}

/// The result of the data-allocation pass: a bank for every variable
/// (alias class) plus the set of duplicated variables.
#[derive(Debug, Clone)]
pub struct BankAllocation {
    alias: AliasClasses,
    class_bank: BTreeMap<Var, Bank>,
    duplicated: BTreeSet<Var>,
    /// The interference graph the partition was computed from.
    pub graph: InterferenceGraph,
    /// Total weight of edges the partition could not satisfy.
    pub partition_cost: u64,
    /// The greedy trace (empty for non-greedy partitioners).
    pub trace: Vec<partition::Move>,
    /// Partitioner passes run (see [`Partition::passes`]).
    pub partition_passes: u32,
    /// Partitioner moves retained (see [`Partition::moves`]).
    pub partition_moves: u64,
    /// Wall times of the pass's phases.
    pub timings: AllocTimings,
}

impl BankAllocation {
    /// Run the full data-allocation pass.
    ///
    /// `profile` must be `Some` when `options.weights` is
    /// [`WeightKind::Profile`]; it is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if profile weights are requested without profile data.
    #[must_use]
    pub fn compute(
        program: &Program,
        options: &AllocOptions,
        profile: Option<&ExecStats>,
    ) -> BankAllocation {
        let alias = AliasClasses::build(program);
        let mode = match options.weights {
            WeightKind::LoopDepth => WeightMode::LoopDepth,
            WeightKind::Uniform => WeightMode::Uniform,
            WeightKind::Profile => {
                WeightMode::Profile(profile.expect("profile weights need ExecStats"))
            }
        };
        let build_start = std::time::Instant::now();
        let BuildResult {
            mut graph,
            dup_candidates,
            dup_stats,
        } = build_interference(program, &alias, mode);
        let trial_compaction = build_start.elapsed();

        // Only classes made entirely of globals (and parameter slots)
        // can be duplicated: both copies of a global live at the same
        // address in their respective banks, so one base address serves
        // either copy. A stack-resident array has bank-specific
        // addresses, which a single passed-by-reference base cannot
        // describe — such classes stay partitioned.
        let duplicable = |v: &Var| {
            alias
                .members(*v)
                .iter()
                .all(|m| matches!(m, Var::Global(_) | Var::ParamSlot(..)))
        };
        let duplicated: BTreeSet<Var> = match options.duplication {
            DuplicationMode::None => BTreeSet::new(),
            DuplicationMode::Partial => dup_candidates.into_iter().filter(duplicable).collect(),
            DuplicationMode::Selective => dup_candidates
                .into_iter()
                .filter(duplicable)
                .filter(|v| dup_stats.get(v).is_some_and(builder::DupStats::worthwhile))
                .collect(),
            DuplicationMode::Full => graph
                .active_nodes()
                .into_iter()
                .filter(duplicable)
                .collect(),
        };
        // A duplicated variable has a copy in each bank: every edge it
        // touches is satisfied, so it leaves the partitioning problem.
        for v in &duplicated {
            graph.remove_node(*v);
        }
        let partition_start = std::time::Instant::now();
        let part = options.partitioner.as_partitioner().partition(&graph);
        let partition = partition_start.elapsed();
        let mut class_bank = part.bank.clone();
        // Duplicated variables live in both banks; their home is X.
        for v in &duplicated {
            class_bank.insert(*v, Bank::X);
        }
        BankAllocation {
            alias,
            class_bank,
            duplicated,
            graph,
            partition_cost: part.cost,
            trace: part.trace,
            partition_passes: part.passes,
            partition_moves: part.moves,
            timings: AllocTimings {
                trial_compaction,
                partition,
            },
        }
    }

    /// The baseline allocation: every variable in bank X, nothing
    /// duplicated (the paper's unoptimized configuration).
    #[must_use]
    pub fn all_in_x(program: &Program) -> BankAllocation {
        let alias = AliasClasses::build(program);
        let class_bank = alias.classes().into_iter().map(|c| (c, Bank::X)).collect();
        BankAllocation {
            alias,
            class_bank,
            duplicated: BTreeSet::new(),
            graph: InterferenceGraph::new(),
            partition_cost: 0,
            trace: Vec::new(),
            partition_passes: 0,
            partition_moves: 0,
            timings: AllocTimings::default(),
        }
    }

    /// The alias classes underlying this allocation.
    #[must_use]
    pub fn alias(&self) -> &AliasClasses {
        &self.alias
    }

    /// Bank of the object `base` refers to inside `func` (the home bank
    /// for duplicated variables).
    #[must_use]
    pub fn bank_of_base(&self, func: FuncId, base: MemBase) -> Bank {
        let class = self.alias.class_of_base(func, base);
        self.class_bank.get(&class).copied().unwrap_or(Bank::X)
    }

    /// Bank of a global (home bank if duplicated).
    #[must_use]
    pub fn bank_of_global(&self, g: GlobalId) -> Bank {
        let class = self.alias.class_of(Var::Global(g));
        self.class_bank.get(&class).copied().unwrap_or(Bank::X)
    }

    /// True if the object `base` refers to inside `func` is duplicated
    /// in both banks.
    #[must_use]
    pub fn is_duplicated_base(&self, func: FuncId, base: MemBase) -> bool {
        let class = self.alias.class_of_base(func, base);
        self.duplicated.contains(&class)
    }

    /// True if the global is duplicated.
    #[must_use]
    pub fn is_duplicated_global(&self, g: GlobalId) -> bool {
        let class = self.alias.class_of(Var::Global(g));
        self.duplicated.contains(&class)
    }

    /// The duplicated alias classes.
    #[must_use]
    pub fn duplicated(&self) -> &BTreeSet<Var> {
        &self.duplicated
    }

    /// Number of variables assigned to each bank `(x, y)`, counting
    /// duplicated variables in both.
    #[must_use]
    pub fn bank_counts(&self) -> (usize, usize) {
        let mut x = 0;
        let mut y = 0;
        for (v, b) in &self.class_bank {
            if self.duplicated.contains(v) {
                x += 1;
                y += 1;
            } else {
                match b {
                    Bank::X => x += 1,
                    Bank::Y => y += 1,
                }
            }
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;

    fn fir_src() -> &'static str {
        "float A[64]; float B[64]; float out;
         void main() {
             int i; float acc; acc = 0.0;
             for (i = 0; i < 64; i++) acc += A[i] * B[i];
             out = acc;
         }"
    }

    #[test]
    fn fir_arrays_split_across_banks() {
        let p = compile_str(fir_src()).unwrap();
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        let a = p.global_by_name("A").unwrap();
        let b = p.global_by_name("B").unwrap();
        assert_ne!(alloc.bank_of_global(a), alloc.bank_of_global(b));
        assert_eq!(alloc.partition_cost, 0);
    }

    #[test]
    fn baseline_puts_everything_in_x() {
        let p = compile_str(fir_src()).unwrap();
        let alloc = BankAllocation::all_in_x(&p);
        for (i, _) in p.globals.iter().enumerate() {
            assert_eq!(alloc.bank_of_global(GlobalId(i as u32)), Bank::X);
        }
        assert!(alloc.duplicated().is_empty());
    }

    #[test]
    fn partial_duplication_marks_same_array_pairs() {
        let src = "float s[16]; float R[8];
                   void main() {
                     int n;
                     for (n = 0; n < 8; n++) R[n] += s[n] * s[n + 3];
                   }";
        let p = compile_str(src).unwrap();
        let opts = AllocOptions {
            duplication: DuplicationMode::Partial,
            ..AllocOptions::default()
        };
        let alloc = BankAllocation::compute(&p, &opts, None);
        let s = p.global_by_name("s").unwrap();
        assert!(alloc.is_duplicated_global(s));
        // R is not duplicated; it is partitioned normally.
        let r = p.global_by_name("R").unwrap();
        assert!(!alloc.is_duplicated_global(r));
        // With s in both banks, its edges vanish from the graph.
        assert_eq!(alloc.partition_cost, 0);
    }

    #[test]
    fn no_duplication_without_request() {
        let src = "float s[16]; float R[8];
                   void main() {
                     int n;
                     for (n = 0; n < 8; n++) R[n] += s[n] * s[n + 3];
                   }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        assert!(alloc.duplicated().is_empty());
    }

    #[test]
    fn full_duplication_duplicates_everything() {
        let p = compile_str(fir_src()).unwrap();
        let opts = AllocOptions {
            duplication: DuplicationMode::Full,
            ..AllocOptions::default()
        };
        let alloc = BankAllocation::compute(&p, &opts, None);
        for name in ["A", "B", "out"] {
            let g = p.global_by_name(name).unwrap();
            assert!(alloc.is_duplicated_global(g), "{name} should be duplicated");
        }
        let (x, y) = alloc.bank_counts();
        assert_eq!(x, y);
    }

    #[test]
    fn profile_weights_require_stats() {
        let p = compile_str(fir_src()).unwrap();
        let mut interp = dsp_ir::Interpreter::new(&p);
        let (_, stats) = interp.run().unwrap();
        let opts = AllocOptions {
            weights: WeightKind::Profile,
            ..AllocOptions::default()
        };
        let alloc = BankAllocation::compute(&p, &opts, Some(&stats));
        let a = p.global_by_name("A").unwrap();
        let b = p.global_by_name("B").unwrap();
        assert_ne!(alloc.bank_of_global(a), alloc.bank_of_global(b));
    }

    #[test]
    fn aliased_params_share_bank() {
        let src = "float A[8]; float B[8]; float C[8]; float out;
                   float dot(float u[], float v[], int n) {
                     int i; float s; s = 0.0;
                     for (i = 0; i < n; i++) s += u[i] * v[i];
                     return s;
                   }
                   void main() {
                     out = dot(A, B, 8) + dot(A, C, 8);
                   }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        let a = p.global_by_name("A").unwrap();
        let b = p.global_by_name("B").unwrap();
        let c = p.global_by_name("C").unwrap();
        // B and C both bind to parameter v: same class, same bank.
        assert_eq!(alloc.bank_of_global(b), alloc.bank_of_global(c));
        // u (=A) interferes with v (=B=C): different banks.
        assert_ne!(alloc.bank_of_global(a), alloc.bank_of_global(b));
    }
}
