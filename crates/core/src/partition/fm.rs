//! A Fiduccia–Mattheyses-style partitioner: lock-and-pass moves with
//! best-prefix rollback, repeated until a pass fails to improve.
//!
//! Each pass tentatively moves *every* node exactly once, always
//! picking the unlocked node with the maximum gain — even when that
//! gain is negative. Accepting downhill moves is what lets FM climb out
//! of the local minima the one-directional greedy stops in: a bad move
//! can unlock a larger gain two moves later. After the pass, the
//! assignment rolls back to the best prefix of the move sequence (the
//! earliest point where cost was minimal), those moves become
//! permanent, and the next pass starts from there. When a pass's best
//! prefix is empty — no improvement — the algorithm stops.
//!
//! The first pass starts from the all-in-X assignment, so its move
//! sequence begins with exactly the paper's greedy sequence (same
//! gains, same tie-breaks); the best-prefix rule therefore can never
//! return a worse partition than [`greedy_partition`]
//! (greedy's stopping point is one of the candidate prefixes). When
//! greedy's result is already a local optimum of the pass, FM keeps it
//! bit-for-bit — which is what keeps the deterministic sweep
//! projections byte-comparable between the two algorithms on
//! already-easy graphs.
//!
//! [`greedy_partition`]: super::greedy_partition

use dsp_machine::Bank;

use super::greedy::bidirectional_gain;
use super::{adjacency, assemble_bank, partition_cost, Partition, Partitioner};
use crate::gain::GainBuckets;
use crate::graph::InterferenceGraph;

/// Fiduccia–Mattheyses passes behind the [`Partitioner`] trait.
pub struct Fm;

impl Partitioner for Fm {
    fn name(&self) -> &'static str {
        "fm"
    }

    fn partition(&self, graph: &InterferenceGraph) -> Partition {
        fm_partition(graph)
    }
}

/// Partition with repeated lock-and-pass sweeps (see module docs).
///
/// Work per pass is O((v + E)·log v): each node is popped from the
/// gain buckets once and each edge triggers at most two O(log v)
/// bucket adjustments.
#[must_use]
pub fn fm_partition(graph: &InterferenceGraph) -> Partition {
    let nodes = graph.active_nodes();
    let n = nodes.len();
    let adj = adjacency(graph, &nodes);
    let mut side = vec![Bank::X; n];
    let mut cost = graph.total_weight();
    let mut passes = 0u32;
    let mut moves = 0u64;

    loop {
        passes += 1;
        let mut buckets = GainBuckets::new(n);
        for i in 0..n {
            buckets.insert(i, bidirectional_gain(&adj[i], &side, side[i]));
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut running = cost;
        let mut best_cost = cost;
        let mut best_len = 0usize;
        while let Some((i, gain)) = buckets.pop_best() {
            side[i] = side[i].other();
            // Negative-gain moves are tentative cost *increases*; the
            // running total moves both ways but the kept prefix never
            // ends above the pass's starting cost.
            if gain >= 0 {
                running -= gain as u64;
            } else {
                running += gain.unsigned_abs();
            }
            order.push(i);
            for &(j, w) in &adj[i] {
                let delta = if side[j] == side[i] {
                    2 * w as i64
                } else {
                    -2 * w as i64
                };
                buckets.adjust(j, delta);
            }
            // Strict '<' keeps the *earliest* best prefix: on a graph
            // where greedy is already locally optimal this is exactly
            // greedy's stopping point, preserving byte-compatibility.
            if running < best_cost {
                best_cost = running;
                best_len = order.len();
            }
        }
        for &i in &order[best_len..] {
            side[i] = side[i].other();
        }
        moves += best_len as u64;
        let improved = best_cost < cost;
        cost = best_cost;
        if !improved {
            break;
        }
    }

    let bank = assemble_bank(&nodes, &side);
    debug_assert_eq!(cost, partition_cost(graph, &bank));
    Partition {
        bank,
        cost,
        trace: Vec::new(),
        passes,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::super::greedy::greedy_partition;
    use super::super::oracle::exhaustive_partition;
    use super::super::testgraph::{figure4_graph, random_graph};
    use super::*;

    #[test]
    fn fm_matches_greedy_on_figure4() {
        // Greedy already finds the optimum of the paper's example; FM
        // must keep that exact assignment (byte-compatibility).
        let (g, _) = figure4_graph();
        let fm = fm_partition(&g);
        let greedy = greedy_partition(&g);
        assert_eq!(fm.cost, 2);
        assert_eq!(fm.bank, greedy.bank);
    }

    #[test]
    fn fm_never_worse_than_greedy_and_tracks_cost() {
        for seed in 0..40u32 {
            let n = 2 + seed % 16;
            let g = random_graph(seed, n);
            let fm = fm_partition(&g);
            let greedy = greedy_partition(&g);
            assert!(fm.cost <= greedy.cost, "seed {seed}");
            assert_eq!(fm.cost, partition_cost(&g, &fm.bank), "seed {seed}");
        }
    }

    #[test]
    fn fm_bounded_by_oracle_on_small_graphs() {
        for seed in 0..20u32 {
            let g = random_graph(seed, 10);
            let fm = fm_partition(&g);
            let exact = exhaustive_partition(&g);
            assert!(exact.cost <= fm.cost, "seed {seed}");
        }
    }

    #[test]
    fn pass_accounting_is_sane() {
        let (g, _) = figure4_graph();
        let fm = fm_partition(&g);
        // At least the improving pass plus the terminating no-improve
        // pass; retained moves match the final assignment (2 nodes in
        // bank Y).
        assert!(fm.passes >= 2, "passes = {}", fm.passes);
        assert_eq!(fm.moves, 2);
        assert!(fm.trace.is_empty());
    }

    #[test]
    fn empty_graph_is_one_quiet_pass() {
        let g = InterferenceGraph::new();
        let fm = fm_partition(&g);
        assert_eq!(fm.cost, 0);
        assert_eq!(fm.passes, 1);
        assert_eq!(fm.moves, 0);
    }
}
