//! The paper's greedy partitioner (§3.1, Figure 5) on gain buckets,
//! plus the historical O(v²·moves) rescan kept as a reference
//! implementation, and the bidirectional single-move refinement
//! ablation.

use dsp_machine::Bank;

use super::{adjacency, assemble_bank, partition_cost, Move, Partition, Partitioner};
use crate::gain::GainBuckets;
use crate::graph::InterferenceGraph;
use crate::vars::Var;

/// The paper's greedy algorithm behind the [`Partitioner`] trait.
pub struct Greedy;

impl Partitioner for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn partition(&self, graph: &InterferenceGraph) -> Partition {
        greedy_partition(graph)
    }
}

/// Greedy plus bidirectional refinement behind the [`Partitioner`]
/// trait.
pub struct Refined;

impl Partitioner for Refined {
    fn name(&self) -> &'static str {
        "refined"
    }

    fn partition(&self, graph: &InterferenceGraph) -> Partition {
        refined_partition(graph)
    }
}

/// The greedy sweep on shared state, so [`refined_partition`] can pick
/// up where the plain greedy stopped without reassembling maps.
pub(crate) struct GreedyState {
    pub nodes: Vec<Var>,
    pub adj: Vec<Vec<(usize, u64)>>,
    pub side: Vec<Bank>,
    pub cost: u64,
    pub trace: Vec<Move>,
}

pub(crate) fn greedy_sweep(graph: &InterferenceGraph) -> GreedyState {
    let nodes = graph.active_nodes();
    let n = nodes.len();
    let adj = adjacency(graph, &nodes);
    let mut side = vec![Bank::X; n];
    let mut cost = graph.total_weight();
    let mut trace = Vec::new();

    // All nodes start in X, so gain(v) = to_x - to_y is simply the sum
    // of adjacent weights. Moved nodes are popped (locked): the paper's
    // greedy never moves a node back, so the unlocked set is exactly
    // the X side and each bucket holds live candidates only.
    let mut buckets = GainBuckets::new(n);
    for (i, edges) in adj.iter().enumerate() {
        let gain: i64 = edges.iter().map(|&(_, w)| w as i64).sum();
        buckets.insert(i, gain);
    }
    while let Some((i, gain)) = buckets.peek_best() {
        if gain <= 0 {
            break;
        }
        buckets.remove(i);
        side[i] = Bank::Y;
        cost -= gain as u64;
        trace.push(Move {
            node: nodes[i],
            gain: gain as u64,
            cost_after: cost,
        });
        // Every unlocked neighbor j is still in X: the edge (i, j) used
        // to count toward j's to_x and now counts toward its to_y.
        for &(j, w) in &adj[i] {
            buckets.adjust(j, -2 * w as i64);
        }
    }
    GreedyState {
        nodes,
        adj,
        side,
        cost,
        trace,
    }
}

/// The paper's greedy partitioner (Figure 5), on incremental gain
/// buckets: O((v + E)·log v) total instead of a full-candidate rescan
/// per move.
///
/// Ties between equal-gain candidates are broken toward the node added
/// to the graph most recently, which reproduces the move order of the
/// paper's worked example — and matches [`naive_greedy_partition`]
/// move-for-move (the rescan's `max_by_key` keeps the last maximum,
/// the buckets keep the highest index; both are "most recent node").
#[must_use]
pub fn greedy_partition(graph: &InterferenceGraph) -> Partition {
    let state = greedy_sweep(graph);
    let bank = assemble_bank(&state.nodes, &state.side);
    debug_assert_eq!(state.cost, partition_cost(graph, &bank));
    let moves = state.trace.len() as u64;
    Partition {
        bank,
        cost: state.cost,
        trace: state.trace,
        passes: 1,
        moves,
    }
}

/// The historical rescan implementation: recompute every candidate's
/// gain on every iteration. O(v²·moves); kept as the executable
/// specification the bucket version is tested against, and as the
/// baseline for the scaling benchmark.
#[must_use]
pub fn naive_greedy_partition(graph: &InterferenceGraph) -> Partition {
    let nodes = graph.active_nodes();
    let adj = adjacency(graph, &nodes);
    let mut side = vec![Bank::X; nodes.len()];
    let mut cost = graph.total_weight();
    let mut trace = Vec::new();
    loop {
        // gain(v) = (weight to same-set nodes) - (weight to other-set
        // nodes), recomputed from scratch for every X-side candidate.
        let best = (0..nodes.len())
            .filter(|&i| side[i] == Bank::X)
            .map(|i| {
                let mut to_x = 0i64;
                let mut to_y = 0i64;
                for &(j, w) in &adj[i] {
                    match side[j] {
                        Bank::X => to_x += w as i64,
                        Bank::Y => to_y += w as i64,
                    }
                }
                (i, to_x - to_y)
            })
            .max_by_key(|&(_, gain)| gain);
        match best {
            Some((i, gain)) if gain > 0 => {
                side[i] = Bank::Y;
                cost -= gain as u64;
                trace.push(Move {
                    node: nodes[i],
                    gain: gain as u64,
                    cost_after: cost,
                });
            }
            _ => break,
        }
    }
    let bank = assemble_bank(&nodes, &side);
    debug_assert_eq!(cost, partition_cost(graph, &bank));
    let moves = trace.len() as u64;
    Partition {
        bank,
        cost,
        trace,
        passes: 1,
        moves,
    }
}

/// Bidirectional refinement: after the greedy pass, also consider
/// moving nodes *back* from Y to X, one at a time, while any single
/// move decreases cost. An ablation of the paper's one-directional
/// greedy.
#[must_use]
pub fn refined_partition(graph: &InterferenceGraph) -> Partition {
    let mut state = greedy_sweep(graph);
    let n = state.nodes.len();
    let mut moves = state.trace.len() as u64;
    // Rebuild the buckets bidirectionally: every node is a candidate,
    // gain = (weight to same-bank nodes) - (weight to the other bank).
    let mut buckets = GainBuckets::new(n);
    for i in 0..n {
        buckets.insert(
            i,
            bidirectional_gain(&state.adj[i], &state.side, state.side[i]),
        );
    }
    while let Some((i, gain)) = buckets.peek_best() {
        if gain <= 0 {
            break;
        }
        state.side[i] = state.side[i].other();
        state.cost -= gain as u64;
        moves += 1;
        // The mover's own gain negates (what was "same" is now
        // "other"); it stays a live candidate — refinement has no
        // locking, termination comes from cost strictly decreasing.
        buckets.adjust(i, -2 * gain);
        for &(j, w) in &state.adj[i] {
            let delta = if state.side[j] == state.side[i] {
                2 * w as i64
            } else {
                -2 * w as i64
            };
            buckets.adjust(j, delta);
        }
    }
    let bank = assemble_bank(&state.nodes, &state.side);
    debug_assert_eq!(state.cost, partition_cost(graph, &bank));
    Partition {
        bank,
        cost: state.cost,
        trace: Vec::new(),
        passes: 2,
        moves,
    }
}

/// Gain of flipping a node to the other bank under the bidirectional
/// rule (positive when most adjacent weight sits in the node's own
/// bank).
pub(crate) fn bidirectional_gain(adj: &[(usize, u64)], side: &[Bank], my_side: Bank) -> i64 {
    let mut same = 0i64;
    let mut other = 0i64;
    for &(j, w) in adj {
        if side[j] == my_side {
            same += w as i64;
        } else {
            other += w as i64;
        }
    }
    same - other
}

#[cfg(test)]
mod tests {
    use super::super::testgraph::{figure4_graph, random_graph, v};
    use super::*;

    #[test]
    fn figure5_greedy_trace() {
        // Paper Figure 5: initial cost 7; moving D drops it to 3; moving
        // C drops it to 2; no further move helps.
        let (g, [a, b, c, d]) = figure4_graph();
        assert_eq!(g.total_weight(), 7);
        let p = greedy_partition(&g);
        assert_eq!(p.trace.len(), 2, "{:?}", p.trace);
        assert_eq!(p.trace[0].node, d);
        assert_eq!(p.trace[0].cost_after, 3);
        assert_eq!(p.trace[1].node, c);
        assert_eq!(p.trace[1].cost_after, 2);
        assert_eq!(p.cost, 2);
        assert_eq!(p.bank_of(a), Bank::X);
        assert_eq!(p.bank_of(b), Bank::X);
        assert_eq!(p.bank_of(c), Bank::Y);
        assert_eq!(p.bank_of(d), Bank::Y);
        assert_eq!(p.passes, 1);
        assert_eq!(p.moves, 2);
    }

    /// The bucket implementation is move-for-move identical to the
    /// historical rescan — banks, cost, and the full Figure-5-style
    /// trace all agree on random graphs.
    #[test]
    fn buckets_match_naive_rescan_exactly() {
        for seed in 0..30u32 {
            let n = 3 + seed % 20;
            let g = random_graph(seed, n);
            let fast = greedy_partition(&g);
            let slow = naive_greedy_partition(&g);
            assert_eq!(fast.trace, slow.trace, "seed {seed}");
            assert_eq!(fast.bank, slow.bank, "seed {seed}");
            assert_eq!(fast.cost, slow.cost, "seed {seed}");
        }
    }

    #[test]
    fn two_nodes_one_edge_split() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 5);
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 0);
        assert_ne!(p.bank_of(v(0)), p.bank_of(v(1)));
    }

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new();
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 0);
        assert!(p.trace.is_empty());
        assert_eq!(p.moves, 0);
    }

    #[test]
    fn isolated_node_defaults_to_x() {
        let mut g = InterferenceGraph::new();
        g.add_node(v(9));
        let p = greedy_partition(&g);
        assert_eq!(p.bank_of(v(9)), Bank::X);
        // A variable that never appeared at all also reads as X.
        assert_eq!(p.bank_of(v(100)), Bank::X);
    }

    #[test]
    fn refinement_never_worse_than_greedy() {
        for seed in 0..20u32 {
            let g = random_graph(seed, 8);
            let greedy = greedy_partition(&g);
            let refined = refined_partition(&g);
            assert!(refined.cost <= greedy.cost, "seed {seed}");
            assert_eq!(
                refined.cost,
                partition_cost(&g, &refined.bank),
                "seed {seed}"
            );
            assert!(refined.trace.is_empty());
            assert_eq!(refined.passes, 2);
        }
    }
}
