//! Partitioning the interference graph into two memory banks.
//!
//! The paper partitions by "searching for a minimum-cost partitioning"
//! with a greedy algorithm (§3.1, Figure 5): all nodes start in the
//! first set (bank X) and the second set is empty; the cost of a
//! partitioning is the total weight of edges joining nodes in the
//! *same* set (those parallel accesses are lost). Exact minimum-cost
//! bipartitioning is NP-complete (it is weighted max-cut), so every
//! production algorithm here is a heuristic.
//!
//! The algorithms live behind the [`Partitioner`] trait, one per
//! submodule:
//!
//! * [`greedy`] — the paper's one-directional greedy (Figure 5),
//!   reimplemented on the incremental [`GainBuckets`](crate::gain)
//!   structure (O((v + E)·log v) instead of the historical O(v²·moves)
//!   rescan, with the rescan kept as [`naive_greedy_partition`] for
//!   equivalence tests), plus the bidirectional single-move refinement
//!   ablation;
//! * [`fm`] — a Fiduccia–Mattheyses-style pass structure: every node
//!   moves at most once per pass (lock-and-pass), the pass keeps its
//!   best prefix of moves (rolling the rest back), and passes repeat
//!   until one fails to improve;
//! * [`oracle`] — the exhaustive minimum for graphs of ≤ 24 nodes,
//!   used as a test oracle to confirm the paper's observation that the
//!   greedy result is near-optimal.
//!
//! Determinism is part of the contract: partitions are stored in a
//! sorted map ([`BTreeMap`]) and every algorithm breaks gain ties
//! toward the node added to the graph most recently, which reproduces
//! the move order of the paper's worked example (see
//! [`crate::gain`] for the exact rule).

pub mod fm;
pub mod greedy;
pub mod oracle;

use std::collections::BTreeMap;

use dsp_machine::Bank;

pub use fm::{fm_partition, Fm};
pub use greedy::{greedy_partition, naive_greedy_partition, refined_partition, Greedy, Refined};
pub use oracle::{exhaustive_partition, Oracle};

use crate::graph::InterferenceGraph;
use crate::vars::Var;

/// One greedy move, for tracing (Figure 5 reproduces as a trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    /// The node moved from bank X's set to bank Y's.
    pub node: Var,
    /// The cost decrease achieved.
    pub gain: u64,
    /// Total cost after the move.
    pub cost_after: u64,
}

/// A bank assignment for every node of an interference graph.
///
/// The assignment is a sorted map so that every consumer iterating it
/// (reports, bank counts, layout) sees one canonical order — partition
/// results stay byte-deterministic across algorithms and runs.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Bank of each node, keyed in sorted [`Var`] order.
    pub bank: BTreeMap<Var, Bank>,
    /// Total weight of unsatisfied edges (both endpoints in one bank).
    /// Maintained incrementally by the move-based algorithms and
    /// asserted against [`partition_cost`] in debug builds.
    pub cost: u64,
    /// The greedy moves, in order (empty for other algorithms).
    pub trace: Vec<Move>,
    /// Passes the algorithm ran (1 for single-sweep algorithms; for FM,
    /// the count includes the final pass that found no improvement).
    pub passes: u32,
    /// Moves retained in the final assignment across all passes
    /// (tentative moves rolled back by FM's best-prefix rule are not
    /// counted; 0 for the exhaustive oracle, which does not move).
    pub moves: u64,
}

impl Partition {
    /// Bank assigned to `v` (bank X if the variable never appeared in
    /// the graph — isolated variables are indifferent).
    #[must_use]
    pub fn bank_of(&self, v: Var) -> Bank {
        self.bank.get(&v).copied().unwrap_or(Bank::X)
    }
}

/// Compute the cost of an assignment from scratch: total weight of
/// edges whose endpoints share a bank. The ground truth the
/// incrementally-maintained [`Partition::cost`] must always equal.
#[must_use]
pub fn partition_cost(graph: &InterferenceGraph, bank: &BTreeMap<Var, Bank>) -> u64 {
    graph
        .iter_edges()
        .filter(|(a, b, _)| {
            bank.get(a).copied().unwrap_or(Bank::X) == bank.get(b).copied().unwrap_or(Bank::X)
        })
        .map(|(_, _, w)| w)
        .sum()
}

/// A bank-partitioning algorithm, pluggable behind
/// [`PartitionerKind`](crate::PartitionerKind).
///
/// Implementations must be deterministic: the same graph (same node
/// insertion order, same edges) must yield the same [`Partition`] on
/// every run and platform.
pub trait Partitioner: Send + Sync {
    /// Short machine-readable algorithm name (`"greedy"`, `"fm"`, …),
    /// used in CLI flags, request bodies, reports, and metric labels.
    fn name(&self) -> &'static str;

    /// Partition `graph`'s active nodes across the X and Y banks.
    fn partition(&self, graph: &InterferenceGraph) -> Partition;
}

/// Adjacency lists aligned with `nodes`, edges as `(node index,
/// weight)` pairs — the shared precomputation that keeps every
/// algorithm's per-move work proportional to the moved node's degree.
pub(crate) fn adjacency(graph: &InterferenceGraph, nodes: &[Var]) -> Vec<Vec<(usize, u64)>> {
    let index: std::collections::HashMap<Var, usize> =
        nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nodes.len()];
    for (a, b, w) in graph.iter_edges() {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            adj[ia].push((ib, w));
            adj[ib].push((ia, w));
        }
    }
    adj
}

/// Assemble the sorted bank map from a partitioner's dense side array.
pub(crate) fn assemble_bank(nodes: &[Var], side: &[Bank]) -> BTreeMap<Var, Bank> {
    nodes.iter().zip(side).map(|(&v, &b)| (v, b)).collect()
}

#[cfg(test)]
pub(crate) mod testgraph {
    use super::*;
    use dsp_ir::GlobalId;

    pub fn v(i: u32) -> Var {
        Var::Global(GlobalId(i))
    }

    /// The interference graph of the paper's Figures 4–5:
    /// nodes A, B, C, D; edges (A,B)=1, (A,C)=1, (B,C)=1, (B,D)=1,
    /// (C,D)=1, (A,D)=2; total weight 7.
    pub fn figure4_graph() -> (InterferenceGraph, [Var; 4]) {
        let (a, b, c, d) = (v(0), v(1), v(2), v(3));
        let mut g = InterferenceGraph::new();
        g.add_node(a);
        g.add_node(b);
        g.add_node(c);
        g.add_node(d);
        g.add_edge_weight(a, b, 1);
        g.add_edge_weight(a, c, 1);
        g.add_edge_weight(b, c, 1);
        g.add_edge_weight(b, d, 1);
        g.add_edge_weight(c, d, 1);
        g.add_edge_weight(a, d, 2);
        (g, [a, b, c, d])
    }

    /// A seeded random graph over `n` nodes: ~1/3 of the pairs carry an
    /// edge of weight 1..=7.
    pub fn random_graph(seed: u32, n: u32) -> InterferenceGraph {
        let mut g = InterferenceGraph::new();
        let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
        for i in 0..n {
            g.add_node(v(i));
            for j in (i + 1)..n {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                if state.is_multiple_of(3) {
                    g.add_edge_weight(v(i), v(j), u64::from(state % 7 + 1));
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::testgraph::{figure4_graph, random_graph, v};
    use super::*;

    #[test]
    fn cost_function_counts_same_bank_edges_only() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 3);
        g.add_edge_weight(v(1), v(2), 4);
        let mut bank = BTreeMap::new();
        bank.insert(v(0), Bank::X);
        bank.insert(v(1), Bank::Y);
        bank.insert(v(2), Bank::Y);
        assert_eq!(partition_cost(&g, &bank), 4);
    }

    /// Every algorithm behind the trait agrees with the from-scratch
    /// cost function and respects the quality ordering
    /// oracle ≤ fm ≤ refined-or-greedy on small random graphs.
    #[test]
    fn trait_implementations_are_consistent() {
        let algos: [&dyn Partitioner; 4] = [&Greedy, &Refined, &Fm, &Oracle];
        for seed in 0..10u32 {
            let g = random_graph(seed, 9);
            let mut costs = std::collections::HashMap::new();
            for algo in algos {
                let p = algo.partition(&g);
                assert_eq!(
                    p.cost,
                    partition_cost(&g, &p.bank),
                    "{} on seed {seed}: incremental cost drifted",
                    algo.name()
                );
                costs.insert(algo.name(), p.cost);
            }
            assert!(costs["fm"] <= costs["greedy"], "seed {seed}");
            assert!(costs["refined"] <= costs["greedy"], "seed {seed}");
            assert!(costs["exhaustive"] <= costs["fm"], "seed {seed}");
            assert!(costs["exhaustive"] <= costs["refined"], "seed {seed}");
        }
    }

    #[test]
    fn trait_names_match_the_figure5_contract() {
        let (g, _) = figure4_graph();
        assert_eq!(Greedy.name(), "greedy");
        assert_eq!(Fm.name(), "fm");
        // Greedy-compatible mode: the trait object reproduces the
        // paper's trace just like the free function.
        let p = Greedy.partition(&g);
        assert_eq!(p.trace.len(), 2);
        assert_eq!(p.cost, 2);
    }
}
