//! Exhaustive minimum-cost partitioning — the test oracle.

use dsp_machine::Bank;

use super::{assemble_bank, partition_cost, Partition, Partitioner};
use crate::graph::InterferenceGraph;

/// The exhaustive oracle behind the [`Partitioner`] trait. Only for
/// tests and tiny graphs — see [`exhaustive_partition`] for the limit.
pub struct Oracle;

impl Partitioner for Oracle {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn partition(&self, graph: &InterferenceGraph) -> Partition {
        exhaustive_partition(graph)
    }
}

/// Exhaustive minimum-cost partition; exponential, only for graphs of at
/// most 24 active nodes. Used as a test oracle to confirm the paper's
/// observation that the greedy result is near-optimal.
///
/// # Panics
///
/// Panics if the graph has more than 24 active nodes.
#[must_use]
pub fn exhaustive_partition(graph: &InterferenceGraph) -> Partition {
    let nodes = graph.active_nodes();
    assert!(
        nodes.len() <= 24,
        "exhaustive partitioning limited to 24 nodes, got {}",
        nodes.len()
    );
    let n = nodes.len();
    let sides = |mask: u32| -> Vec<Bank> {
        // Fix node 0 in bank X (symmetry) when present.
        (0..n)
            .map(|i| {
                if i > 0 && mask >> (i - 1) & 1 == 1 {
                    Bank::Y
                } else {
                    Bank::X
                }
            })
            .collect()
    };
    let mut best_cost = 0;
    let mut best_mask = 0u32;
    let combos = if n == 0 { 0u32 } else { 1u32 << (n - 1) };
    for mask in 0..combos {
        let cost = partition_cost(graph, &assemble_bank(&nodes, &sides(mask)));
        if mask == 0 || cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    Partition {
        bank: assemble_bank(&nodes, &sides(best_mask)),
        cost: best_cost,
        trace: Vec::new(),
        passes: 1,
        moves: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::super::greedy::{greedy_partition, refined_partition};
    use super::super::testgraph::{figure4_graph, random_graph, v};
    use super::*;

    #[test]
    fn greedy_matches_exhaustive_on_figure4() {
        let (g, _) = figure4_graph();
        let greedy = greedy_partition(&g);
        let exact = exhaustive_partition(&g);
        assert_eq!(greedy.cost, exact.cost);
    }

    #[test]
    fn triangle_cannot_be_fully_satisfied() {
        let mut g = InterferenceGraph::new();
        g.add_edge_weight(v(0), v(1), 1);
        g.add_edge_weight(v(1), v(2), 1);
        g.add_edge_weight(v(0), v(2), 1);
        let p = greedy_partition(&g);
        assert_eq!(p.cost, 1); // one edge must stay intra-bank
        assert_eq!(exhaustive_partition(&g).cost, 1);
    }

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new();
        let exact = exhaustive_partition(&g);
        assert_eq!(exact.cost, 0);
        assert_eq!(exact.moves, 0);
    }

    #[test]
    fn oracle_bounds_the_heuristics() {
        for seed in 0..20u32 {
            let g = random_graph(seed, 8);
            let exact = exhaustive_partition(&g);
            assert!(exact.cost <= refined_partition(&g).cost, "seed {seed}");
            assert!(exact.cost <= greedy_partition(&g).cost, "seed {seed}");
        }
    }
}
