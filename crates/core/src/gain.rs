//! Incremental gain buckets for move-based partitioners.
//!
//! Every move-based partitioner in this crate (the paper's greedy, the
//! bidirectional refinement, and the Fiduccia–Mattheyses passes) ranks
//! candidate nodes by *gain* — the cost decrease of moving the node to
//! the other bank — and must re-rank after every move. Recomputing all
//! gains per move is the O(v²·moves) loop this structure kills: gains
//! live in buckets keyed by the gain value, a move updates only the
//! moved node's neighbors (O(degree) bucket updates), and the best
//! candidate is always the largest non-empty bucket.
//!
//! Buckets are a `BTreeMap<i64, BTreeSet<usize>>` rather than the
//! classic dense array indexed by gain: profile-driven edge weights are
//! block execution counts, so the gain range is unbounded and sparse.
//! Every operation is O(log v), preserving the asymptotic win over the
//! rescan loop while staying robust to huge weights.
//!
//! Tie-breaking is part of the structure's contract: among equal-gain
//! candidates, [`GainBuckets::peek_best`] returns the **highest node
//! index**. Node indices follow graph insertion order, so this is
//! "most recently added node wins" — exactly the order the paper's
//! Figure 5 worked example implies, and exactly what the historical
//! rescan loop produced (`max_by_key` keeps the last maximum).

use std::collections::{BTreeMap, BTreeSet};

/// Candidate nodes bucketed by integer move gain.
///
/// Nodes are dense `usize` indices (positions in a partitioner's node
/// slice). A node is either *present* with exactly one gain value, or
/// absent (not yet inserted, or removed/locked).
#[derive(Debug, Clone, Default)]
pub struct GainBuckets {
    /// gain → set of nodes currently at that gain.
    buckets: BTreeMap<i64, BTreeSet<usize>>,
    /// Reverse index: current gain of each node (`None` = absent).
    gain_of: Vec<Option<i64>>,
    /// Number of present nodes.
    len: usize,
}

impl GainBuckets {
    /// An empty structure sized for nodes `0..n`.
    #[must_use]
    pub fn new(n: usize) -> GainBuckets {
        GainBuckets {
            buckets: BTreeMap::new(),
            gain_of: vec![None; n],
            len: 0,
        }
    }

    /// Number of present nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no node is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `node` is present.
    #[must_use]
    pub fn contains(&self, node: usize) -> bool {
        self.gain_of.get(node).is_some_and(Option::is_some)
    }

    /// Current gain of `node`, if present.
    #[must_use]
    pub fn gain(&self, node: usize) -> Option<i64> {
        self.gain_of.get(node).copied().flatten()
    }

    /// Insert `node` with `gain`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already present or out of range.
    pub fn insert(&mut self, node: usize, gain: i64) {
        assert!(
            self.gain_of[node].replace(gain).is_none(),
            "node {node} inserted twice"
        );
        self.buckets.entry(gain).or_default().insert(node);
        self.len += 1;
    }

    /// Remove `node`, returning its gain (or `None` if absent). Used to
    /// lock a node once it has moved.
    pub fn remove(&mut self, node: usize) -> Option<i64> {
        let gain = self.gain_of.get_mut(node)?.take()?;
        let bucket = self.buckets.get_mut(&gain).expect("bucket exists");
        bucket.remove(&node);
        if bucket.is_empty() {
            self.buckets.remove(&gain);
        }
        self.len -= 1;
        Some(gain)
    }

    /// Add `delta` to a present node's gain — the O(log v) per-neighbor
    /// update a move performs. Absent (locked) nodes are ignored.
    pub fn adjust(&mut self, node: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        if let Some(gain) = self.remove(node) {
            self.insert(node, gain + delta);
        }
    }

    /// The best candidate: maximum gain, ties broken toward the highest
    /// node index (see module docs for why that exact rule).
    #[must_use]
    pub fn peek_best(&self) -> Option<(usize, i64)> {
        let (&gain, bucket) = self.buckets.last_key_value()?;
        let &node = bucket.last().expect("buckets are never empty");
        Some((node, gain))
    }

    /// [`GainBuckets::peek_best`], removing (locking) the node.
    pub fn pop_best(&mut self) -> Option<(usize, i64)> {
        let (node, gain) = self.peek_best()?;
        self.remove(node);
        Some((node, gain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_max_gain_highest_index() {
        let mut b = GainBuckets::new(4);
        b.insert(0, 5);
        b.insert(1, 7);
        b.insert(2, 7);
        b.insert(3, -1);
        assert_eq!(b.peek_best(), Some((2, 7)));
        assert_eq!(b.pop_best(), Some((2, 7)));
        assert_eq!(b.pop_best(), Some((1, 7)));
        assert_eq!(b.pop_best(), Some((0, 5)));
        assert_eq!(b.pop_best(), Some((3, -1)));
        assert_eq!(b.pop_best(), None);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut b = GainBuckets::new(3);
        b.insert(0, 1);
        b.insert(1, 1);
        b.adjust(0, 4);
        assert_eq!(b.peek_best(), Some((0, 5)));
        b.adjust(0, -10);
        assert_eq!(b.peek_best(), Some((1, 1)));
        assert_eq!(b.gain(0), Some(-5));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn locked_nodes_ignore_adjust() {
        let mut b = GainBuckets::new(2);
        b.insert(0, 3);
        b.insert(1, 2);
        assert_eq!(b.remove(0), Some(3));
        b.adjust(0, 100); // no-op: 0 is locked
        assert!(!b.contains(0));
        assert_eq!(b.peek_best(), Some((1, 2)));
    }

    #[test]
    fn empty_and_absent() {
        let mut b = GainBuckets::new(2);
        assert!(b.is_empty());
        assert_eq!(b.peek_best(), None);
        assert_eq!(b.remove(1), None);
        assert_eq!(b.gain(0), None);
    }
}
