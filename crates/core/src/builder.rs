//! Interference-graph construction by trial compaction (paper §3.1,
//! Figure 3).
//!
//! The data-allocation pass runs the operation-compaction algorithm over
//! every basic block *before* banks are assigned, with every memory
//! operation pinned to a single memory unit. Each time a memory
//! operation is data-compatible with the instruction being formed but
//! the memory unit is already taken, the two operations could have
//! executed in parallel had their data been in different banks: an
//! interference edge is added between the variables they access — or,
//! when both access the *same* variable, that variable is marked as a
//! candidate for data duplication (§3.2).

use std::collections::BTreeSet;

use dsp_ir::{ExecStats, FuncId, LoopInfo, Program};
use dsp_machine::Bank;
use dsp_sched::{compact_ir_block, MemClaim};

use crate::graph::InterferenceGraph;
use crate::vars::{AliasClasses, Var};

/// How interference-edge weights are derived.
#[derive(Debug, Clone, Copy)]
pub enum WeightMode<'a> {
    /// The paper's default heuristic: the loop nesting depth of the
    /// accesses (weight = depth + 1, so code outside any loop still
    /// counts 1, matching Figure 4).
    LoopDepth,
    /// Profile-driven weights: the execution count of the basic block
    /// containing the accesses (paper §4.1, configuration `Pr`).
    Profile(&'a ExecStats),
    /// Every discovered pair weighs 1 (ablation).
    Uniform,
}

/// Estimated dynamic behaviour of one duplication candidate, for the
/// paper's §5 refinement (duplicate only when the performance gain
/// justifies the cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DupStats {
    /// Weighted count of same-class load pairs that could issue
    /// together if the class were duplicated — each is roughly one
    /// cycle saved per execution.
    pub conflicts: u64,
    /// Weighted count of stores to the class — each would gain a
    /// bookkeeping store that may cost a cycle when it cannot pack.
    pub stores: u64,
    /// Words of storage the duplicated copy would occupy.
    pub copy_words: u64,
}

impl DupStats {
    /// The §5 criterion: duplication is worthwhile when the cycles it
    /// can save exceed the cycles its bookkeeping stores can cost.
    #[must_use]
    pub fn worthwhile(&self) -> bool {
        self.conflicts > self.stores
    }
}

/// The products of the trial compaction.
#[derive(Debug, Clone)]
pub struct BuildResult {
    /// The weighted interference graph over alias classes.
    pub graph: InterferenceGraph,
    /// Alias classes that were accessed twice in one candidate
    /// instruction — partitioning cannot help them; duplication can.
    pub dup_candidates: BTreeSet<Var>,
    /// Benefit/cost estimates for each duplication candidate, weighted
    /// by the same mode as the interference edges (dynamic counts under
    /// [`WeightMode::Profile`], loop-depth statics otherwise).
    pub dup_stats: std::collections::HashMap<Var, DupStats>,
}

/// Build the interference graph of `program`.
///
/// # Panics
///
/// Panics if a basic block's dependence graph is cyclic, which
/// [`dsp_ir::Program::validate`]d programs cannot produce.
#[must_use]
pub fn build_interference(
    program: &Program,
    alias: &AliasClasses,
    mode: WeightMode<'_>,
) -> BuildResult {
    let mut graph = InterferenceGraph::new();
    let mut dup_candidates = BTreeSet::new();
    let mut dup_stats: std::collections::HashMap<Var, DupStats> = std::collections::HashMap::new();
    // Every alias class is a node even if never co-accessed.
    for class in alias.classes() {
        if !matches!(class, Var::ParamSlot(..)) {
            graph.add_node(class);
        }
    }
    for (fi, f) in program.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        let loops = LoopInfo::compute(f);
        for (bi, block) in f.iter_blocks() {
            let weight = match mode {
                WeightMode::LoopDepth => u64::from(loops.depth_of(bi)) + 1,
                WeightMode::Profile(stats) => stats.block_count(func, bi),
                WeightMode::Uniform => 1,
            };
            if weight == 0 {
                continue; // never-executed block contributes nothing
            }
            let ops = &block.ops;
            let mem_count = ops.iter().filter(|o| o.is_mem()).count();
            if mem_count < 2 {
                continue; // no chance of a memory pair
            }
            let claims = vec![MemClaim::Fixed(Bank::X); mem_count];
            let mut observer = |i: usize, j: usize| {
                let a = class_of_op(alias, func, &ops[i]);
                let b = class_of_op(alias, func, &ops[j]);
                if a == b {
                    // Duplication only pays for a pair of *loads*: a
                    // store must update both copies anyway, so pairing a
                    // load with one of its own array's stores saves
                    // nothing and still costs the bookkeeping store.
                    // (The paper's §5 closing remark invites exactly
                    // this kind of refinement of the duplication set.)
                    let both_loads = matches!(ops[i], dsp_ir::ops::Op::Load { .. })
                        && matches!(ops[j], dsp_ir::ops::Op::Load { .. });
                    if both_loads {
                        dup_candidates.insert(a);
                        dup_stats.entry(a).or_default().conflicts += weight;
                    }
                } else {
                    match mode {
                        WeightMode::LoopDepth => graph.raise_edge_weight(a, b, weight),
                        WeightMode::Profile(_) | WeightMode::Uniform => {
                            graph.add_edge_weight(a, b, weight);
                        }
                    }
                }
            };
            compact_ir_block(ops, &claims, Some(&mut observer))
                .expect("validated blocks have acyclic dependence graphs");
        }
    }
    // Store traffic and storage footprint of each candidate, weighted
    // consistently with the conflicts.
    for (fi, f) in program.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        let loops = LoopInfo::compute(f);
        for (bi, block) in f.iter_blocks() {
            let weight = match mode {
                WeightMode::LoopDepth => u64::from(loops.depth_of(bi)) + 1,
                WeightMode::Profile(stats) => stats.block_count(func, bi),
                WeightMode::Uniform => 1,
            };
            for op in &block.ops {
                if let dsp_ir::ops::Op::Store { addr, .. } = op {
                    let class = alias.class_of_base(func, addr.base);
                    if let Some(s) = dup_stats.get_mut(&class) {
                        s.stores += weight;
                    }
                }
            }
        }
    }
    for (class, stats) in &mut dup_stats {
        stats.copy_words = alias
            .members(*class)
            .iter()
            .map(|m| match m {
                Var::Global(g) => u64::from(program.globals[g.index()].size),
                Var::Local(func, l) => u64::from(program.func(*func).locals[l.index()].size),
                Var::ParamSlot(..) => 0,
            })
            .sum();
    }
    BuildResult {
        graph,
        dup_candidates,
        dup_stats,
    }
}

fn class_of_op(alias: &AliasClasses, func: FuncId, op: &dsp_ir::ops::Op) -> Var {
    let mem = op.mem_ref().expect("observer only reports memory ops");
    alias.class_of_base(func, mem.base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;
    use dsp_ir::GlobalId;

    fn gvar(p: &Program, name: &str) -> Var {
        Var::Global(p.global_by_name(name).expect("global exists"))
    }

    #[test]
    fn fir_loop_interferes_coefficients_with_samples() {
        // The motivating FIR example (paper Figure 1): A[i] and B[i] are
        // loaded in the same iteration and should interfere with the
        // loop weight 2 (depth 1 + 1).
        let src = "float A[8]; float B[8]; float out;
                   void main() {
                     int i; float sum; sum = 0.0;
                     for (i = 0; i < 8; i++) sum += A[i] * B[i];
                     out = sum;
                   }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::LoopDepth);
        let w = r.graph.weight(gvar(&p, "A"), gvar(&p, "B"));
        assert_eq!(w, 2, "loop-depth weight should be depth+1 = 2");
        assert!(r.dup_candidates.is_empty());
    }

    #[test]
    fn straightline_pairs_weigh_one() {
        let src = "int A[4]; int B[4]; int out;
                   void main() { out = A[0] + B[0]; }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::LoopDepth);
        assert_eq!(r.graph.weight(gvar(&p, "A"), gvar(&p, "B")), 1);
    }

    #[test]
    fn autocorrelation_marks_array_for_duplication() {
        // Paper Figure 6: R[n] += signal[n] * signal[n+m] — the two
        // signal loads could pair but share the array. A constant lag
        // folds into the addressing offset, so both loads are ready in
        // the same candidate instruction even without the back-end's
        // induction-variable rewriting (which handles dynamic lags).
        let src = "float signal[16]; float R[8];
                   void main() {
                     int n;
                     for (n = 0; n < 8; n++)
                       R[n] += signal[n] * signal[n + 4];
                   }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::LoopDepth);
        assert!(
            r.dup_candidates.contains(&gvar(&p, "signal")),
            "signal accessed twice in one instruction candidate: {:?}",
            r.dup_candidates
        );
    }

    #[test]
    fn profile_weights_use_block_counts() {
        let src = "int A[64]; int B[64]; int out;
                   void main() {
                     int i; out = 0;
                     for (i = 0; i < 64; i++) out += A[i] + B[i];
                   }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let mut interp = dsp_ir::Interpreter::new(&p);
        let (_, stats) = interp.run().unwrap();
        let r = build_interference(&p, &alias, WeightMode::Profile(&stats));
        let w = r.graph.weight(gvar(&p, "A"), gvar(&p, "B"));
        assert_eq!(w, 64, "profile weight equals loop trip count, got {w}");
    }

    #[test]
    fn uniform_weights_are_one() {
        let src = "int A[8]; int B[8]; int out;
                   void main() {
                     int i;
                     for (i = 0; i < 8; i++) out += A[i] + B[i];
                   }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::Uniform);
        assert_eq!(r.graph.weight(gvar(&p, "A"), gvar(&p, "B")), 1);
    }

    #[test]
    fn dependent_accesses_do_not_interfere() {
        // hist[img[i]] += 1: the inner load feeds the outer access, so
        // they can never issue together; no edge should appear.
        let src = "int img[8] = {0, 1, 2, 3, 0, 1, 2, 3}; int hist[4];
                   void main() {
                     int i;
                     for (i = 0; i < 8; i++) hist[img[i]] += 1;
                   }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::LoopDepth);
        assert_eq!(
            r.graph.weight(gvar(&p, "img"), gvar(&p, "hist")),
            0,
            "serial dependence must not create interference"
        );
        let _ = GlobalId(0);
    }

    #[test]
    fn every_class_is_a_node() {
        let src = "int A[4]; int lonely; void main() { A[0] = 1; }";
        let p = compile_str(src).unwrap();
        let alias = AliasClasses::build(&p);
        let r = build_interference(&p, &alias, WeightMode::LoopDepth);
        assert!(r.graph.contains(gvar(&p, "lonely")));
        assert!(r.graph.contains(gvar(&p, "A")));
    }
}
