//! Allocation variables and alias classes.
//!
//! The nodes of the interference graph are the program's *variables*:
//! globals (scalars and arrays) and per-function local arrays. Array
//! parameters are not variables themselves — they are *aliases* for
//! whatever arrays the call sites pass. This module unifies each array
//! parameter with every actual argument bound to it (transitively,
//! through parameter-to-parameter passing) using a union-find, yielding
//! **alias classes**. A class is allocated to a single bank as a unit,
//! which is exactly the conservative allocation the paper anticipates
//! for unresolved pointers (§2, last paragraph).

use std::collections::HashMap;

use dsp_ir::ops::{Arg, MemBase, Op};
use dsp_ir::{FuncId, GlobalId, LocalId, Program};

/// A memory-resident variable or an array-parameter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Var {
    /// A program global (scalar or array).
    Global(GlobalId),
    /// A local array of a function.
    Local(FuncId, LocalId),
    /// The `usize`-th parameter slot of a function (array params only).
    ParamSlot(FuncId, usize),
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Var::Global(g) => write!(f, "{g}"),
            Var::Local(func, l) => write!(f, "{func}.{l}"),
            Var::ParamSlot(func, i) => write!(f, "{func}.p{i}"),
        }
    }
}

/// Union-find over [`Var`]s, recording which variables must share a
/// bank because an array parameter may refer to any of them.
#[derive(Debug, Clone)]
pub struct AliasClasses {
    index: HashMap<Var, usize>,
    vars: Vec<Var>,
    parent: Vec<usize>,
}

impl AliasClasses {
    /// Build alias classes for a whole program by scanning every call
    /// site and unifying array arguments with the corresponding
    /// parameter slots.
    #[must_use]
    pub fn build(program: &Program) -> AliasClasses {
        let mut ac = AliasClasses {
            index: HashMap::new(),
            vars: Vec::new(),
            parent: Vec::new(),
        };
        // Intern all memory-resident variables.
        for (i, _) in program.globals.iter().enumerate() {
            ac.intern(Var::Global(GlobalId(i as u32)));
        }
        for (fi, f) in program.funcs.iter().enumerate() {
            for (li, _) in f.locals.iter().enumerate() {
                ac.intern(Var::Local(FuncId(fi as u32), LocalId(li as u32)));
            }
            for (pi, p) in f.params.iter().enumerate() {
                if matches!(p.kind, dsp_ir::ParamKind::Array(_)) {
                    ac.intern(Var::ParamSlot(FuncId(fi as u32), pi));
                }
            }
        }
        // Unify parameter slots with actual arguments.
        for (fi, f) in program.funcs.iter().enumerate() {
            let caller = FuncId(fi as u32);
            for block in &f.blocks {
                for op in &block.ops {
                    if let Op::Call { callee, args, .. } = op {
                        for (pi, a) in args.iter().enumerate() {
                            if let Arg::Array(base) = a {
                                let actual = var_of(caller, *base);
                                ac.union(Var::ParamSlot(*callee, pi), actual);
                            }
                        }
                    }
                }
            }
        }
        ac
    }

    fn intern(&mut self, v: Var) -> usize {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.vars.len();
        self.index.insert(v, i);
        self.vars.push(v);
        self.parent.push(i);
        i
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: Var, b: Var) {
        let (a, b) = (self.intern(a), self.intern(b));
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Prefer a non-parameter representative so reporting names a
            // real variable where possible.
            let a_is_param = matches!(self.vars[ra], Var::ParamSlot(..));
            let b_is_param = matches!(self.vars[rb], Var::ParamSlot(..));
            let (keep, drop) = match (a_is_param, b_is_param) {
                (true, false) => (rb, ra),
                (false, true) => (ra, rb),
                _ => (ra.min(rb), ra.max(rb)),
            };
            self.parent[drop] = keep;
        }
    }

    /// The representative variable of `v`'s alias class.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never interned (not part of the program this
    /// was built from).
    #[must_use]
    pub fn class_of(&self, v: Var) -> Var {
        let i = *self
            .index
            .get(&v)
            .unwrap_or_else(|| panic!("unknown variable {v}"));
        self.vars[self.find(i)]
    }

    /// The alias class of the object a memory operation in `func`
    /// touches.
    #[must_use]
    pub fn class_of_base(&self, func: FuncId, base: MemBase) -> Var {
        self.class_of(var_of(func, base))
    }

    /// All distinct class representatives, in a stable order.
    #[must_use]
    pub fn classes(&self) -> Vec<Var> {
        let mut out: Vec<Var> = (0..self.vars.len())
            .filter(|&i| self.find(i) == i)
            .map(|i| self.vars[i])
            .collect();
        out.sort();
        out
    }

    /// All variables belonging to the class of `rep`.
    #[must_use]
    pub fn members(&self, rep: Var) -> Vec<Var> {
        let Some(&ri) = self.index.get(&rep) else {
            return Vec::new();
        };
        let root = self.find(ri);
        (0..self.vars.len())
            .filter(|&i| self.find(i) == root)
            .map(|i| self.vars[i])
            .collect()
    }
}

/// The [`Var`] a [`MemBase`] denotes inside function `func`.
#[must_use]
pub fn var_of(func: FuncId, base: MemBase) -> Var {
    match base {
        MemBase::Global(g) => Var::Global(g),
        MemBase::Local(l) => Var::Local(func, l),
        MemBase::Param(i) => Var::ParamSlot(func, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;

    #[test]
    fn param_unifies_with_actual() {
        let src = "int A[4]; int B[4];
                   int f(int v[]) { return v[0]; }
                   void main() { int x; x = f(A); x = f(B); }";
        let p = compile_str(src).unwrap();
        let ac = AliasClasses::build(&p);
        let a = Var::Global(p.global_by_name("A").unwrap());
        let b = Var::Global(p.global_by_name("B").unwrap());
        // Both A and B flow into f's parameter: one class.
        assert_eq!(ac.class_of(a), ac.class_of(b));
    }

    #[test]
    fn unrelated_arrays_stay_separate() {
        let src = "int A[4]; int B[4];
                   void main() { A[0] = B[0]; }";
        let p = compile_str(src).unwrap();
        let ac = AliasClasses::build(&p);
        let a = Var::Global(p.global_by_name("A").unwrap());
        let b = Var::Global(p.global_by_name("B").unwrap());
        assert_ne!(ac.class_of(a), ac.class_of(b));
        assert_eq!(ac.classes().len(), 2);
    }

    #[test]
    fn param_to_param_chains_unify() {
        let src = "int A[4];
                   int g(int w[]) { return w[1]; }
                   int f(int v[]) { return g(v); }
                   void main() { int x; x = f(A); }";
        let p = compile_str(src).unwrap();
        let ac = AliasClasses::build(&p);
        let a = Var::Global(p.global_by_name("A").unwrap());
        let g = p.func_by_name("g").unwrap();
        assert_eq!(ac.class_of(Var::ParamSlot(g, 0)), ac.class_of(a));
        // Representative is the real array, not a parameter slot.
        assert_eq!(ac.class_of(a), a);
    }

    #[test]
    fn locals_are_per_function() {
        let src = "void f() { int t[4]; t[0] = 1; }
                   void main() { int t[4]; t[0] = 2; f(); }";
        let p = compile_str(src).unwrap();
        let ac = AliasClasses::build(&p);
        let f = p.func_by_name("f").unwrap();
        let m = p.func_by_name("main").unwrap();
        assert_ne!(
            ac.class_of(Var::Local(f, LocalId(0))),
            ac.class_of(Var::Local(m, LocalId(0)))
        );
    }

    #[test]
    fn members_lists_whole_class() {
        let src = "int A[4]; int B[4];
                   int f(int v[]) { return v[0]; }
                   void main() { int x; x = f(A); x = f(B); }";
        let p = compile_str(src).unwrap();
        let ac = AliasClasses::build(&p);
        let a = Var::Global(p.global_by_name("A").unwrap());
        let rep = ac.class_of(a);
        let members = ac.members(rep);
        assert_eq!(members.len(), 3); // A, B, f.p0
    }
}
