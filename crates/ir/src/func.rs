//! Programs, functions, basic blocks, and their structural validation.

use crate::ids::{BlockId, FuncId, GlobalId, LocalId, VReg};
use crate::ops::{Arg, MemBase, Op};
use crate::Type;
use dsp_machine::Word;

/// A program-level variable or array resident in data memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Size in words; 1 for scalars.
    pub size: u32,
    /// Initial values for the first `init.len()` words (rest are zero).
    pub init: Vec<Word>,
}

/// A stack-allocated local array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalArray {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Size in words.
    pub size: u32,
}

/// How a parameter is passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A scalar passed by value.
    Value(Type),
    /// An array passed by reference (base address).
    Array(Type),
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Source-level name.
    pub name: String,
    /// Passing convention and element type.
    pub kind: ParamKind,
}

/// A basic block: a maximal straight-line sequence of operations ending
/// in a terminator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The operations, in program order. The last one must be a
    /// terminator once the function is complete.
    pub ops: Vec<Op>,
}

impl Block {
    /// Append an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// The terminator, if the block is complete.
    #[must_use]
    pub fn terminator(&self) -> Option<&Op> {
        self.ops.last().filter(|op| op.is_terminator())
    }

    /// True if the block ends in a terminator.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.terminator().is_some()
    }
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type, if the function returns a value.
    pub ret: Option<Type>,
    /// Type of every virtual register, indexed by [`VReg`].
    pub vregs: Vec<Type>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Stack-allocated local arrays, indexed by [`LocalId`].
    pub locals: Vec<LocalArray>,
}

impl Function {
    /// Create an empty function with a fresh entry block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret: None,
            vregs: Vec::new(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
            locals: Vec::new(),
        }
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: Type) -> VReg {
        let id = VReg(self.vregs.len() as u32);
        self.vregs.push(ty);
        id
    }

    /// Allocate a fresh, empty basic block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    /// Add a stack-allocated local array.
    pub fn new_local(&mut self, name: impl Into<String>, ty: Type, size: u32) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(LocalArray {
            name: name.into(),
            ty,
            size,
        });
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// The type of a virtual register.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn vreg_ty(&self, v: VReg) -> Type {
        self.vregs[v.index()]
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of operations across all blocks.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

/// A whole program: globals plus functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Memory-resident globals, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// The entry function, conventionally `main`.
    pub main: Option<FuncId>,
}

impl Program {
    /// Create an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a global; returns its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Add a function; returns its id. If the function is named `main`
    /// and no entry is set yet, it becomes the program entry.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        if f.name == "main" && self.main.is_none() {
            self.main = Some(id);
        }
        self.funcs.push(f);
        id
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Look up a function by name.
    #[must_use]
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Look up a global by name.
    #[must_use]
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The element type of the object a [`MemBase`] denotes, seen from
    /// inside function `f`.
    ///
    /// # Panics
    ///
    /// Panics if the base is out of range for the program/function.
    #[must_use]
    pub fn base_ty(&self, f: &Function, base: MemBase) -> Type {
        match base {
            MemBase::Global(g) => self.globals[g.index()].ty,
            MemBase::Local(l) => f.locals[l.index()].ty,
            MemBase::Param(i) => match f.params[i].kind {
                ParamKind::Array(ty) | ParamKind::Value(ty) => ty,
            },
        }
    }

    /// Check structural and type invariants of the whole program.
    ///
    /// Verified per function: every block is terminated exactly at its
    /// end; registers, blocks, globals, locals and params referenced by
    /// operations are in range; operand and destination types match the
    /// operation (integer ops use `Int` registers, float ops `Float`,
    /// array indices are `Int`); call sites match callee signatures; and
    /// `main`, when set, takes no parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(m) = self.main {
            if m.index() >= self.funcs.len() {
                return Err(format!("main {m} out of range"));
            }
            if !self.func(m).params.is_empty() {
                return Err("main must take no parameters".into());
            }
        }
        for (fi, f) in self.funcs.iter().enumerate() {
            self.validate_function(f)
                .map_err(|e| format!("fn{fi} `{}`: {e}", f.name))?;
        }
        Ok(())
    }

    fn validate_function(&self, f: &Function) -> Result<(), String> {
        if f.entry.index() >= f.blocks.len() {
            return Err(format!("entry {} out of range", f.entry));
        }
        for (bi, block) in f.iter_blocks() {
            if !block.is_terminated() {
                return Err(format!("{bi} is not terminated"));
            }
            for (oi, op) in block.ops.iter().enumerate() {
                let last = oi + 1 == block.ops.len();
                if op.is_terminator() && !last {
                    return Err(format!("{bi} op {oi}: terminator before end of block"));
                }
                self.validate_op(f, op)
                    .map_err(|e| format!("{bi} op {oi} `{op:?}`: {e}"))?;
            }
        }
        Ok(())
    }

    fn validate_op(&self, f: &Function, op: &Op) -> Result<(), String> {
        let ty = |v: VReg| -> Result<Type, String> {
            f.vregs
                .get(v.index())
                .copied()
                .ok_or_else(|| format!("{v} out of range"))
        };
        let expect = |v: VReg, want: Type| -> Result<(), String> {
            let got = ty(v)?;
            if got == want {
                Ok(())
            } else {
                Err(format!("{v} has type {got}, expected {want}"))
            }
        };
        let check_base = |base: MemBase| -> Result<(), String> {
            match base {
                MemBase::Global(g) if g.index() >= self.globals.len() => {
                    Err(format!("{g} out of range"))
                }
                MemBase::Local(l) if l.index() >= f.locals.len() => {
                    Err(format!("{l} out of range"))
                }
                MemBase::Param(i) if i >= f.params.len() => Err(format!("param {i} out of range")),
                MemBase::Param(i) => match f.params[i].kind {
                    ParamKind::Array(_) => Ok(()),
                    ParamKind::Value(_) => Err(format!("param {i} is not an array")),
                },
                _ => Ok(()),
            }
        };
        match op {
            Op::MovI { dst, src } => {
                expect(*dst, Type::Int)?;
                if let Some(r) = src.reg() {
                    expect(r, Type::Int)?;
                }
            }
            Op::MovF { dst, src } => {
                expect(*dst, Type::Float)?;
                if let Some(r) = src.reg() {
                    expect(r, Type::Float)?;
                }
            }
            Op::IBin { dst, lhs, rhs, .. } | Op::ICmp { dst, lhs, rhs, .. } => {
                expect(*dst, Type::Int)?;
                expect(*lhs, Type::Int)?;
                if let Some(r) = rhs.reg() {
                    expect(r, Type::Int)?;
                }
            }
            Op::INeg { dst, src } | Op::INot { dst, src } => {
                expect(*dst, Type::Int)?;
                expect(*src, Type::Int)?;
            }
            Op::FBin { dst, lhs, rhs, .. } => {
                expect(*dst, Type::Float)?;
                expect(*lhs, Type::Float)?;
                expect(*rhs, Type::Float)?;
            }
            Op::FCmp { dst, lhs, rhs, .. } => {
                expect(*dst, Type::Int)?;
                expect(*lhs, Type::Float)?;
                expect(*rhs, Type::Float)?;
            }
            Op::FNeg { dst, src } => {
                expect(*dst, Type::Float)?;
                expect(*src, Type::Float)?;
            }
            Op::FMac { acc, a, b } => {
                expect(*acc, Type::Float)?;
                expect(*a, Type::Float)?;
                expect(*b, Type::Float)?;
            }
            Op::ItoF { dst, src } => {
                expect(*dst, Type::Float)?;
                expect(*src, Type::Int)?;
            }
            Op::FtoI { dst, src } => {
                expect(*dst, Type::Int)?;
                expect(*src, Type::Float)?;
            }
            Op::Load { dst, addr } => {
                check_base(addr.base)?;
                if let Some(i) = addr.index {
                    expect(i, Type::Int)?;
                }
                expect(*dst, self.base_ty(f, addr.base))?;
            }
            Op::Store { src, addr } => {
                check_base(addr.base)?;
                if let Some(i) = addr.index {
                    expect(i, Type::Int)?;
                }
                expect(*src, self.base_ty(f, addr.base))?;
            }
            Op::Call { dst, callee, args } => {
                let callee = self
                    .funcs
                    .get(callee.index())
                    .ok_or_else(|| format!("{callee} out of range"))?;
                if callee.params.len() != args.len() {
                    return Err(format!(
                        "call to `{}` passes {} args, expected {}",
                        callee.name,
                        args.len(),
                        callee.params.len()
                    ));
                }
                for (a, p) in args.iter().zip(&callee.params) {
                    match (a, p.kind) {
                        (Arg::Value(v), ParamKind::Value(t)) => expect(*v, t)?,
                        (Arg::Array(b), ParamKind::Array(t)) => {
                            check_base(*b)?;
                            let got = self.base_ty(f, *b);
                            if got != t {
                                return Err(format!(
                                    "array arg has element type {got}, expected {t}"
                                ));
                            }
                        }
                        (Arg::Value(_), ParamKind::Array(_)) => {
                            return Err(format!("param `{}` expects an array", p.name));
                        }
                        (Arg::Array(_), ParamKind::Value(_)) => {
                            return Err(format!("param `{}` expects a scalar", p.name));
                        }
                    }
                }
                match (dst, callee.ret) {
                    (Some(d), Some(t)) => expect(*d, t)?,
                    (Some(_), None) => {
                        return Err(format!("`{}` returns no value", callee.name));
                    }
                    _ => {}
                }
            }
            Op::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                expect(*cond, Type::Int)?;
                for b in [then_bb, else_bb] {
                    if b.index() >= f.blocks.len() {
                        return Err(format!("{b} out of range"));
                    }
                }
            }
            Op::Jmp(b) => {
                if b.index() >= f.blocks.len() {
                    return Err(format!("{b} out of range"));
                }
            }
            Op::Ret(v) => match (v, f.ret) {
                (Some(v), Some(t)) => expect(*v, t)?,
                (Some(_), None) => return Err("void function returns a value".into()),
                (None, Some(_)) => return Err("non-void function returns nothing".into()),
                (None, None) => {}
            },
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::IOperand;
    use dsp_machine::IntBinKind;

    fn simple_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let v = f.new_vreg(Type::Int);
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: v,
            src: IOperand::Imm(1),
        });
        f.block_mut(entry).push(Op::Ret(None));
        p.add_function(f);
        p
    }

    #[test]
    fn main_auto_detected() {
        let p = simple_program();
        assert_eq!(p.main, Some(FuncId(0)));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unterminated_block_rejected() {
        let mut p = simple_program();
        p.funcs[0].blocks[0].ops.pop();
        let err = p.validate().unwrap_err();
        assert!(err.contains("not terminated"), "{err}");
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let vi = f.new_vreg(Type::Int);
        let vf = f.new_vreg(Type::Float);
        let entry = f.entry;
        f.block_mut(entry).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: vi,
            lhs: vi,
            rhs: IOperand::Reg(vf),
        });
        f.block_mut(entry).push(Op::Ret(None));
        p.add_function(f);
        let err = p.validate().unwrap_err();
        assert!(err.contains("expected int"), "{err}");
    }

    #[test]
    fn call_signature_checked() {
        let mut p = Program::new();
        let mut callee = Function::new("callee");
        callee.params.push(Param {
            name: "x".into(),
            kind: ParamKind::Value(Type::Int),
        });
        let entry = callee.entry;
        callee.block_mut(entry).push(Op::Ret(None));
        let callee_id = p.add_function(callee);

        let mut main = Function::new("main");
        let entry = main.entry;
        main.block_mut(entry).push(Op::Call {
            dst: None,
            callee: callee_id,
            args: vec![],
        });
        main.block_mut(entry).push(Op::Ret(None));
        p.add_function(main);
        let err = p.validate().unwrap_err();
        assert!(err.contains("passes 0 args"), "{err}");
    }

    #[test]
    fn load_type_follows_global() {
        let mut p = Program::new();
        let g = p.add_global(Global {
            name: "coef".into(),
            ty: Type::Float,
            size: 8,
            init: vec![],
        });
        let mut f = Function::new("main");
        let vf = f.new_vreg(Type::Float);
        let entry = f.entry;
        f.block_mut(entry).push(Op::Load {
            dst: vf,
            addr: MemRef::direct(MemBase::Global(g), 0),
        });
        f.block_mut(entry).push(Op::Ret(None));
        p.add_function(f);
        assert!(p.validate().is_ok());
    }

    use crate::ops::MemRef;

    #[test]
    fn terminator_mid_block_rejected() {
        let mut p = simple_program();
        p.funcs[0].blocks[0].ops.insert(0, Op::Jmp(BlockId(0)));
        let err = p.validate().unwrap_err();
        assert!(err.contains("terminator before end"), "{err}");
    }

    #[test]
    fn main_with_params_rejected() {
        let mut p = simple_program();
        p.funcs[0].params.push(Param {
            name: "x".into(),
            kind: ParamKind::Value(Type::Int),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn op_count_sums_blocks() {
        let p = simple_program();
        assert_eq!(p.func(FuncId(0)).op_count(), 2);
    }
}
