//! Human-readable printing of IR programs and operations.

use crate::func::{Function, ParamKind, Program};
use crate::ops::Op;

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::MovI { dst, src } => write!(f, "{dst} = movi {src}"),
            Op::MovF { dst, src } => write!(f, "{dst} = movf {src}"),
            Op::IBin {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = {kind} {lhs}, {rhs}"),
            Op::ICmp {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = icmp.{kind} {lhs}, {rhs}"),
            Op::INeg { dst, src } => write!(f, "{dst} = ineg {src}"),
            Op::INot { dst, src } => write!(f, "{dst} = inot {src}"),
            Op::FBin {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = {kind} {lhs}, {rhs}"),
            Op::FCmp {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = fcmp.{kind} {lhs}, {rhs}"),
            Op::FMac { acc, a, b } => write!(f, "{acc} = fmac {acc}, {a}, {b}"),
            Op::FNeg { dst, src } => write!(f, "{dst} = fneg {src}"),
            Op::ItoF { dst, src } => write!(f, "{dst} = itof {src}"),
            Op::FtoI { dst, src } => write!(f, "{dst} = ftoi {src}"),
            Op::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            Op::Store { src, addr } => write!(f, "store {addr}, {src}"),
            Op::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Op::Br {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {cond}, {then_bb}, {else_bb}"),
            Op::Jmp(b) => write!(f, "jmp {b}"),
            Op::Ret(Some(v)) => write!(f, "ret {v}"),
            Op::Ret(None) => write!(f, "ret"),
        }
    }
}

impl Function {
    /// Render the function as readable IR text.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "fn {}(", self.name);
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            match p.kind {
                ParamKind::Value(t) => {
                    let _ = write!(out, "{t} {}", p.name);
                }
                ParamKind::Array(t) => {
                    let _ = write!(out, "{t} {}[]", p.name);
                }
            }
        }
        let _ = write!(out, ")");
        if let Some(t) = self.ret {
            let _ = write!(out, " -> {t}");
        }
        let _ = writeln!(out, " {{");
        for l in &self.locals {
            let _ = writeln!(out, "  local {} {}[{}]", l.ty, l.name, l.size);
        }
        for (id, block) in self.iter_blocks() {
            let _ = writeln!(out, "{id}:");
            for op in &block.ops {
                let _ = writeln!(out, "    {op}");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl Program {
    /// Render the whole program as readable IR text.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, g) in self.globals.iter().enumerate() {
            let _ = writeln!(out, "global g{i} {} {}[{}]", g.ty, g.name, g.size);
        }
        for f in &self.funcs {
            let _ = writeln!(out);
            out.push_str(&f.dump());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::func::{Function, Program};
    use crate::ops::{IOperand, Op};
    use crate::Type;

    #[test]
    fn dump_round_trip_smoke() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let v = f.new_vreg(Type::Int);
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: v,
            src: IOperand::Imm(3),
        });
        f.block_mut(entry).push(Op::Ret(None));
        p.add_function(f);
        let text = p.dump();
        assert!(text.contains("fn main()"), "{text}");
        assert!(text.contains("%0 = movi #3"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }
}
