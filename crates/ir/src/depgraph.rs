//! Per-basic-block data-dependence graphs.
//!
//! The compaction algorithm (paper Figure 3) starts by generating a
//! data-dependence graph for every basic block and assigning each
//! operation a priority "equal to the number of descendents an operation
//! has in the dependence graph". This module builds that graph, with
//! flow (read-after-write), anti (write-after-read) and output
//! (write-after-write) edges over both registers and memory, plus
//! control edges that pin every operation before the block terminator.

use crate::ops::{MemBase, MemRef, Op};

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: the successor reads a value the predecessor
    /// produces. The successor must issue in a strictly later cycle.
    Flow,
    /// Write-after-read: the successor overwrites a location the
    /// predecessor reads. With same-cycle read-before-write semantics,
    /// both may issue in the *same* cycle ("data-compatible" in the
    /// paper).
    Anti,
    /// Write-after-write: both write the same location; strictly ordered.
    Output,
    /// Control: the predecessor must issue no later than the block
    /// terminator. Treated like [`DepKind::Anti`] for packing purposes —
    /// an operation may share the terminator's cycle.
    Control,
}

impl DepKind {
    /// True if the successor may issue in the same cycle as the
    /// predecessor (reads happen before writes within a cycle).
    #[must_use]
    pub fn allows_same_cycle(self) -> bool {
        matches!(self, DepKind::Anti | DepKind::Control)
    }
}

/// A directed dependence edge between two operations of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Index of the predecessor operation.
    pub from: usize,
    /// Index of the successor operation.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
}

/// The data-dependence graph of one basic block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: Vec<DepEdge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

/// Can two memory references touch the same word in some execution?
///
/// References to *different* named objects never overlap (DSP-C has no
/// raw pointers), except that an array parameter may be bound to any
/// array, so a [`MemBase::Param`] conservatively aliases everything.
/// References to the same object with compile-time-distinct addresses —
/// equal (or absent) index registers but different constant offsets —
/// cannot overlap either.
#[must_use]
pub fn refs_may_overlap(a: &MemRef, b: &MemRef) -> bool {
    let base_alias = match (a.base, b.base) {
        (MemBase::Param(_), _) | (_, MemBase::Param(_)) => true,
        (x, y) => x == y,
    };
    if !base_alias {
        return false;
    }
    if a.base == b.base && a.index == b.index {
        // Same object, same (possibly absent) dynamic index: overlap
        // only when the constant displacements agree.
        return a.offset == b.offset;
    }
    true
}

impl DepGraph {
    /// Build the dependence graph of the operation sequence `ops`
    /// (one basic block, in program order).
    #[must_use]
    pub fn build(ops: &[Op]) -> DepGraph {
        let n = ops.len();
        let mut edges = Vec::new();
        let mut add = |from: usize, to: usize, kind: DepKind| {
            edges.push(DepEdge { from, to, kind });
        };
        for j in 0..n {
            for i in 0..j {
                let (a, b) = (&ops[i], &ops[j]);
                // Register dependences.
                if let Some(d) = a.def() {
                    if b.uses().contains(&d) {
                        add(i, j, DepKind::Flow);
                    }
                    if b.def() == Some(d) {
                        add(i, j, DepKind::Output);
                    }
                }
                if let Some(d) = b.def() {
                    if a.uses().contains(&d) {
                        add(i, j, DepKind::Anti);
                    }
                }
                // Memory dependences.
                match (a, b) {
                    (Op::Store { addr: ra, .. }, Op::Load { addr: rb, .. })
                        if refs_may_overlap(ra, rb) =>
                    {
                        add(i, j, DepKind::Flow);
                    }
                    (Op::Load { addr: ra, .. }, Op::Store { addr: rb, .. })
                        if refs_may_overlap(ra, rb) =>
                    {
                        add(i, j, DepKind::Anti);
                    }
                    (Op::Store { addr: ra, .. }, Op::Store { addr: rb, .. })
                        if refs_may_overlap(ra, rb) =>
                    {
                        add(i, j, DepKind::Output);
                    }
                    _ => {}
                }
                // Calls are barriers for memory and for each other.
                let call_a = matches!(a, Op::Call { .. });
                let call_b = matches!(b, Op::Call { .. });
                if (call_a && (b.is_mem() || call_b)) || (call_b && a.is_mem()) {
                    add(i, j, DepKind::Flow);
                }
                // Everything issues no later than the terminator.
                if b.is_terminator() {
                    add(i, j, DepKind::Control);
                }
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for e in &edges {
            if !succs[e.from].contains(&e.to) {
                succs[e.from].push(e.to);
            }
            if !preds[e.to].contains(&e.from) {
                preds[e.to].push(e.from);
            }
        }
        DepGraph {
            n,
            edges,
            preds,
            succs,
        }
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the block has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges into `i`, with kinds.
    pub fn pred_edges(&self, i: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.to == i)
    }

    /// Distinct predecessors of `i`.
    #[must_use]
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Distinct successors of `i`.
    #[must_use]
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Scheduling priority of every operation: its number of descendants
    /// in the dependence graph (paper Figure 3). Operations with more
    /// downstream work are scheduled first.
    #[must_use]
    pub fn priorities(&self) -> Vec<u32> {
        // Reachability via bitsets, accumulated in reverse program order
        // (edges always go from lower to higher index, so a reverse scan
        // is a topological order).
        let words = self.n.div_ceil(64);
        let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; self.n];
        for i in (0..self.n).rev() {
            // Split so we can read successor sets while writing node i's.
            let (head, tail) = reach.split_at_mut(i + 1);
            let mine = &mut head[i];
            for &s in &self.succs[i] {
                mine[s / 64] |= 1u64 << (s % 64);
                let other = &tail[s - i - 1];
                for (m, o) in mine.iter_mut().zip(other) {
                    *m |= o;
                }
            }
        }
        reach
            .iter()
            .map(|bits| bits.iter().map(|w| w.count_ones()).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalId, VReg};
    use crate::ops::{IOperand, MemRef};
    use dsp_machine::IntBinKind;

    fn movi(dst: u32, imm: i32) -> Op {
        Op::MovI {
            dst: VReg(dst),
            src: IOperand::Imm(imm),
        }
    }

    fn add(dst: u32, lhs: u32, rhs: u32) -> Op {
        Op::IBin {
            kind: IntBinKind::Add,
            dst: VReg(dst),
            lhs: VReg(lhs),
            rhs: IOperand::Reg(VReg(rhs)),
        }
    }

    fn load(dst: u32, g: u32, idx: Option<u32>) -> Op {
        Op::Load {
            dst: VReg(dst),
            addr: MemRef {
                base: MemBase::Global(GlobalId(g)),
                index: idx.map(VReg),
                offset: 0,
            },
        }
    }

    fn store(src: u32, g: u32, idx: Option<u32>) -> Op {
        Op::Store {
            src: VReg(src),
            addr: MemRef {
                base: MemBase::Global(GlobalId(g)),
                index: idx.map(VReg),
                offset: 0,
            },
        }
    }

    fn has_edge(g: &DepGraph, from: usize, to: usize, kind: DepKind) -> bool {
        g.edges().contains(&DepEdge { from, to, kind })
    }

    #[test]
    fn flow_anti_output_register_deps() {
        // 0: %0 = 1        (def %0)
        // 1: %1 = %0 + %0  (flow on %0)
        // 2: %0 = 2        (anti vs 1, output vs 0)
        let ops = vec![movi(0, 1), add(1, 0, 0), movi(0, 2)];
        let g = DepGraph::build(&ops);
        assert!(has_edge(&g, 0, 1, DepKind::Flow));
        assert!(has_edge(&g, 1, 2, DepKind::Anti));
        assert!(has_edge(&g, 0, 2, DepKind::Output));
    }

    #[test]
    fn independent_loads_have_no_edge() {
        let ops = vec![load(0, 0, None), load(1, 1, None)];
        let g = DepGraph::build(&ops);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn store_then_load_same_object_is_flow() {
        let ops = vec![store(0, 0, Some(5)), load(1, 0, Some(6))];
        let g = DepGraph::build(&ops);
        assert!(has_edge(&g, 0, 1, DepKind::Flow));
    }

    #[test]
    fn distinct_constant_offsets_do_not_alias() {
        let a = MemRef::direct(MemBase::Global(GlobalId(0)), 2);
        let b = MemRef::direct(MemBase::Global(GlobalId(0)), 3);
        assert!(!refs_may_overlap(&a, &b));
        let c = MemRef::indexed(MemBase::Global(GlobalId(0)), VReg(1), 0);
        let d = MemRef::indexed(MemBase::Global(GlobalId(0)), VReg(1), 1);
        assert!(!refs_may_overlap(&c, &d));
        let e = MemRef::indexed(MemBase::Global(GlobalId(0)), VReg(2), 0);
        assert!(refs_may_overlap(&c, &e)); // different index regs
    }

    #[test]
    fn param_aliases_everything() {
        let p = MemRef::direct(MemBase::Param(0), 0);
        let g0 = MemRef::direct(MemBase::Global(GlobalId(0)), 4);
        assert!(refs_may_overlap(&p, &g0));
    }

    #[test]
    fn terminator_gets_control_edges() {
        let ops = vec![movi(0, 1), Op::Ret(None)];
        let g = DepGraph::build(&ops);
        assert!(has_edge(&g, 0, 1, DepKind::Control));
        assert!(DepKind::Control.allows_same_cycle());
    }

    #[test]
    fn priorities_count_descendants() {
        // Chain: 0 -> 1 -> 2 plus independent 3.
        let ops = vec![movi(0, 1), add(1, 0, 0), add(2, 1, 1), movi(3, 9)];
        let g = DepGraph::build(&ops);
        let p = g.priorities();
        assert_eq!(p, vec![2, 1, 0, 0]);
    }

    #[test]
    fn call_is_memory_barrier() {
        let ops = vec![
            store(0, 0, None),
            Op::Call {
                dst: None,
                callee: crate::ids::FuncId(0),
                args: vec![],
            },
            load(1, 1, None),
        ];
        let g = DepGraph::build(&ops);
        assert!(has_edge(&g, 0, 1, DepKind::Flow));
        assert!(has_edge(&g, 1, 2, DepKind::Flow));
    }
}
