#![warn(missing_docs)]
//! Intermediate representation for the dual-bank DSP compiler.
//!
//! The front-end lowers DSP-C into this IR: functions made of basic
//! blocks holding *unpacked machine operations* over an unbounded set of
//! virtual registers (the paper's GNU-C front-end produced the same
//! shape, §3). Scalar locals are promoted to virtual registers; only
//! arrays — global or stack-allocated — live in data memory, and every
//! [`ops::MemRef`] names the variable it touches, giving the data
//! allocation pass the exact alias information it needs (§2, last
//! paragraph).
//!
//! The crate also provides the analyses the back-end passes share:
//!
//! * [`cfg`] — control-flow graph, dominator tree, and natural-loop
//!   nesting depth (the default interference-edge weight heuristic);
//! * [`depgraph`] — per-basic-block data-dependence graphs with flow,
//!   anti and output edges over registers and memory;
//! * [`interp`] — a reference interpreter used as the semantic oracle for
//!   the whole compiler: whatever the VLIW pipeline produces must compute
//!   the same values the interpreter does.
//!
//! # Example
//!
//! ```
//! use dsp_ir::{Function, Program, Type};
//! use dsp_ir::ops::{IOperand, Op};
//!
//! let mut program = Program::new();
//! let mut f = Function::new("answer");
//! f.ret = Some(Type::Int);
//! let v = f.new_vreg(Type::Int);
//! let entry = f.entry;
//! f.block_mut(entry).push(Op::MovI { dst: v, src: IOperand::Imm(42) });
//! f.block_mut(entry).push(Op::Ret(Some(v)));
//! let id = program.add_function(f);
//! program.main = Some(id);
//! assert!(program.validate().is_ok());
//! ```

pub mod cfg;
pub mod depgraph;
pub mod display;
pub mod func;
pub mod ids;
pub mod interp;
pub mod ops;

pub use cfg::{Cfg, LoopInfo, NaturalLoop};
pub use depgraph::{DepEdge, DepGraph, DepKind};
pub use func::{Block, Function, Global, LocalArray, Param, ParamKind, Program};
pub use ids::{BlockId, FuncId, GlobalId, LocalId, VReg};
pub use interp::{ExecStats, InterpError, Interpreter};
pub use ops::{Arg, FOperand, IOperand, MemBase, MemRef, Op};

/// The scalar value types of the IR.
///
/// Both occupy one 32-bit machine word; the type selects which register
/// file a virtual register maps to and which functional units operate on
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit two's-complement integer.
    Int,
    /// IEEE-754 single-precision float.
    Float,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
        }
    }
}
