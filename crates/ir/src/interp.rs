//! Reference interpreter for the IR.
//!
//! The interpreter defines the *semantics* of a program independently of
//! the whole back-end: scheduling, bank allocation, register allocation
//! and simulation must all preserve the values it computes. It also
//! doubles as the profiler — its [`ExecStats`] report per-block
//! execution counts, which the `Pr` configuration of the paper uses as
//! interference-edge weights in place of loop nesting depth (§4.1).

use std::collections::HashMap;

use crate::func::{Function, ParamKind, Program};
use crate::ids::{BlockId, FuncId, GlobalId, LocalId, VReg};
use crate::ops::{Arg, FOperand, IOperand, MemBase, MemRef, Op};
use dsp_machine::{CmpKind, FpBinKind, IntBinKind, Word};

/// Execution statistics gathered by the interpreter.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total IR operations executed.
    pub ops_executed: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed.
    pub calls: u64,
    /// Times each basic block was entered, per function.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
}

impl ExecStats {
    /// Execution count of one block.
    #[must_use]
    pub fn block_count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_counts.get(&(f, b)).copied().unwrap_or(0)
    }
}

/// Interpretation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program has no `main`.
    NoMain,
    /// An array access fell outside the object.
    OutOfBounds {
        /// Name of the object.
        name: String,
        /// The offending word index.
        index: i64,
        /// The object's size in words.
        size: u32,
    },
    /// The per-run operation budget was exhausted (runaway loop guard).
    FuelExhausted,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::NoMain => write!(f, "program has no main function"),
            InterpError::OutOfBounds { name, index, size } => {
                write!(f, "access to `{name}[{index}]` out of bounds (size {size})")
            }
            InterpError::FuelExhausted => write!(f, "operation budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Where an array parameter is bound at run time.
#[derive(Debug, Clone, Copy)]
enum ArrPlace {
    Global(GlobalId),
    FrameLocal(usize, LocalId),
}

struct Frame {
    func: FuncId,
    vregs: Vec<Word>,
    locals: Vec<Vec<Word>>,
    arr_params: Vec<Option<ArrPlace>>,
}

/// The reference interpreter.
///
/// # Example
///
/// ```
/// use dsp_ir::{Function, Interpreter, Program, Type};
/// use dsp_ir::ops::{IOperand, Op};
///
/// let mut program = Program::new();
/// let mut f = Function::new("main");
/// f.ret = Some(Type::Int);
/// let v = f.new_vreg(Type::Int);
/// let entry = f.entry;
/// f.block_mut(entry).push(Op::MovI { dst: v, src: IOperand::Imm(41) });
/// f.block_mut(entry).push(Op::IBin {
///     kind: dsp_machine::IntBinKind::Add,
///     dst: v, lhs: v, rhs: IOperand::Imm(1),
/// });
/// f.block_mut(entry).push(Op::Ret(Some(v)));
/// program.add_function(f);
///
/// let mut interp = Interpreter::new(&program);
/// let (ret, _stats) = interp.run()?;
/// assert_eq!(ret.unwrap().as_i32(), 42);
/// # Ok::<(), dsp_ir::InterpError>(())
/// ```
pub struct Interpreter<'p> {
    program: &'p Program,
    globals: Vec<Vec<Word>>,
    frames: Vec<Frame>,
    stats: ExecStats,
    fuel: u64,
}

/// Default operation budget per run.
const DEFAULT_FUEL: u64 = 500_000_000;

impl<'p> Interpreter<'p> {
    /// Create an interpreter with globals initialized from the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        let globals = program
            .globals
            .iter()
            .map(|g| {
                let mut mem = vec![Word::ZERO; g.size as usize];
                for (i, w) in g.init.iter().enumerate().take(g.size as usize) {
                    mem[i] = *w;
                }
                mem
            })
            .collect();
        Interpreter {
            program,
            globals,
            frames: Vec::new(),
            stats: ExecStats::default(),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replace the default operation budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Run `main` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on missing `main`, out-of-bounds access,
    /// or fuel exhaustion.
    pub fn run(&mut self) -> Result<(Option<Word>, ExecStats), InterpError> {
        let main = self.program.main.ok_or(InterpError::NoMain)?;
        let ret = self.call(main, &[])?;
        Ok((ret, std::mem::take(&mut self.stats)))
    }

    /// Final contents of a global after (or during) execution.
    #[must_use]
    pub fn global_mem(&self, id: GlobalId) -> &[Word] {
        &self.globals[id.index()]
    }

    /// Final contents of a global located by name.
    #[must_use]
    pub fn global_mem_by_name(&self, name: &str) -> Option<&[Word]> {
        let id = self.program.global_by_name(name)?;
        Some(self.global_mem(id))
    }

    fn resolve_arr(&self, frame: usize, base: MemBase) -> Option<ArrPlace> {
        match base {
            MemBase::Global(g) => Some(ArrPlace::Global(g)),
            MemBase::Local(l) => Some(ArrPlace::FrameLocal(frame, l)),
            MemBase::Param(i) => self.frames[frame].arr_params[i],
        }
    }

    fn call(
        &mut self,
        func: FuncId,
        args: &[(Option<Word>, Option<ArrPlace>)],
    ) -> Result<Option<Word>, InterpError> {
        let f = self.program.func(func);
        let frame_idx = self.frames.len();
        let mut frame = Frame {
            func,
            vregs: vec![Word::ZERO; f.vregs.len()],
            locals: f
                .locals
                .iter()
                .map(|l| vec![Word::ZERO; l.size as usize])
                .collect(),
            arr_params: vec![None; f.params.len()],
        };
        // Bind parameters: scalar params occupy the first vregs in
        // declaration order (the front-end lowers them that way).
        let mut scalar_vreg = 0u32;
        for (i, (p, a)) in f.params.iter().zip(args).enumerate() {
            match p.kind {
                ParamKind::Value(_) => {
                    frame.vregs[scalar_vreg as usize] = a.0.expect("validated call passes scalar");
                    scalar_vreg += 1;
                }
                ParamKind::Array(_) => {
                    frame.arr_params[i] = a.1;
                }
            }
        }
        self.frames.push(frame);
        let result = self.exec_function(func, frame_idx);
        self.frames.pop();
        result
    }

    fn exec_function(&mut self, func: FuncId, frame: usize) -> Result<Option<Word>, InterpError> {
        let f = self.program.func(func);
        let mut block = f.entry;
        loop {
            *self.stats.block_counts.entry((func, block)).or_insert(0) += 1;
            match self.exec_block(f, func, frame, block)? {
                Flow::Goto(b) => block = b,
                Flow::Return(v) => return Ok(v),
            }
        }
    }

    fn exec_block(
        &mut self,
        f: &Function,
        func: FuncId,
        frame: usize,
        block: BlockId,
    ) -> Result<Flow, InterpError> {
        // Iterate by index so `self` stays borrowable for calls.
        let nops = f.block(block).ops.len();
        for i in 0..nops {
            if self.stats.ops_executed >= self.fuel {
                return Err(InterpError::FuelExhausted);
            }
            self.stats.ops_executed += 1;
            let op = f.block(block).ops[i].clone();
            match op {
                Op::MovI { dst, src } => {
                    let v = self.ioperand(frame, src);
                    self.set(frame, dst, Word::from_i32(v));
                }
                Op::MovF { dst, src } => {
                    let v = self.foperand(frame, src);
                    self.set(frame, dst, Word::from_f32(v));
                }
                Op::IBin {
                    kind,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = self.get(frame, lhs).as_i32();
                    let b = self.ioperand(frame, rhs);
                    self.set(frame, dst, Word::from_i32(eval_ibin(kind, a, b)));
                }
                Op::ICmp {
                    kind,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = self.get(frame, lhs).as_i32();
                    let b = self.ioperand(frame, rhs);
                    self.set(frame, dst, Word::from_i32(i32::from(eval_icmp(kind, a, b))));
                }
                Op::INeg { dst, src } => {
                    let v = self.get(frame, src).as_i32();
                    self.set(frame, dst, Word::from_i32(v.wrapping_neg()));
                }
                Op::INot { dst, src } => {
                    let v = self.get(frame, src).as_i32();
                    self.set(frame, dst, Word::from_i32(!v));
                }
                Op::FBin {
                    kind,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = self.get(frame, lhs).as_f32();
                    let b = self.get(frame, rhs).as_f32();
                    self.set(frame, dst, Word::from_f32(eval_fbin(kind, a, b)));
                }
                Op::FCmp {
                    kind,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = self.get(frame, lhs).as_f32();
                    let b = self.get(frame, rhs).as_f32();
                    self.set(frame, dst, Word::from_i32(i32::from(eval_fcmp(kind, a, b))));
                }
                Op::FNeg { dst, src } => {
                    let v = self.get(frame, src).as_f32();
                    self.set(frame, dst, Word::from_f32(-v));
                }
                Op::FMac { acc, a, b } => {
                    // Product and sum are rounded separately, exactly as
                    // the simulator's MAC does.
                    let v = self.get(frame, acc).as_f32()
                        + self.get(frame, a).as_f32() * self.get(frame, b).as_f32();
                    self.set(frame, acc, Word::from_f32(v));
                }
                Op::ItoF { dst, src } => {
                    let v = self.get(frame, src).as_i32();
                    self.set(frame, dst, Word::from_f32(v as f32));
                }
                Op::FtoI { dst, src } => {
                    let v = self.get(frame, src).as_f32();
                    self.set(frame, dst, Word::from_i32(v as i32));
                }
                Op::Load { dst, addr } => {
                    self.stats.loads += 1;
                    let w = self.load(frame, &addr)?;
                    self.set(frame, dst, w);
                }
                Op::Store { src, addr } => {
                    self.stats.stores += 1;
                    let w = self.get(frame, src);
                    self.store(frame, &addr, w)?;
                }
                Op::Call { dst, callee, args } => {
                    self.stats.calls += 1;
                    let lowered: Vec<(Option<Word>, Option<ArrPlace>)> = args
                        .iter()
                        .map(|a| match a {
                            Arg::Value(v) => (Some(self.get(frame, *v)), None),
                            Arg::Array(b) => (None, self.resolve_arr(frame, *b)),
                        })
                        .collect();
                    let ret = self.call(callee, &lowered)?;
                    if let (Some(d), Some(r)) = (dst, ret) {
                        self.set(frame, d, r);
                    }
                }
                Op::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let taken = self.get(frame, cond).is_truthy();
                    return Ok(Flow::Goto(if taken { then_bb } else { else_bb }));
                }
                Op::Jmp(b) => return Ok(Flow::Goto(b)),
                Op::Ret(v) => {
                    let w = v.map(|v| self.get(frame, v));
                    return Ok(Flow::Return(w));
                }
            }
        }
        unreachable!("validated blocks end in a terminator; fn {func} block {block}")
    }

    fn get(&self, frame: usize, v: VReg) -> Word {
        self.frames[frame].vregs[v.index()]
    }

    fn set(&mut self, frame: usize, v: VReg, w: Word) {
        self.frames[frame].vregs[v.index()] = w;
    }

    fn ioperand(&self, frame: usize, o: IOperand) -> i32 {
        match o {
            IOperand::Reg(r) => self.get(frame, r).as_i32(),
            IOperand::Imm(v) => v,
        }
    }

    fn foperand(&self, frame: usize, o: FOperand) -> f32 {
        match o {
            FOperand::Reg(r) => self.get(frame, r).as_f32(),
            FOperand::Imm(v) => v,
        }
    }

    fn effective(&self, frame: usize, r: &MemRef) -> (ArrPlace, i64) {
        let place = self
            .resolve_arr(frame, r.base)
            .expect("array parameter bound at call");
        let idx = r
            .index
            .map_or(0, |v| i64::from(self.get(frame, v).as_i32()));
        (place, idx + i64::from(r.offset))
    }

    fn place_info(&self, place: ArrPlace) -> (String, u32) {
        match place {
            ArrPlace::Global(g) => {
                let g = &self.program.globals[g.index()];
                (g.name.clone(), g.size)
            }
            ArrPlace::FrameLocal(fr, l) => {
                let f = self.program.func(self.frames[fr].func);
                let l = &f.locals[l.index()];
                (l.name.clone(), l.size)
            }
        }
    }

    fn load(&mut self, frame: usize, r: &MemRef) -> Result<Word, InterpError> {
        let (place, idx) = self.effective(frame, r);
        let (name, size) = self.place_info(place);
        if idx < 0 || idx >= i64::from(size) {
            return Err(InterpError::OutOfBounds {
                name,
                index: idx,
                size,
            });
        }
        Ok(match place {
            ArrPlace::Global(g) => self.globals[g.index()][idx as usize],
            ArrPlace::FrameLocal(fr, l) => self.frames[fr].locals[l.index()][idx as usize],
        })
    }

    fn store(&mut self, frame: usize, r: &MemRef, w: Word) -> Result<(), InterpError> {
        let (place, idx) = self.effective(frame, r);
        let (name, size) = self.place_info(place);
        if idx < 0 || idx >= i64::from(size) {
            return Err(InterpError::OutOfBounds {
                name,
                index: idx,
                size,
            });
        }
        match place {
            ArrPlace::Global(g) => self.globals[g.index()][idx as usize] = w,
            ArrPlace::FrameLocal(fr, l) => self.frames[fr].locals[l.index()][idx as usize] = w,
        }
        Ok(())
    }
}

enum Flow {
    Goto(BlockId),
    Return(Option<Word>),
}

/// Evaluate an integer binary operation with the machine's semantics:
/// wrapping arithmetic, shift counts masked to 5 bits, and division or
/// remainder by zero yielding 0.
#[must_use]
pub fn eval_ibin(kind: IntBinKind, a: i32, b: i32) -> i32 {
    match kind {
        IntBinKind::Add => a.wrapping_add(b),
        IntBinKind::Sub => a.wrapping_sub(b),
        IntBinKind::Mul => a.wrapping_mul(b),
        IntBinKind::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntBinKind::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        IntBinKind::And => a & b,
        IntBinKind::Or => a | b,
        IntBinKind::Xor => a ^ b,
        IntBinKind::Shl => a.wrapping_shl(b as u32 & 31),
        IntBinKind::Shr => a.wrapping_shr(b as u32 & 31),
    }
}

/// Evaluate an integer comparison.
#[must_use]
pub fn eval_icmp(kind: CmpKind, a: i32, b: i32) -> bool {
    match kind {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
    }
}

/// Evaluate a floating-point binary operation (IEEE-754 single).
#[must_use]
pub fn eval_fbin(kind: FpBinKind, a: f32, b: f32) -> f32 {
    match kind {
        FpBinKind::Add => a + b,
        FpBinKind::Sub => a - b,
        FpBinKind::Mul => a * b,
        FpBinKind::Div => a / b,
    }
}

/// Evaluate a floating-point comparison (ordered; NaN compares false
/// except under `Ne`).
#[must_use]
pub fn eval_fcmp(kind: CmpKind, a: f32, b: f32) -> bool {
    match kind {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Global, Param};
    use crate::Type;

    /// Build: global A[4] initialized, main sums it into global s.
    fn sum_program() -> Program {
        let mut p = Program::new();
        let a = p.add_global(Global {
            name: "A".into(),
            ty: Type::Int,
            size: 4,
            init: (1..=4).map(Word::from_i32).collect(),
        });
        let s = p.add_global(Global {
            name: "s".into(),
            ty: Type::Int,
            size: 1,
            init: vec![],
        });
        let mut f = Function::new("main");
        let i = f.new_vreg(Type::Int);
        let n = f.new_vreg(Type::Int);
        let acc = f.new_vreg(Type::Int);
        let elt = f.new_vreg(Type::Int);
        let cond = f.new_vreg(Type::Int);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: i,
            src: IOperand::Imm(0),
        });
        f.block_mut(entry).push(Op::MovI {
            dst: n,
            src: IOperand::Imm(4),
        });
        f.block_mut(entry).push(Op::MovI {
            dst: acc,
            src: IOperand::Imm(0),
        });
        f.block_mut(entry).push(Op::Jmp(header));
        f.block_mut(header).push(Op::ICmp {
            kind: CmpKind::Lt,
            dst: cond,
            lhs: i,
            rhs: IOperand::Reg(n),
        });
        f.block_mut(header).push(Op::Br {
            cond,
            then_bb: body,
            else_bb: exit,
        });
        f.block_mut(body).push(Op::Load {
            dst: elt,
            addr: MemRef::indexed(MemBase::Global(a), i, 0),
        });
        f.block_mut(body).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: acc,
            lhs: acc,
            rhs: IOperand::Reg(elt),
        });
        f.block_mut(body).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: i,
            lhs: i,
            rhs: IOperand::Imm(1),
        });
        f.block_mut(body).push(Op::Jmp(header));
        f.block_mut(exit).push(Op::Store {
            src: acc,
            addr: MemRef::direct(MemBase::Global(s), 0),
        });
        f.block_mut(exit).push(Op::Ret(None));
        p.add_function(f);
        p
    }

    #[test]
    fn sums_array() {
        let p = sum_program();
        p.validate().expect("valid program");
        let mut interp = Interpreter::new(&p);
        let (_ret, stats) = interp.run().expect("runs");
        assert_eq!(interp.global_mem_by_name("s").unwrap()[0].as_i32(), 10);
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 1);
        // header entered 5 times (4 iterations + exit check)
        assert_eq!(stats.block_count(FuncId(0), BlockId(1)), 5);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut p = sum_program();
        // Make the loop run to 5, off the end of A[4].
        if let Op::MovI { src, .. } = &mut p.funcs[0].blocks[0].ops[1] {
            *src = IOperand::Imm(5);
        }
        let mut interp = Interpreter::new(&p);
        match interp.run() {
            Err(InterpError::OutOfBounds { name, index, size }) => {
                assert_eq!(name, "A");
                assert_eq!(index, 4);
                assert_eq!(size, 4);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn fuel_guard_stops_infinite_loop() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let entry = f.entry;
        f.block_mut(entry).push(Op::Jmp(BlockId(0)));
        p.add_function(f);
        let mut interp = Interpreter::new(&p);
        interp.set_fuel(1000);
        assert_eq!(interp.run().unwrap_err(), InterpError::FuelExhausted);
    }

    #[test]
    fn array_params_bind_through_calls() {
        // fn first(arr A) -> int { return A[0]; }
        // main: calls first(G) where G[0] = 7.
        let mut p = Program::new();
        let g = p.add_global(Global {
            name: "G".into(),
            ty: Type::Int,
            size: 2,
            init: vec![Word::from_i32(7)],
        });
        let mut first = Function::new("first");
        first.ret = Some(Type::Int);
        first.params.push(Param {
            name: "A".into(),
            kind: ParamKind::Array(Type::Int),
        });
        let v = first.new_vreg(Type::Int);
        let entry = first.entry;
        first.block_mut(entry).push(Op::Load {
            dst: v,
            addr: MemRef::direct(MemBase::Param(0), 0),
        });
        first.block_mut(entry).push(Op::Ret(Some(v)));
        let first_id = p.add_function(first);

        let mut main = Function::new("main");
        main.ret = Some(Type::Int);
        let r = main.new_vreg(Type::Int);
        let entry = main.entry;
        main.block_mut(entry).push(Op::Call {
            dst: Some(r),
            callee: first_id,
            args: vec![Arg::Array(MemBase::Global(g))],
        });
        main.block_mut(entry).push(Op::Ret(Some(r)));
        p.add_function(main);

        p.validate().expect("valid");
        let mut interp = Interpreter::new(&p);
        let (ret, stats) = interp.run().expect("runs");
        assert_eq!(ret.unwrap().as_i32(), 7);
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn machine_semantics_div_by_zero_and_shifts() {
        assert_eq!(eval_ibin(IntBinKind::Div, 5, 0), 0);
        assert_eq!(eval_ibin(IntBinKind::Rem, 5, 0), 0);
        assert_eq!(eval_ibin(IntBinKind::Div, i32::MIN, -1), i32::MIN); // wrapping
        assert_eq!(eval_ibin(IntBinKind::Shl, 1, 33), 2); // masked count
        assert_eq!(eval_ibin(IntBinKind::Shr, -8, 1), -4); // arithmetic
    }

    #[test]
    fn fcmp_nan_behaviour() {
        assert!(!eval_fcmp(CmpKind::Eq, f32::NAN, f32::NAN));
        assert!(eval_fcmp(CmpKind::Ne, f32::NAN, 0.0));
        assert!(!eval_fcmp(CmpKind::Lt, f32::NAN, 0.0));
    }
}
