//! Typed index newtypes for IR entities.

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_newtype!(
    /// A virtual register. The owning [`crate::Function`] records its type.
    VReg,
    "%"
);
id_newtype!(
    /// A basic block within a function.
    BlockId,
    "bb"
);
id_newtype!(
    /// A function within a [`crate::Program`].
    FuncId,
    "fn"
);
id_newtype!(
    /// A global variable or array within a [`crate::Program`].
    GlobalId,
    "g"
);
id_newtype!(
    /// A stack-allocated local array within a function.
    LocalId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(VReg(7).to_string(), "%7");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(FuncId(0).to_string(), "fn0");
        assert_eq!(GlobalId(1).to_string(), "g1");
        assert_eq!(LocalId(3).to_string(), "l3");
        assert_eq!(VReg(9).index(), 9);
    }
}
