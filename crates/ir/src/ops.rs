//! The IR operation set: unpacked machine operations over virtual
//! registers.
//!
//! Operations map one-to-one onto the functional-unit classes of the
//! target ([`dsp_machine::UnitClass`]): integer ops run on a DU, float
//! ops on an FPU, loads/stores on an MU, and control transfers on the
//! PCU. Address arithmetic is implicit in [`MemRef`] and materialized
//! onto the AUs by the back-end.

use crate::ids::{BlockId, FuncId, GlobalId, LocalId, VReg};
use dsp_machine::{CmpKind, FpBinKind, IntBinKind, UnitClass};

/// An integer operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IOperand {
    /// Register operand.
    Reg(VReg),
    /// Immediate operand.
    Imm(i32),
}

impl IOperand {
    /// The register, if this operand is one.
    #[must_use]
    pub fn reg(self) -> Option<VReg> {
        match self {
            IOperand::Reg(r) => Some(r),
            IOperand::Imm(_) => None,
        }
    }
}

impl std::fmt::Display for IOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IOperand::Reg(r) => write!(f, "{r}"),
            IOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A floating-point operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FOperand {
    /// Register operand.
    Reg(VReg),
    /// Immediate operand.
    Imm(f32),
}

impl FOperand {
    /// The register, if this operand is one.
    #[must_use]
    pub fn reg(self) -> Option<VReg> {
        match self {
            FOperand::Reg(r) => Some(r),
            FOperand::Imm(_) => None,
        }
    }
}

impl std::fmt::Display for FOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FOperand::Reg(r) => write!(f, "{r}"),
            FOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// The memory object a load or store touches.
///
/// Because DSP-C has no raw pointers, every memory operation statically
/// names its object — the exact alias information the data allocation
/// pass needs. An array *parameter* ([`MemBase::Param`]) may be bound to
/// different arrays at different call sites; the allocator handles this
/// by unifying the parameter with every actual argument into one alias
/// class (a conservative allocation, as the paper anticipates in §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// A program-level global scalar or array.
    Global(GlobalId),
    /// A stack-allocated local array of the enclosing function.
    Local(LocalId),
    /// The array bound to the `index`-th parameter of the enclosing
    /// function.
    Param(usize),
}

impl std::fmt::Display for MemBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemBase::Global(g) => write!(f, "{g}"),
            MemBase::Local(l) => write!(f, "{l}"),
            MemBase::Param(p) => write!(f, "p{p}"),
        }
    }
}

/// An effective address: `base[index + offset]` in word units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The object accessed.
    pub base: MemBase,
    /// Optional dynamic index register.
    pub index: Option<VReg>,
    /// Constant word displacement.
    pub offset: i32,
}

impl MemRef {
    /// A direct reference to element `offset` of `base`.
    #[must_use]
    pub fn direct(base: MemBase, offset: i32) -> MemRef {
        MemRef {
            base,
            index: None,
            offset,
        }
    }

    /// An indexed reference `base[index + offset]`.
    #[must_use]
    pub fn indexed(base: MemBase, index: VReg, offset: i32) -> MemRef {
        MemRef {
            base,
            index: Some(index),
            offset,
        }
    }
}

impl std::fmt::Display for MemRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.index, self.offset) {
            (None, o) => write!(f, "{}[{o}]", self.base),
            (Some(i), 0) => write!(f, "{}[{i}]", self.base),
            (Some(i), o) => write!(f, "{}[{i}{o:+}]", self.base),
        }
    }
}

/// An argument passed at a call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// A scalar value.
    Value(VReg),
    /// An array passed by reference.
    Array(MemBase),
}

impl std::fmt::Display for Arg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arg::Value(v) => write!(f, "{v}"),
            Arg::Array(b) => write!(f, "&{b}"),
        }
    }
}

/// One unpacked machine operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Integer move (register or immediate source).
    MovI {
        /// Destination.
        dst: VReg,
        /// Source operand.
        src: IOperand,
    },
    /// Floating-point move (register or immediate source).
    MovF {
        /// Destination.
        dst: VReg,
        /// Source operand.
        src: FOperand,
    },
    /// Integer binary operation `dst = lhs <kind> rhs`.
    IBin {
        /// Operation kind.
        kind: IntBinKind,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: IOperand,
    },
    /// Integer comparison producing 0/1.
    ICmp {
        /// Predicate.
        kind: CmpKind,
        /// Destination (integer).
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: IOperand,
    },
    /// Integer negation.
    INeg {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Bitwise complement.
    INot {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Floating-point binary operation.
    FBin {
        /// Operation kind.
        kind: FpBinKind,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Fused multiply-accumulate `acc = acc + a * b` (the signature DSP
    /// operation; single cycle on the target's FPUs). `acc` is both
    /// read and written.
    FMac {
        /// Accumulator (read and written).
        acc: VReg,
        /// First factor.
        a: VReg,
        /// Second factor.
        b: VReg,
    },
    /// Floating-point comparison producing 0/1 in an integer register.
    FCmp {
        /// Predicate.
        kind: CmpKind,
        /// Destination (integer).
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Floating-point negation.
    FNeg {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Convert integer to float.
    ItoF {
        /// Destination (float).
        dst: VReg,
        /// Source (integer).
        src: VReg,
    },
    /// Convert float to integer (truncating).
    FtoI {
        /// Destination (integer).
        dst: VReg,
        /// Source (float).
        src: VReg,
    },
    /// Load a word from memory.
    Load {
        /// Destination register.
        dst: VReg,
        /// Address.
        addr: MemRef,
    },
    /// Store a word to memory.
    Store {
        /// Source register.
        src: VReg,
        /// Address.
        addr: MemRef,
    },
    /// Call a function.
    Call {
        /// Destination for the return value, if any.
        dst: Option<VReg>,
        /// Callee.
        callee: FuncId,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// Conditional branch: to `then_bb` if `cond` is non-zero, else to
    /// `else_bb`. Terminator.
    Br {
        /// Condition register.
        cond: VReg,
        /// Target when non-zero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Unconditional jump. Terminator.
    Jmp(BlockId),
    /// Return, optionally with a value. Terminator.
    Ret(Option<VReg>),
}

impl Op {
    /// True if this operation ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::Jmp(_) | Op::Ret(_))
    }

    /// True for loads and stores.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// The memory reference of a load/store.
    #[must_use]
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match self {
            Op::Load { addr, .. } | Op::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// Mutable access to the memory reference of a load/store.
    pub fn mem_ref_mut(&mut self) -> Option<&mut MemRef> {
        match self {
            Op::Load { addr, .. } | Op::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The virtual register this operation defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<VReg> {
        match self {
            Op::MovI { dst, .. }
            | Op::MovF { dst, .. }
            | Op::IBin { dst, .. }
            | Op::ICmp { dst, .. }
            | Op::INeg { dst, .. }
            | Op::INot { dst, .. }
            | Op::FBin { dst, .. }
            | Op::FCmp { dst, .. }
            | Op::FNeg { dst, .. }
            | Op::ItoF { dst, .. }
            | Op::FtoI { dst, .. }
            | Op::Load { dst, .. } => Some(*dst),
            Op::FMac { acc, .. } => Some(*acc),
            Op::Call { dst, .. } => *dst,
            Op::Store { .. } | Op::Br { .. } | Op::Jmp(_) | Op::Ret(_) => None,
        }
    }

    /// The virtual registers this operation reads.
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        match self {
            Op::MovI { src, .. } => out.extend(src.reg()),
            Op::MovF { src, .. } => out.extend(src.reg()),
            Op::IBin { lhs, rhs, .. } | Op::ICmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.extend(rhs.reg());
            }
            Op::INeg { src, .. }
            | Op::INot { src, .. }
            | Op::FNeg { src, .. }
            | Op::ItoF { src, .. }
            | Op::FtoI { src, .. } => out.push(*src),
            Op::FBin { lhs, rhs, .. } | Op::FCmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Op::FMac { acc, a, b } => {
                out.push(*acc);
                out.push(*a);
                out.push(*b);
            }
            Op::Load { addr, .. } => out.extend(addr.index),
            Op::Store { src, addr } => {
                out.push(*src);
                out.extend(addr.index);
            }
            Op::Call { args, .. } => {
                for a in args {
                    if let Arg::Value(v) = a {
                        out.push(*v);
                    }
                }
            }
            Op::Br { cond, .. } => out.push(*cond),
            Op::Jmp(_) => {}
            Op::Ret(v) => out.extend(*v),
        }
        out
    }

    /// Rewrite every register this operation *reads* through `f`.
    /// Definitions are left untouched.
    pub fn map_uses(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        let map_i = |o: &mut IOperand, f: &mut dyn FnMut(VReg) -> VReg| {
            if let IOperand::Reg(r) = o {
                *r = f(*r);
            }
        };
        let map_f = |o: &mut FOperand, f: &mut dyn FnMut(VReg) -> VReg| {
            if let FOperand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Op::MovI { src, .. } => map_i(src, &mut f),
            Op::MovF { src, .. } => map_f(src, &mut f),
            Op::IBin { lhs, rhs, .. } | Op::ICmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                map_i(rhs, &mut f);
            }
            Op::INeg { src, .. }
            | Op::INot { src, .. }
            | Op::FNeg { src, .. }
            | Op::ItoF { src, .. }
            | Op::FtoI { src, .. } => *src = f(*src),
            Op::FBin { lhs, rhs, .. } | Op::FCmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            // The accumulator of a MAC is read *and* written; renaming
            // only the read would tear the register in half, so it is
            // left alone like other definitions.
            Op::FMac { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::Load { addr, .. } => {
                if let Some(i) = &mut addr.index {
                    *i = f(*i);
                }
            }
            Op::Store { src, addr } => {
                *src = f(*src);
                if let Some(i) = &mut addr.index {
                    *i = f(*i);
                }
            }
            Op::Call { args, .. } => {
                for a in args {
                    if let Arg::Value(v) = a {
                        *v = f(*v);
                    }
                }
            }
            Op::Br { cond, .. } => *cond = f(*cond),
            Op::Jmp(_) => {}
            Op::Ret(v) => {
                if let Some(v) = v {
                    *v = f(*v);
                }
            }
        }
    }

    /// The functional-unit class this operation executes on, or `None`
    /// for calls (which expand to a PCU transfer plus argument moves in
    /// the back-end).
    #[must_use]
    pub fn unit_class(&self) -> Option<UnitClass> {
        match self {
            Op::MovI { .. }
            | Op::IBin { .. }
            | Op::ICmp { .. }
            | Op::INeg { .. }
            | Op::INot { .. } => Some(UnitClass::Int),
            Op::MovF { .. }
            | Op::FBin { .. }
            | Op::FMac { .. }
            | Op::FCmp { .. }
            | Op::FNeg { .. }
            | Op::ItoF { .. }
            | Op::FtoI { .. } => Some(UnitClass::Fp),
            Op::Load { .. } | Op::Store { .. } => Some(UnitClass::Mem),
            Op::Br { .. } | Op::Jmp(_) | Op::Ret(_) => Some(UnitClass::Pcu),
            Op::Call { .. } => None,
        }
    }

    /// Successor blocks of a terminator (empty for non-terminators and
    /// returns).
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Op::Jmp(b) => vec![*b],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let op = Op::IBin {
            kind: IntBinKind::Add,
            dst: VReg(2),
            lhs: VReg(0),
            rhs: IOperand::Reg(VReg(1)),
        };
        assert_eq!(op.def(), Some(VReg(2)));
        assert_eq!(op.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn store_has_no_def() {
        let op = Op::Store {
            src: VReg(3),
            addr: MemRef::indexed(MemBase::Global(GlobalId(0)), VReg(4), 0),
        };
        assert_eq!(op.def(), None);
        assert_eq!(op.uses(), vec![VReg(3), VReg(4)]);
        assert!(op.is_mem());
        assert_eq!(op.unit_class(), Some(UnitClass::Mem));
    }

    #[test]
    fn terminators_and_successors() {
        let br = Op::Br {
            cond: VReg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Op::Ret(None).is_terminator());
        assert!(Op::Ret(None).successors().is_empty());
        assert!(!Op::MovI {
            dst: VReg(0),
            src: IOperand::Imm(1)
        }
        .is_terminator());
    }

    #[test]
    fn map_uses_rewrites_reads_only() {
        let mut op = Op::IBin {
            kind: IntBinKind::Add,
            dst: VReg(2),
            lhs: VReg(0),
            rhs: IOperand::Reg(VReg(2)),
        };
        op.map_uses(|v| VReg(v.0 + 10));
        assert_eq!(op.def(), Some(VReg(2)));
        assert_eq!(op.uses(), vec![VReg(10), VReg(12)]);
    }

    #[test]
    fn call_uses_scalar_args() {
        let op = Op::Call {
            dst: Some(VReg(9)),
            callee: FuncId(1),
            args: vec![Arg::Value(VReg(4)), Arg::Array(MemBase::Local(LocalId(0)))],
        };
        assert_eq!(op.def(), Some(VReg(9)));
        assert_eq!(op.uses(), vec![VReg(4)]);
        assert_eq!(op.unit_class(), None);
    }

    #[test]
    fn memref_display() {
        let r = MemRef::indexed(MemBase::Global(GlobalId(2)), VReg(1), -3);
        assert_eq!(r.to_string(), "g2[%1-3]");
        let d = MemRef::direct(MemBase::Param(0), 5);
        assert_eq!(d.to_string(), "p0[5]");
    }
}
