//! Control-flow graph, dominator tree, and natural-loop analysis.
//!
//! The loop analysis supplies the paper's default interference-edge
//! weight: "the loop nesting depth of the memory operations used to
//! access the data" (§3.1).

use crate::func::Function;
use crate::ids::BlockId;

/// Control-flow graph of one function: successor and predecessor lists
/// plus a reverse postorder.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_pos: Vec<usize>,
    entry: BlockId,
}

impl Cfg {
    /// Build the CFG of `f`.
    #[must_use]
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in f.iter_blocks() {
            if let Some(term) = block.terminator() {
                for s in term.successors() {
                    succs[id.index()].push(s);
                    preds[s.index()].push(id);
                }
            }
        }
        // Depth-first postorder, then reverse.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit state: (block, next successor index).
        let mut stack = vec![(f.entry, 0usize)];
        visited[f.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_pos,
            entry: f.entry,
        }
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// True if `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Compute immediate dominators (Cooper–Harvey–Kennedy iterative
    /// algorithm). `idom[entry] == entry`; unreachable blocks map to
    /// `None`.
    #[must_use]
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.succs.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &self.rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    fn intersect(&self, idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId) -> BlockId {
        while a != b {
            while self.rpo_pos[a.index()] > self.rpo_pos[b.index()] {
                a = idom[a.index()].expect("reachable block has idom");
            }
            while self.rpo_pos[b.index()] > self.rpo_pos[a.index()] {
                b = idom[b.index()].expect("reachable block has idom");
            }
        }
        a
    }

    /// True if `a` dominates `b` (reflexive), given the idom array.
    #[must_use]
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// One natural loop: a header plus every block that can reach a back
/// edge without leaving through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Blocks of the loop body, including the header.
    pub blocks: Vec<BlockId>,
    /// Back-edge sources.
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// True if `b` belongs to the loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Natural-loop information: the nesting depth of every block.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop nesting depth of each block; 0 means "not in any loop".
    pub depth: Vec<u32>,
    /// Header block of each detected natural loop.
    pub headers: Vec<BlockId>,
    /// The loops themselves (one per distinct header, back edges
    /// merged), in discovery order.
    pub loops: Vec<NaturalLoop>,
}

impl LoopInfo {
    /// Detect natural loops (back edges `t -> h` where `h` dominates `t`)
    /// and compute per-block nesting depth.
    ///
    /// Each back edge contributes one loop body (header plus all blocks
    /// that reach the tail without passing through the header); a block's
    /// depth is the number of distinct loop headers whose body contains
    /// it.
    #[must_use]
    pub fn compute(f: &Function) -> LoopInfo {
        let cfg = Cfg::build(f);
        let idom = cfg.immediate_dominators();
        let n = f.blocks.len();
        let mut depth = vec![0u32; n];
        let mut headers = Vec::new();
        // Map header -> (set of body blocks, latches), unioned across
        // back edges.
        let mut bodies: Vec<(BlockId, Vec<bool>, Vec<BlockId>)> = Vec::new();
        for &b in &cfg.rpo {
            for &s in &cfg.succs[b.index()] {
                if cfg.is_reachable(s) && cfg.dominates(&idom, s, b) {
                    // Back edge b -> s with header s.
                    let entry = match bodies.iter_mut().find(|(h, _, _)| *h == s) {
                        Some(e) => e,
                        None => {
                            headers.push(s);
                            bodies.push((s, vec![false; n], Vec::new()));
                            bodies.last_mut().expect("just pushed")
                        }
                    };
                    entry.2.push(b);
                    let body = &mut entry.1;
                    // Collect body: reverse flood-fill from the tail.
                    body[s.index()] = true;
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body[x.index()] {
                            continue;
                        }
                        body[x.index()] = true;
                        for &p in &cfg.preds[x.index()] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
        let mut loops = Vec::new();
        for (header, body, latches) in &bodies {
            let mut blocks = Vec::new();
            for (i, inside) in body.iter().enumerate() {
                if *inside {
                    depth[i] += 1;
                    blocks.push(BlockId(i as u32));
                }
            }
            loops.push(NaturalLoop {
                header: *header,
                blocks,
                latches: latches.clone(),
            });
        }
        LoopInfo {
            depth,
            headers,
            loops,
        }
    }

    /// The nesting depth of block `b`.
    #[must_use]
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Function;
    use crate::ops::{IOperand, Op};
    use crate::Type;

    /// entry -> header; header -> (body, exit); body -> header.
    fn single_loop() -> Function {
        let mut f = Function::new("f");
        let cond = f.new_vreg(Type::Int);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: cond,
            src: IOperand::Imm(1),
        });
        f.block_mut(entry).push(Op::Jmp(header));
        f.block_mut(header).push(Op::Br {
            cond,
            then_bb: body,
            else_bb: exit,
        });
        f.block_mut(body).push(Op::Jmp(header));
        f.block_mut(exit).push(Op::Ret(None));
        f
    }

    /// Adds an inner loop nested in the body of `single_loop`.
    fn nested_loops() -> Function {
        let mut f = Function::new("f");
        let cond = f.new_vreg(Type::Int);
        let h1 = f.new_block();
        let h2 = f.new_block();
        let b2 = f.new_block();
        let latch1 = f.new_block();
        let exit = f.new_block();
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: cond,
            src: IOperand::Imm(1),
        });
        f.block_mut(entry).push(Op::Jmp(h1));
        f.block_mut(h1).push(Op::Br {
            cond,
            then_bb: h2,
            else_bb: exit,
        });
        f.block_mut(h2).push(Op::Br {
            cond,
            then_bb: b2,
            else_bb: latch1,
        });
        f.block_mut(b2).push(Op::Jmp(h2));
        f.block_mut(latch1).push(Op::Jmp(h1));
        f.block_mut(exit).push(Op::Ret(None));
        f
    }

    #[test]
    fn cfg_edges() {
        let f = single_loop();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[f.entry.index()], vec![BlockId(1)]);
        assert_eq!(cfg.succs[1], vec![BlockId(2), BlockId(3)]);
        assert_eq!(cfg.preds[1].len(), 2); // entry and body
        assert_eq!(cfg.rpo[0], f.entry);
    }

    #[test]
    fn dominators_of_diamond() {
        // entry -> (a, b) -> join
        let mut f = Function::new("f");
        let cond = f.new_vreg(Type::Int);
        let a = f.new_block();
        let b = f.new_block();
        let join = f.new_block();
        let entry = f.entry;
        f.block_mut(entry).push(Op::MovI {
            dst: cond,
            src: IOperand::Imm(0),
        });
        f.block_mut(entry).push(Op::Br {
            cond,
            then_bb: a,
            else_bb: b,
        });
        f.block_mut(a).push(Op::Jmp(join));
        f.block_mut(b).push(Op::Jmp(join));
        f.block_mut(join).push(Op::Ret(None));

        let cfg = Cfg::build(&f);
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[join.index()], Some(entry));
        assert_eq!(idom[a.index()], Some(entry));
        assert!(cfg.dominates(&idom, entry, join));
        assert!(!cfg.dominates(&idom, a, join));
    }

    #[test]
    fn loop_depths_single() {
        let f = single_loop();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.depth_of(f.entry), 0);
        assert_eq!(li.depth_of(BlockId(1)), 1); // header
        assert_eq!(li.depth_of(BlockId(2)), 1); // body
        assert_eq!(li.depth_of(BlockId(3)), 0); // exit
        assert_eq!(li.headers.len(), 1);
    }

    #[test]
    fn loop_depths_nested() {
        let f = nested_loops();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.depth_of(BlockId(1)), 1); // h1
        assert_eq!(li.depth_of(BlockId(2)), 2); // h2
        assert_eq!(li.depth_of(BlockId(3)), 2); // b2
        assert_eq!(li.depth_of(BlockId(4)), 1); // latch1
        assert_eq!(li.depth_of(BlockId(5)), 0); // exit
        assert_eq!(li.headers.len(), 2);
    }

    #[test]
    fn unreachable_block_handled() {
        let mut f = single_loop();
        let dead = f.new_block();
        f.block_mut(dead).push(Op::Ret(None));
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(dead));
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[dead.index()], None);
        // Loop analysis must not panic on unreachable blocks.
        let li = LoopInfo::compute(&f);
        assert_eq!(li.depth_of(dead), 0);
    }
}
