//! Binary encoding of VLIW instructions.
//!
//! DSPs keep code small with "tightly-encoded instructions that specify
//! the parallel execution of multiple independent operations" (paper
//! §1.1). This module defines such an encoding for the model machine:
//!
//! * each instruction starts with one 32-bit **header** word holding a
//!   9-bit slot-occupancy mask and a 9-bit extension mask;
//! * each occupied slot contributes one 32-bit **operation** word
//!   (5-bit opcode + packed fields), followed by one optional 32-bit
//!   **extension** word when a field (a large immediate, address, or a
//!   float constant) does not fit inline.
//!
//! Empty slots cost nothing, so straight-line scalar code stays
//! compact while wide loop kernels pay only for the slots they fill.
//! [`VliwProgram::encoded_words`](crate::VliwProgram) measures whole
//! programs, giving a concrete alternative to the paper's
//! "instructions are the same size as data" assumption in the
//! first-order cost model.

use crate::insts::{
    AddrOp, CmpKind, FpBinKind, FpOp, InstAddr, IntBinKind, IntOp, IntOperand, MemAddr, MemOp,
    PcuOp, VliwInst,
};
use crate::regs::{AReg, FReg, IReg, Reg, RegClass};
use crate::Bank;

/// A decoding failure (corrupt or truncated stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Word offset where decoding failed.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at word {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Bit packing helpers
// ---------------------------------------------------------------------

/// Incremental writer of fields into a 32-bit operation word, plus an
/// optional extension word.
#[derive(Debug, Default)]
struct OpWord {
    bits: u32,
    used: u32,
    ext: Option<u32>,
}

impl OpWord {
    fn push(&mut self, value: u32, width: u32) {
        debug_assert!(width == 32 || value < (1 << width), "field overflow");
        debug_assert!(self.used + width <= 32, "op word overflow");
        self.bits |= value << self.used;
        self.used += width;
    }

    fn push_signed(&mut self, value: i32, width: u32) {
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        self.push((value as u32) & mask, width);
    }
}

/// Incremental reader of fields from an operation word.
#[derive(Debug)]
struct OpRead {
    bits: u32,
    used: u32,
    ext: Option<u32>,
}

impl OpRead {
    fn take(&mut self, width: u32) -> u32 {
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        let v = (self.bits >> self.used) & mask;
        self.used += width;
        v
    }

    fn take_signed(&mut self, width: u32) -> i32 {
        let raw = self.take(width);
        // Sign-extend.
        let shift = 32 - width;
        ((raw << shift) as i32) >> shift
    }
}

/// Signed value fits in `width` bits?
fn fits_signed(v: i64, width: u32) -> bool {
    let lo = -(1i64 << (width - 1));
    let hi = (1i64 << (width - 1)) - 1;
    (lo..=hi).contains(&v)
}

/// Unsigned value fits in `width` bits?
fn fits_unsigned(v: u32, width: u32) -> bool {
    width >= 32 || u64::from(v) < (1u64 << width)
}

// ---------------------------------------------------------------------
// Field encodings
// ---------------------------------------------------------------------

const OP_INT_BIN: u32 = 0;
const OP_INT_CMP: u32 = 1;
const OP_INT_MOVI: u32 = 2;
const OP_INT_MOV: u32 = 3;
const OP_INT_NEG: u32 = 4;
const OP_INT_NOT: u32 = 5;
const OP_FP_BIN: u32 = 6;
const OP_FP_MAC: u32 = 7;
const OP_FP_CMP: u32 = 8;
const OP_FP_MOVI: u32 = 9;
const OP_FP_MOV: u32 = 10;
const OP_FP_NEG: u32 = 11;
const OP_FP_ITOF: u32 = 12;
const OP_FP_FTOI: u32 = 13;
const OP_ADDR_LEA: u32 = 14;
const OP_ADDR_ADDIDX: u32 = 15;
const OP_ADDR_ADDIMM: u32 = 16;
const OP_ADDR_MOV: u32 = 17;
const OP_ADDR_TOINT: u32 = 18;
const OP_ADDR_FROMINT: u32 = 19;
const OP_MEM_LOAD: u32 = 20;
const OP_MEM_STORE: u32 = 21;
const OP_PCU_JUMP: u32 = 22;
const OP_PCU_BNZ: u32 = 23;
const OP_PCU_BZ: u32 = 24;
const OP_PCU_CALL: u32 = 25;
const OP_PCU_RET: u32 = 26;
const OP_PCU_HALT: u32 = 27;

fn int_bin_code(k: IntBinKind) -> u32 {
    match k {
        IntBinKind::Add => 0,
        IntBinKind::Sub => 1,
        IntBinKind::Mul => 2,
        IntBinKind::Div => 3,
        IntBinKind::Rem => 4,
        IntBinKind::And => 5,
        IntBinKind::Or => 6,
        IntBinKind::Xor => 7,
        IntBinKind::Shl => 8,
        IntBinKind::Shr => 9,
    }
}

fn int_bin_kind(code: u32) -> Option<IntBinKind> {
    Some(match code {
        0 => IntBinKind::Add,
        1 => IntBinKind::Sub,
        2 => IntBinKind::Mul,
        3 => IntBinKind::Div,
        4 => IntBinKind::Rem,
        5 => IntBinKind::And,
        6 => IntBinKind::Or,
        7 => IntBinKind::Xor,
        8 => IntBinKind::Shl,
        9 => IntBinKind::Shr,
        _ => return None,
    })
}

fn cmp_code(k: CmpKind) -> u32 {
    match k {
        CmpKind::Eq => 0,
        CmpKind::Ne => 1,
        CmpKind::Lt => 2,
        CmpKind::Le => 3,
        CmpKind::Gt => 4,
        CmpKind::Ge => 5,
    }
}

fn cmp_kind(code: u32) -> Option<CmpKind> {
    Some(match code {
        0 => CmpKind::Eq,
        1 => CmpKind::Ne,
        2 => CmpKind::Lt,
        3 => CmpKind::Le,
        4 => CmpKind::Gt,
        5 => CmpKind::Ge,
        _ => return None,
    })
}

fn fp_bin_code(k: FpBinKind) -> u32 {
    match k {
        FpBinKind::Add => 0,
        FpBinKind::Sub => 1,
        FpBinKind::Mul => 2,
        FpBinKind::Div => 3,
    }
}

fn fp_bin_kind(code: u32) -> FpBinKind {
    match code & 3 {
        0 => FpBinKind::Add,
        1 => FpBinKind::Sub,
        2 => FpBinKind::Mul,
        _ => FpBinKind::Div,
    }
}

fn reg_code(r: Reg) -> u32 {
    let class = match r.class() {
        RegClass::Addr => 0,
        RegClass::Int => 1,
        RegClass::Float => 2,
    };
    class << 5 | r.index() as u32
}

fn reg_from(code: u32) -> Option<Reg> {
    let idx = (code & 31) as u8;
    Some(match code >> 5 {
        0 => Reg::Addr(AReg(idx)),
        1 => Reg::Int(IReg(idx)),
        2 => Reg::Float(FReg(idx)),
        _ => return None,
    })
}

/// Encode an immediate: returns `(mode_bit, inline_value)` and stashes
/// an extension word when it does not fit.
fn encode_imm_signed(w: &mut OpWord, v: i32, inline_width: u32) {
    if fits_signed(i64::from(v), inline_width) {
        w.push(0, 1);
        w.push_signed(v, inline_width);
    } else {
        w.push(1, 1);
        w.push(0, inline_width);
        w.ext = Some(v as u32);
    }
}

fn decode_imm_signed(r: &mut OpRead, inline_width: u32) -> i32 {
    let ext = r.take(1) == 1;
    let inline = r.take_signed(inline_width);
    if ext {
        r.ext.take().map_or(inline, |w| w as i32)
    } else {
        inline
    }
}

fn encode_imm_unsigned(w: &mut OpWord, v: u32, inline_width: u32) {
    if fits_unsigned(v, inline_width) {
        w.push(0, 1);
        w.push(v, inline_width);
    } else {
        w.push(1, 1);
        w.push(0, inline_width);
        w.ext = Some(v);
    }
}

fn decode_imm_unsigned(r: &mut OpRead, inline_width: u32) -> u32 {
    let ext = r.take(1) == 1;
    let inline = r.take(inline_width);
    if ext {
        r.ext.take().unwrap_or(inline)
    } else {
        inline
    }
}

// ---------------------------------------------------------------------
// Per-op encoding
// ---------------------------------------------------------------------

fn encode_int(op: &IntOp) -> OpWord {
    let mut w = OpWord::default();
    match *op {
        IntOp::Bin {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            w.push(OP_INT_BIN, 5);
            w.push(int_bin_code(kind), 4);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(lhs.0), 5);
            match rhs {
                IntOperand::Reg(r) => {
                    w.push(0, 1);
                    w.push(u32::from(r.0), 5);
                }
                IntOperand::Imm(v) => {
                    w.push(1, 1);
                    encode_imm_signed(&mut w, v, 11);
                }
            }
        }
        IntOp::Cmp {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            w.push(OP_INT_CMP, 5);
            w.push(cmp_code(kind), 3);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(lhs.0), 5);
            match rhs {
                IntOperand::Reg(r) => {
                    w.push(0, 1);
                    w.push(u32::from(r.0), 5);
                }
                IntOperand::Imm(v) => {
                    w.push(1, 1);
                    encode_imm_signed(&mut w, v, 12);
                }
            }
        }
        IntOp::MovImm { dst, imm } => {
            w.push(OP_INT_MOVI, 5);
            w.push(u32::from(dst.0), 5);
            encode_imm_signed(&mut w, imm, 21);
        }
        IntOp::Mov { dst, src } => {
            w.push(OP_INT_MOV, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        IntOp::Neg { dst, src } => {
            w.push(OP_INT_NEG, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        IntOp::Not { dst, src } => {
            w.push(OP_INT_NOT, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
    }
    w
}

fn decode_int(r: &mut OpRead, opcode: u32) -> Option<IntOp> {
    Some(match opcode {
        OP_INT_BIN => {
            let kind = int_bin_kind(r.take(4))?;
            let dst = IReg(r.take(5) as u8);
            let lhs = IReg(r.take(5) as u8);
            let rhs = if r.take(1) == 0 {
                IntOperand::Reg(IReg(r.take(5) as u8))
            } else {
                IntOperand::Imm(decode_imm_signed(r, 11))
            };
            IntOp::Bin {
                kind,
                dst,
                lhs,
                rhs,
            }
        }
        OP_INT_CMP => {
            let kind = cmp_kind(r.take(3))?;
            let dst = IReg(r.take(5) as u8);
            let lhs = IReg(r.take(5) as u8);
            let rhs = if r.take(1) == 0 {
                IntOperand::Reg(IReg(r.take(5) as u8))
            } else {
                IntOperand::Imm(decode_imm_signed(r, 12))
            };
            IntOp::Cmp {
                kind,
                dst,
                lhs,
                rhs,
            }
        }
        OP_INT_MOVI => {
            let dst = IReg(r.take(5) as u8);
            let imm = decode_imm_signed(r, 21);
            IntOp::MovImm { dst, imm }
        }
        OP_INT_MOV => IntOp::Mov {
            dst: IReg(r.take(5) as u8),
            src: IReg(r.take(5) as u8),
        },
        OP_INT_NEG => IntOp::Neg {
            dst: IReg(r.take(5) as u8),
            src: IReg(r.take(5) as u8),
        },
        OP_INT_NOT => IntOp::Not {
            dst: IReg(r.take(5) as u8),
            src: IReg(r.take(5) as u8),
        },
        _ => return None,
    })
}

fn encode_fp(op: &FpOp) -> OpWord {
    let mut w = OpWord::default();
    match *op {
        FpOp::Bin {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            w.push(OP_FP_BIN, 5);
            w.push(fp_bin_code(kind), 2);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(lhs.0), 5);
            w.push(u32::from(rhs.0), 5);
        }
        FpOp::Mac { dst, a, b } => {
            w.push(OP_FP_MAC, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(a.0), 5);
            w.push(u32::from(b.0), 5);
        }
        FpOp::Cmp {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            w.push(OP_FP_CMP, 5);
            w.push(cmp_code(kind), 3);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(lhs.0), 5);
            w.push(u32::from(rhs.0), 5);
        }
        FpOp::MovImm { dst, imm } => {
            w.push(OP_FP_MOVI, 5);
            w.push(u32::from(dst.0), 5);
            // Floats always travel in the extension word.
            w.ext = Some(imm.to_bits());
        }
        FpOp::Mov { dst, src } => {
            w.push(OP_FP_MOV, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        FpOp::Neg { dst, src } => {
            w.push(OP_FP_NEG, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        FpOp::CvtItoF { dst, src } => {
            w.push(OP_FP_ITOF, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        FpOp::CvtFtoI { dst, src } => {
            w.push(OP_FP_FTOI, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
    }
    w
}

fn decode_fp(r: &mut OpRead, opcode: u32) -> Option<FpOp> {
    Some(match opcode {
        OP_FP_BIN => FpOp::Bin {
            kind: fp_bin_kind(r.take(2)),
            dst: FReg(r.take(5) as u8),
            lhs: FReg(r.take(5) as u8),
            rhs: FReg(r.take(5) as u8),
        },
        OP_FP_MAC => FpOp::Mac {
            dst: FReg(r.take(5) as u8),
            a: FReg(r.take(5) as u8),
            b: FReg(r.take(5) as u8),
        },
        OP_FP_CMP => FpOp::Cmp {
            kind: cmp_kind(r.take(3))?,
            dst: IReg(r.take(5) as u8),
            lhs: FReg(r.take(5) as u8),
            rhs: FReg(r.take(5) as u8),
        },
        OP_FP_MOVI => FpOp::MovImm {
            dst: FReg(r.take(5) as u8),
            imm: f32::from_bits(r.ext.take()?),
        },
        OP_FP_MOV => FpOp::Mov {
            dst: FReg(r.take(5) as u8),
            src: FReg(r.take(5) as u8),
        },
        OP_FP_NEG => FpOp::Neg {
            dst: FReg(r.take(5) as u8),
            src: FReg(r.take(5) as u8),
        },
        OP_FP_ITOF => FpOp::CvtItoF {
            dst: FReg(r.take(5) as u8),
            src: IReg(r.take(5) as u8),
        },
        OP_FP_FTOI => FpOp::CvtFtoI {
            dst: IReg(r.take(5) as u8),
            src: FReg(r.take(5) as u8),
        },
        _ => return None,
    })
}

fn encode_addr(op: &AddrOp) -> OpWord {
    let mut w = OpWord::default();
    match *op {
        AddrOp::Lea { dst, addr } => {
            w.push(OP_ADDR_LEA, 5);
            w.push(u32::from(dst.0), 5);
            encode_imm_unsigned(&mut w, addr, 21);
        }
        AddrOp::AddIndex { dst, base, index } => {
            w.push(OP_ADDR_ADDIDX, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(base.0), 5);
            w.push(u32::from(index.0), 5);
        }
        AddrOp::AddImm { dst, base, imm } => {
            w.push(OP_ADDR_ADDIMM, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(base.0), 5);
            encode_imm_signed(&mut w, imm, 16);
        }
        AddrOp::Mov { dst, src } => {
            w.push(OP_ADDR_MOV, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        AddrOp::ToInt { dst, src } => {
            w.push(OP_ADDR_TOINT, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
        AddrOp::FromInt { dst, src } => {
            w.push(OP_ADDR_FROMINT, 5);
            w.push(u32::from(dst.0), 5);
            w.push(u32::from(src.0), 5);
        }
    }
    w
}

fn decode_addr(r: &mut OpRead, opcode: u32) -> Option<AddrOp> {
    Some(match opcode {
        OP_ADDR_LEA => AddrOp::Lea {
            dst: AReg(r.take(5) as u8),
            addr: decode_imm_unsigned(r, 21),
        },
        OP_ADDR_ADDIDX => AddrOp::AddIndex {
            dst: AReg(r.take(5) as u8),
            base: AReg(r.take(5) as u8),
            index: IReg(r.take(5) as u8),
        },
        OP_ADDR_ADDIMM => AddrOp::AddImm {
            dst: AReg(r.take(5) as u8),
            base: AReg(r.take(5) as u8),
            imm: decode_imm_signed(r, 16),
        },
        OP_ADDR_MOV => AddrOp::Mov {
            dst: AReg(r.take(5) as u8),
            src: AReg(r.take(5) as u8),
        },
        OP_ADDR_TOINT => AddrOp::ToInt {
            dst: IReg(r.take(5) as u8),
            src: AReg(r.take(5) as u8),
        },
        OP_ADDR_FROMINT => AddrOp::FromInt {
            dst: AReg(r.take(5) as u8),
            src: IReg(r.take(5) as u8),
        },
        _ => return None,
    })
}

fn encode_mem(op: &MemOp) -> OpWord {
    let mut w = OpWord::default();
    let (code, reg, addr, bank) = match *op {
        MemOp::Load { dst, addr, bank } => (OP_MEM_LOAD, dst, addr, bank),
        MemOp::Store { src, addr, bank } => (OP_MEM_STORE, src, addr, bank),
    };
    w.push(code, 5);
    w.push(reg_code(reg), 7);
    w.push(u32::from(bank == Bank::Y), 1);
    match addr {
        MemAddr::Absolute(a) => {
            w.push(0, 2);
            encode_imm_unsigned(&mut w, a, 16);
        }
        MemAddr::Base { base, offset } => {
            w.push(1, 2);
            w.push(u32::from(base.0), 5);
            encode_imm_signed(&mut w, offset, 11);
        }
        MemAddr::AbsIndex { addr, index } => {
            w.push(2, 2);
            w.push(u32::from(index.0), 5);
            encode_imm_signed(&mut w, addr, 11);
        }
        MemAddr::BaseIndex {
            base,
            index,
            offset,
        } => {
            w.push(3, 2);
            w.push(u32::from(base.0), 5);
            w.push(u32::from(index.0), 5);
            encode_imm_signed(&mut w, offset, 6);
        }
    }
    w
}

fn decode_mem(r: &mut OpRead, opcode: u32) -> Option<MemOp> {
    let reg = reg_from(r.take(7))?;
    let bank = if r.take(1) == 1 { Bank::Y } else { Bank::X };
    let addr = match r.take(2) {
        0 => MemAddr::Absolute(decode_imm_unsigned(r, 16)),
        1 => MemAddr::Base {
            base: AReg(r.take(5) as u8),
            offset: decode_imm_signed(r, 11),
        },
        2 => {
            let index = IReg(r.take(5) as u8);
            MemAddr::AbsIndex {
                addr: decode_imm_signed(r, 11),
                index,
            }
        }
        _ => MemAddr::BaseIndex {
            base: AReg(r.take(5) as u8),
            index: IReg(r.take(5) as u8),
            offset: decode_imm_signed(r, 6),
        },
    };
    Some(match opcode {
        OP_MEM_LOAD => MemOp::Load {
            dst: reg,
            addr,
            bank,
        },
        OP_MEM_STORE => MemOp::Store {
            src: reg,
            addr,
            bank,
        },
        _ => return None,
    })
}

fn encode_pcu(op: &PcuOp) -> OpWord {
    let mut w = OpWord::default();
    match *op {
        PcuOp::Jump(t) => {
            w.push(OP_PCU_JUMP, 5);
            encode_imm_unsigned(&mut w, t.0, 22);
        }
        PcuOp::BranchNz { cond, target } => {
            w.push(OP_PCU_BNZ, 5);
            w.push(u32::from(cond.0), 5);
            encode_imm_unsigned(&mut w, target.0, 17);
        }
        PcuOp::BranchZ { cond, target } => {
            w.push(OP_PCU_BZ, 5);
            w.push(u32::from(cond.0), 5);
            encode_imm_unsigned(&mut w, target.0, 17);
        }
        PcuOp::Call(t) => {
            w.push(OP_PCU_CALL, 5);
            encode_imm_unsigned(&mut w, t.0, 22);
        }
        PcuOp::Ret => w.push(OP_PCU_RET, 5),
        PcuOp::Halt => w.push(OP_PCU_HALT, 5),
    }
    w
}

fn decode_pcu(r: &mut OpRead, opcode: u32) -> Option<PcuOp> {
    Some(match opcode {
        OP_PCU_JUMP => PcuOp::Jump(InstAddr(decode_imm_unsigned(r, 22))),
        OP_PCU_BNZ => PcuOp::BranchNz {
            cond: IReg(r.take(5) as u8),
            target: InstAddr(decode_imm_unsigned(r, 17)),
        },
        OP_PCU_BZ => PcuOp::BranchZ {
            cond: IReg(r.take(5) as u8),
            target: InstAddr(decode_imm_unsigned(r, 17)),
        },
        OP_PCU_CALL => PcuOp::Call(InstAddr(decode_imm_unsigned(r, 22))),
        OP_PCU_RET => PcuOp::Ret,
        OP_PCU_HALT => PcuOp::Halt,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Instruction-level encoding
// ---------------------------------------------------------------------

/// Encode one instruction, appending its words to `out`. Returns the
/// number of words written (1 header + occupied slots + extensions).
pub fn encode_inst(inst: &VliwInst, out: &mut Vec<u32>) -> usize {
    let slots: [Option<OpWord>; 9] = [
        inst.pcu.as_ref().map(encode_pcu),
        inst.mu0.as_ref().map(encode_mem),
        inst.mu1.as_ref().map(encode_mem),
        inst.au0.as_ref().map(encode_addr),
        inst.au1.as_ref().map(encode_addr),
        inst.du0.as_ref().map(encode_int),
        inst.du1.as_ref().map(encode_int),
        inst.fpu0.as_ref().map(encode_fp),
        inst.fpu1.as_ref().map(encode_fp),
    ];
    let mut slot_mask = 0u32;
    let mut ext_mask = 0u32;
    for (i, s) in slots.iter().enumerate() {
        if let Some(w) = s {
            slot_mask |= 1 << i;
            if w.ext.is_some() {
                ext_mask |= 1 << i;
            }
        }
    }
    let header = slot_mask | (ext_mask << 9);
    let start = out.len();
    out.push(header);
    for s in slots.iter().flatten() {
        out.push(s.bits);
        if let Some(e) = s.ext {
            out.push(e);
        }
    }
    out.len() - start
}

/// Decode one instruction starting at `words[at]`. Returns the
/// instruction and the number of words consumed.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or invalid opcodes.
pub fn decode_inst(words: &[u32], at: usize) -> Result<(VliwInst, usize), DecodeError> {
    let header = *words.get(at).ok_or(DecodeError {
        at,
        msg: "missing header".into(),
    })?;
    let slot_mask = header & 0x1FF;
    let ext_mask = (header >> 9) & 0x1FF;
    let mut cursor = at + 1;
    let mut inst = VliwInst::new();
    for slot in 0..9u32 {
        if slot_mask & (1 << slot) == 0 {
            continue;
        }
        let bits = *words.get(cursor).ok_or(DecodeError {
            at: cursor,
            msg: "truncated operation word".into(),
        })?;
        cursor += 1;
        let ext = if ext_mask & (1 << slot) != 0 {
            let e = *words.get(cursor).ok_or(DecodeError {
                at: cursor,
                msg: "truncated extension word".into(),
            })?;
            cursor += 1;
            Some(e)
        } else {
            None
        };
        let mut r = OpRead { bits, used: 0, ext };
        let opcode = r.take(5);
        let bad = |what: &str| DecodeError {
            at: cursor - 1,
            msg: format!("invalid {what} opcode {opcode} in slot {slot}"),
        };
        match slot {
            0 => inst.pcu = Some(decode_pcu(&mut r, opcode).ok_or_else(|| bad("pcu"))?),
            1 => inst.mu0 = Some(decode_mem(&mut r, opcode).ok_or_else(|| bad("mem"))?),
            2 => inst.mu1 = Some(decode_mem(&mut r, opcode).ok_or_else(|| bad("mem"))?),
            3 => inst.au0 = Some(decode_addr(&mut r, opcode).ok_or_else(|| bad("addr"))?),
            4 => inst.au1 = Some(decode_addr(&mut r, opcode).ok_or_else(|| bad("addr"))?),
            5 => inst.du0 = Some(decode_int(&mut r, opcode).ok_or_else(|| bad("int"))?),
            6 => inst.du1 = Some(decode_int(&mut r, opcode).ok_or_else(|| bad("int"))?),
            7 => inst.fpu0 = Some(decode_fp(&mut r, opcode).ok_or_else(|| bad("fp"))?),
            8 => inst.fpu1 = Some(decode_fp(&mut r, opcode).ok_or_else(|| bad("fp"))?),
            _ => unreachable!("slot range"),
        }
    }
    Ok((inst, cursor - at))
}

/// Encode a whole instruction stream.
#[must_use]
pub fn encode_stream(insts: &[VliwInst]) -> Vec<u32> {
    let mut out = Vec::with_capacity(insts.len() * 3);
    for inst in insts {
        encode_inst(inst, &mut out);
    }
    out
}

/// Decode a whole instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError`] on the first malformed instruction.
pub fn decode_stream(words: &[u32]) -> Result<Vec<VliwInst>, DecodeError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < words.len() {
        let (inst, used) = decode_inst(words, at)?;
        out.push(inst);
        at += used;
    }
    Ok(out)
}

impl crate::program::VliwProgram {
    /// Size of the program's code in 32-bit words under the tight
    /// binary encoding — an alternative to the cost model's
    /// "one word per instruction" assumption.
    #[must_use]
    pub fn encoded_words(&self) -> u64 {
        encode_stream(&self.insts).len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insts::VliwInst;

    fn round_trip(inst: &VliwInst) {
        let mut words = Vec::new();
        let n = encode_inst(inst, &mut words);
        assert_eq!(n, words.len());
        let (decoded, used) = decode_inst(&words, 0).expect("decodes");
        assert_eq!(used, n);
        assert_eq!(&decoded, inst, "round trip failed: {words:08x?}");
    }

    #[test]
    fn empty_instruction_is_one_word() {
        let inst = VliwInst::new();
        let mut words = Vec::new();
        assert_eq!(encode_inst(&inst, &mut words), 1);
        round_trip(&inst);
    }

    #[test]
    fn full_instruction_round_trips() {
        let mut inst = VliwInst::new();
        inst.pcu = Some(PcuOp::BranchNz {
            cond: IReg(7),
            target: InstAddr(12345),
        });
        inst.mu0 = Some(MemOp::Load {
            dst: Reg::Float(FReg(30)),
            addr: MemAddr::AbsIndex {
                addr: -3,
                index: IReg(9),
            },
            bank: Bank::X,
        });
        inst.mu1 = Some(MemOp::Store {
            src: Reg::Int(IReg(1)),
            addr: MemAddr::BaseIndex {
                base: AReg(31),
                index: IReg(2),
                offset: -17,
            },
            bank: Bank::Y,
        });
        inst.au0 = Some(AddrOp::Lea {
            dst: AReg(31),
            addr: 4_000_000_000,
        });
        inst.au1 = Some(AddrOp::AddImm {
            dst: AReg(30),
            base: AReg(30),
            imm: -40_000,
        });
        inst.du0 = Some(IntOp::Bin {
            kind: IntBinKind::Shr,
            dst: IReg(31),
            lhs: IReg(0),
            rhs: IntOperand::Imm(-1024),
        });
        inst.du1 = Some(IntOp::MovImm {
            dst: IReg(15),
            imm: i32::MIN,
        });
        inst.fpu0 = Some(FpOp::Mac {
            dst: FReg(9),
            a: FReg(10),
            b: FReg(11),
        });
        inst.fpu1 = Some(FpOp::MovImm {
            dst: FReg(0),
            imm: -0.0,
        });
        round_trip(&inst);
    }

    #[test]
    fn immediates_at_inline_boundaries() {
        for imm in [
            0,
            1,
            -1,
            1023,
            1024,
            -1024,
            -1025,
            (1 << 20) - 1,
            1 << 20,
            i32::MAX,
            i32::MIN,
        ] {
            let mut inst = VliwInst::new();
            inst.du0 = Some(IntOp::MovImm { dst: IReg(3), imm });
            inst.du1 = Some(IntOp::Bin {
                kind: IntBinKind::Add,
                dst: IReg(4),
                lhs: IReg(5),
                rhs: IntOperand::Imm(imm),
            });
            round_trip(&inst);
        }
    }

    #[test]
    fn float_bit_patterns_survive() {
        for bits in [0u32, 0x8000_0000, 0x7FC0_0001, 0xFF80_0000, 0x3F80_0000] {
            let mut inst = VliwInst::new();
            inst.fpu0 = Some(FpOp::MovImm {
                dst: FReg(1),
                imm: f32::from_bits(bits),
            });
            let mut words = Vec::new();
            encode_inst(&inst, &mut words);
            let (decoded, _) = decode_inst(&words, 0).unwrap();
            let Some(FpOp::MovImm { imm, .. }) = decoded.fpu0 else {
                panic!("wrong decode");
            };
            assert_eq!(imm.to_bits(), bits);
        }
    }

    #[test]
    fn every_pcu_form_round_trips() {
        for op in [
            PcuOp::Jump(InstAddr(0)),
            PcuOp::Jump(InstAddr(u32::MAX)),
            PcuOp::BranchZ {
                cond: IReg(31),
                target: InstAddr(1 << 20),
            },
            PcuOp::Call(InstAddr(77)),
            PcuOp::Ret,
            PcuOp::Halt,
        ] {
            let mut inst = VliwInst::new();
            inst.pcu = Some(op);
            round_trip(&inst);
        }
    }

    #[test]
    fn stream_round_trips_and_is_compact() {
        let mut a = VliwInst::new();
        a.du0 = Some(IntOp::MovImm {
            dst: IReg(1),
            imm: 5,
        });
        let mut b = VliwInst::new();
        b.pcu = Some(PcuOp::Halt);
        b.mu0 = Some(MemOp::Load {
            dst: Reg::Int(IReg(2)),
            addr: MemAddr::Absolute(10),
            bank: Bank::X,
        });
        let insts = vec![a, b, VliwInst::new()];
        let words = encode_stream(&insts);
        // 1+1, 1+2, 1 words.
        assert_eq!(words.len(), 6);
        assert_eq!(decode_stream(&words).unwrap(), insts);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut inst = VliwInst::new();
        inst.du0 = Some(IntOp::MovImm {
            dst: IReg(1),
            imm: 5,
        });
        let mut words = Vec::new();
        encode_inst(&inst, &mut words);
        words.pop();
        assert!(decode_stream(&words).is_err());
    }
}
