//! The linked VLIW program: code, initial data images, and symbols.
//!
//! A [`VliwProgram`] is the unit handed from the compiler back-end to the
//! instruction-set simulator. It contains the flat instruction stream
//! (branch targets already resolved to absolute [`InstAddr`]s), the
//! initial contents and layout of both data banks, and a symbol table so
//! tests and harnesses can locate variables after execution.

use crate::insts::{InstAddr, MemOp, VliwInst};
use crate::word::Word;
use crate::Bank;

/// A named code location, kept for disassembly and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Label {
    /// Human-readable name (function or block).
    pub name: String,
    /// Absolute instruction address.
    pub addr: InstAddr,
}

/// Code-range metadata for one compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VliwFunction {
    /// Source-level function name.
    pub name: String,
    /// Address of the first instruction.
    pub start: InstAddr,
    /// Number of instructions.
    pub len: u32,
}

/// A statically allocated datum (scalar or array) in the data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSymbol {
    /// Source-level name.
    pub name: String,
    /// Word address of the first element.
    pub addr: u32,
    /// Size in words (1 for scalars).
    pub size: u32,
    /// The bank holding the primary copy.
    pub home: Bank,
    /// True if a coherent secondary copy lives at the *same address* in the
    /// other bank (partial/full data duplication, paper §3.2).
    pub duplicated: bool,
}

impl DataSymbol {
    /// Banks that hold a copy of this symbol.
    #[must_use]
    pub fn banks(&self) -> Vec<Bank> {
        if self.duplicated {
            vec![self.home, self.home.other()]
        } else {
            vec![self.home]
        }
    }

    /// Words of storage this symbol occupies across both banks.
    #[must_use]
    pub fn storage_words(&self) -> u32 {
        if self.duplicated {
            self.size * 2
        } else {
            self.size
        }
    }
}

/// Initial contents of one data bank.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataImage {
    /// Initial words, starting at address 0. Addresses beyond the image
    /// start as zero.
    pub init: Vec<Word>,
}

impl DataImage {
    /// Ensure the image covers `addr`, zero-filling, then set the word.
    pub fn poke(&mut self, addr: u32, value: Word) {
        let idx = addr as usize;
        if self.init.len() <= idx {
            self.init.resize(idx + 1, Word::ZERO);
        }
        self.init[idx] = value;
    }
}

/// A fully linked program for the dual-bank VLIW DSP.
#[derive(Debug, Clone, PartialEq)]
pub struct VliwProgram {
    /// The instruction stream; one instruction per cycle.
    pub insts: Vec<VliwInst>,
    /// Address of the first instruction to execute.
    pub entry: InstAddr,
    /// Initial image of bank X.
    pub x_image: DataImage,
    /// Initial image of bank Y.
    pub y_image: DataImage,
    /// Static data words allocated in bank X (excludes stack).
    pub x_static_words: u32,
    /// Static data words allocated in bank Y (excludes stack).
    pub y_static_words: u32,
    /// First stack word in bank X (stacks grow upward from here).
    pub x_stack_base: u32,
    /// First stack word in bank Y.
    pub y_stack_base: u32,
    /// Stack budget per bank, in words (the paper's `S`; it is counted
    /// twice in the cost model because both banks carry a stack).
    pub stack_words: u32,
    /// Data symbols for result inspection.
    pub symbols: Vec<DataSymbol>,
    /// Function ranges, for disassembly and profiling reports.
    pub functions: Vec<VliwFunction>,
    /// Named code labels, for disassembly.
    pub labels: Vec<Label>,
}

impl VliwProgram {
    /// Number of VLIW instructions (the paper's `I` memory-cost term,
    /// assuming instructions are the same size as data words).
    #[must_use]
    pub fn inst_count(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Look up a data symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<&DataSymbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Total memory cost in words: `Cost = X + Y + 2·S + I`
    /// (paper §4.2 first-order cost model).
    #[must_use]
    pub fn memory_cost(&self) -> u64 {
        u64::from(self.x_static_words)
            + u64::from(self.y_static_words)
            + 2 * u64::from(self.stack_words)
            + u64::from(self.inst_count())
    }

    /// Check that every store to a *duplicated* symbol updates both
    /// copies in the same instruction — the interrupt-safety property
    /// of §3.2: an interrupt between the two copy updates could observe
    /// (or update) incoherent data.
    ///
    /// Returns the instruction addresses of stores whose twin is *not*
    /// in the same instruction. An empty vector means every duplicated
    /// store is atomic.
    #[must_use]
    pub fn dup_store_violations(&self) -> Vec<u32> {
        let dup_ranges: Vec<(u32, u32)> = self
            .symbols
            .iter()
            .filter(|s| s.duplicated)
            .map(|s| (s.addr, s.addr + s.size))
            .collect();
        let static_base = |addr: &crate::insts::MemAddr| -> Option<i64> {
            match addr {
                crate::insts::MemAddr::Absolute(a) => Some(i64::from(*a)),
                crate::insts::MemAddr::AbsIndex { addr, .. } => Some(i64::from(*addr)),
                _ => None,
            }
        };
        let targets_dup = |op: &MemOp| -> bool {
            if let MemOp::Store { addr, .. } = op {
                if let Some(base) = static_base(addr) {
                    return dup_ranges
                        .iter()
                        .any(|&(lo, hi)| base >= i64::from(lo) && base < i64::from(hi));
                }
            }
            false
        };
        let mut violations = Vec::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            for (mine, twin) in [(&inst.mu0, &inst.mu1), (&inst.mu1, &inst.mu0)] {
                let Some(op) = mine else { continue };
                if !targets_dup(op) {
                    continue;
                }
                let twinned = matches!(
                    (op, twin),
                    (
                        MemOp::Store { src: s0, addr: a0, .. },
                        Some(MemOp::Store { src: s1, addr: a1, .. }),
                    ) if s0 == s1 && a0 == a1
                );
                if !twinned {
                    violations.push(pc as u32);
                }
            }
        }
        violations.dedup();
        violations
    }

    /// Render a human-readable disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            for label in self.labels.iter().filter(|l| l.addr.0 == pc) {
                let _ = writeln!(out, "{}:", label.name);
            }
            let _ = writeln!(out, "  {pc:5}  {inst}");
        }
        out
    }

    /// Check structural invariants: bank discipline in every instruction
    /// (unless `dual_ported`), entry in range, and branch targets in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, dual_ported: bool) -> Result<(), String> {
        let n = self.insts.len() as u32;
        if self.entry.0 >= n {
            return Err(format!("entry {} out of range ({n} insts)", self.entry));
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            inst.check_bank_discipline(dual_ported)
                .map_err(|e| format!("inst {pc}: {e}"))?;
            if let Some(op) = &inst.pcu {
                use crate::insts::PcuOp;
                let target = match op {
                    PcuOp::Jump(t) | PcuOp::Call(t) => Some(*t),
                    PcuOp::BranchNz { target, .. } | PcuOp::BranchZ { target, .. } => Some(*target),
                    PcuOp::Ret | PcuOp::Halt => None,
                };
                if let Some(t) = target {
                    if t.0 >= n {
                        return Err(format!("inst {pc}: target {t} out of range ({n} insts)"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insts::{InstAddr, PcuOp};

    fn tiny_program() -> VliwProgram {
        let mut halt = VliwInst::new();
        halt.pcu = Some(PcuOp::Halt);
        VliwProgram {
            insts: vec![VliwInst::new(), halt],
            entry: InstAddr(0),
            x_image: DataImage::default(),
            y_image: DataImage::default(),
            x_static_words: 10,
            y_static_words: 6,
            x_stack_base: 100,
            y_stack_base: 100,
            stack_words: 32,
            symbols: vec![DataSymbol {
                name: "a".into(),
                addr: 0,
                size: 10,
                home: Bank::X,
                duplicated: false,
            }],
            functions: vec![VliwFunction {
                name: "main".into(),
                start: InstAddr(0),
                len: 2,
            }],
            labels: vec![Label {
                name: "main".into(),
                addr: InstAddr(0),
            }],
        }
    }

    #[test]
    fn cost_model_matches_paper_formula() {
        let p = tiny_program();
        // X + Y + 2S + I = 10 + 6 + 64 + 2
        assert_eq!(p.memory_cost(), 82);
    }

    #[test]
    fn symbol_lookup() {
        let p = tiny_program();
        assert_eq!(p.symbol("a").unwrap().size, 10);
        assert!(p.symbol("nope").is_none());
    }

    #[test]
    fn duplicated_symbol_occupies_both_banks() {
        let s = DataSymbol {
            name: "sig".into(),
            addr: 4,
            size: 16,
            home: Bank::Y,
            duplicated: true,
        };
        assert_eq!(s.banks(), vec![Bank::Y, Bank::X]);
        assert_eq!(s.storage_words(), 32);
    }

    #[test]
    fn validate_catches_bad_entry_and_targets() {
        let mut p = tiny_program();
        assert!(p.validate(false).is_ok());
        p.entry = InstAddr(99);
        assert!(p.validate(false).is_err());

        let mut p = tiny_program();
        p.insts[0].pcu = Some(PcuOp::Jump(InstAddr(42)));
        assert!(p.validate(false).is_err());
    }

    #[test]
    fn poke_extends_image() {
        let mut img = DataImage::default();
        img.poke(3, Word::from_i32(7));
        assert_eq!(img.init.len(), 4);
        assert_eq!(img.init[3].as_i32(), 7);
        assert_eq!(img.init[0], Word::ZERO);
    }

    #[test]
    fn disassembly_contains_labels_and_insts() {
        let p = tiny_program();
        let d = p.disassemble();
        assert!(d.contains("main:"));
        assert!(d.contains("halt"));
    }
}
