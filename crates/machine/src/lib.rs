#![warn(missing_docs)]
//! Target description for the dual-bank VLIW model DSP.
//!
//! This crate models the architecture of Figure 2 in Saghir, Chow & Lee,
//! *Exploiting Dual Data-Memory Banks in Digital Signal Processors*
//! (ASPLOS 1996): a Very Long Instruction Word processor with nine
//! functional units —
//!
//! * a program control unit ([`FuncUnit::Pcu`]),
//! * two memory-access units ([`FuncUnit::Mu0`] reaching the **X** data
//!   bank and [`FuncUnit::Mu1`] reaching the **Y** data bank),
//! * two address units ([`FuncUnit::Au0`], [`FuncUnit::Au1`]),
//! * two integer data units ([`FuncUnit::Du0`], [`FuncUnit::Du1`]), and
//! * two floating-point units ([`FuncUnit::Fpu0`], [`FuncUnit::Fpu1`]),
//!
//! plus three 32-entry register files (address, integer, floating point).
//! Every unit has a single-cycle latency, so one [`VliwInst`] retires per
//! cycle and performance is simply the number of instructions executed.
//!
//! The two data banks are **high-order interleaved**: a variable or array
//! lives entirely in one bank, and a load/store reaches bank X only through
//! MU0 and bank Y only through MU1. Packing two memory operations into one
//! instruction therefore requires their data to sit in *different* banks —
//! the problem the paper's compaction-based partitioning solves.
//!
//! # Example
//!
//! ```
//! use dsp_machine::{Bank, VliwInst, MemOp, MemAddr, IReg, AReg};
//!
//! // One VLIW instruction performing two parallel loads, one per bank.
//! let mut inst = VliwInst::new();
//! inst.mu0 = Some(MemOp::Load {
//!     dst: IReg(0).into(),
//!     addr: MemAddr::Base { base: AReg(0), offset: 0 },
//!     bank: Bank::X,
//! });
//! inst.mu1 = Some(MemOp::Load {
//!     dst: IReg(1).into(),
//!     addr: MemAddr::Base { base: AReg(1), offset: 0 },
//!     bank: Bank::Y,
//! });
//! assert_eq!(inst.op_count(), 2);
//! ```

pub mod encode;
pub mod insts;
pub mod program;
pub mod regs;
pub mod word;

pub use encode::{decode_inst, decode_stream, encode_inst, encode_stream, DecodeError};
pub use insts::{
    AddrOp, CmpKind, FpBinKind, FpOp, FuncUnit, InstAddr, IntBinKind, IntOp, IntOperand, MemAddr,
    MemOp, PcuOp, UnitClass, VliwInst, NUM_FUNC_UNITS,
};
pub use program::{DataImage, DataSymbol, Label, VliwFunction, VliwProgram};
pub use regs::{AReg, FReg, IReg, Reg, RegClass, NUM_REGS_PER_FILE};
pub use word::Word;

/// One of the two single-ported data-memory banks.
///
/// The banks are high-order interleaved: an entire variable or array is
/// allocated to exactly one bank. Bank X is reached through memory unit
/// MU0 and bank Y through MU1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bank {
    /// The X data-memory bank (accessed via MU0).
    X,
    /// The Y data-memory bank (accessed via MU1).
    Y,
}

impl Bank {
    /// The opposite bank.
    ///
    /// ```
    /// use dsp_machine::Bank;
    /// assert_eq!(Bank::X.other(), Bank::Y);
    /// assert_eq!(Bank::Y.other(), Bank::X);
    /// ```
    #[must_use]
    pub fn other(self) -> Bank {
        match self {
            Bank::X => Bank::Y,
            Bank::Y => Bank::X,
        }
    }

    /// The memory unit that reaches this bank.
    #[must_use]
    pub fn memory_unit(self) -> FuncUnit {
        match self {
            Bank::X => FuncUnit::Mu0,
            Bank::Y => FuncUnit::Mu1,
        }
    }

    /// All banks, in `X`, `Y` order.
    pub const ALL: [Bank; 2] = [Bank::X, Bank::Y];
}

impl std::fmt::Display for Bank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bank::X => write!(f, "X"),
            Bank::Y => write!(f, "Y"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_other_is_involutive() {
        for b in Bank::ALL {
            assert_eq!(b.other().other(), b);
        }
    }

    #[test]
    fn bank_maps_to_distinct_memory_units() {
        assert_ne!(Bank::X.memory_unit(), Bank::Y.memory_unit());
        assert_eq!(Bank::X.memory_unit(), FuncUnit::Mu0);
        assert_eq!(Bank::Y.memory_unit(), FuncUnit::Mu1);
    }

    #[test]
    fn bank_display() {
        assert_eq!(Bank::X.to_string(), "X");
        assert_eq!(Bank::Y.to_string(), "Y");
    }
}
