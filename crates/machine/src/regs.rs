//! Physical register files.
//!
//! The model architecture has three register files of 32 registers each
//! (Figure 2 of the paper): an address register file used by the address
//! units and memory units, an integer register file used by the data
//! units, and a floating-point register file used by the FPUs.
//!
//! Unlike the Motorola DSP56001 (where bank X data must flow through the
//! X0/X1 registers and bank Y data through Y0/Y1), this architecture
//! places **no restrictions** on which registers may hold data from which
//! bank. The paper relies on this orthogonality to decouple register
//! allocation from data partitioning (§2).

/// Number of registers in each of the three register files.
pub const NUM_REGS_PER_FILE: usize = 32;

macro_rules! reg_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u8);

        impl $name {
            /// The register's index within its file.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_newtype!(
    /// An address register (file of 32), read by the address units and used
    /// as base registers by the memory units.
    AReg,
    "a"
);
reg_newtype!(
    /// An integer register (file of 32), used by the integer data units and
    /// as the source/destination of integer loads and stores.
    IReg,
    "r"
);
reg_newtype!(
    /// A floating-point register (file of 32), used by the FPUs and as the
    /// source/destination of floating-point loads and stores.
    FReg,
    "f"
);

/// Conventional register assignments used by the compiler runtime model.
///
/// The two program stacks of the paper (§3.1, "we allocate two program
/// stacks, one for each memory bank, each with its own stack and frame
/// pointers") occupy the top four address registers.
impl AReg {
    /// Stack pointer for the stack residing in bank X.
    pub const SP_X: AReg = AReg(31);
    /// Stack pointer for the stack residing in bank Y.
    pub const SP_Y: AReg = AReg(30);
    /// First address register available for general allocation.
    pub const FIRST_ALLOCATABLE: AReg = AReg(0);
    /// Number of address registers the register allocator may use
    /// (everything below the reserved stack pointers).
    pub const NUM_ALLOCATABLE: usize = 30;
}

/// A register of any class, as stored to / loaded from memory.
///
/// Memory operations may move either integer or floating-point registers;
/// the bank does not care which file the datum comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// An address register.
    Addr(AReg),
    /// An integer register.
    Int(IReg),
    /// A floating-point register.
    Float(FReg),
}

impl Reg {
    /// The class of this register.
    #[must_use]
    pub fn class(self) -> RegClass {
        match self {
            Reg::Addr(_) => RegClass::Addr,
            Reg::Int(_) => RegClass::Int,
            Reg::Float(_) => RegClass::Float,
        }
    }

    /// The register's index within its file.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Reg::Addr(r) => r.index(),
            Reg::Int(r) => r.index(),
            Reg::Float(r) => r.index(),
        }
    }
}

impl From<AReg> for Reg {
    fn from(r: AReg) -> Reg {
        Reg::Addr(r)
    }
}

impl From<IReg> for Reg {
    fn from(r: IReg) -> Reg {
        Reg::Int(r)
    }
}

impl From<FReg> for Reg {
    fn from(r: FReg) -> Reg {
        Reg::Float(r)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::Addr(r) => write!(f, "{r}"),
            Reg::Int(r) => write!(f, "{r}"),
            Reg::Float(r) => write!(f, "{r}"),
        }
    }
}

/// One of the three register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// The address register file.
    Addr,
    /// The integer register file.
    Int,
    /// The floating-point register file.
    Float,
}

impl RegClass {
    /// All register classes.
    pub const ALL: [RegClass; 3] = [RegClass::Addr, RegClass::Int, RegClass::Float];
}

impl std::fmt::Display for RegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegClass::Addr => write!(f, "addr"),
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(AReg(3).to_string(), "a3");
        assert_eq!(IReg(0).to_string(), "r0");
        assert_eq!(FReg(31).to_string(), "f31");
        assert_eq!(Reg::from(IReg(5)).to_string(), "r5");
    }

    #[test]
    fn reg_class_round_trip() {
        assert_eq!(Reg::from(AReg(1)).class(), RegClass::Addr);
        assert_eq!(Reg::from(IReg(1)).class(), RegClass::Int);
        assert_eq!(Reg::from(FReg(1)).class(), RegClass::Float);
    }

    #[test]
    fn stack_pointers_are_reserved_above_allocatable_range() {
        assert!(AReg::SP_X.index() >= AReg::NUM_ALLOCATABLE);
        assert!(AReg::SP_Y.index() >= AReg::NUM_ALLOCATABLE);
        assert_ne!(AReg::SP_X, AReg::SP_Y);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(Reg::from(FReg(9)).index(), 9);
    }
}
