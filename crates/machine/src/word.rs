//! The 32-bit machine word.
//!
//! Data memory, registers and immediates all hold 32-bit words. A word has
//! no inherent type: integer operations view it as a two's-complement
//! `i32`, floating-point operations as an IEEE-754 `f32`. This mirrors the
//! model architecture of the paper, whose register files and buses are all
//! 32 bits wide.

/// A raw 32-bit machine word.
///
/// ```
/// use dsp_machine::Word;
///
/// let w = Word::from_i32(-7);
/// assert_eq!(w.as_i32(), -7);
///
/// let f = Word::from_f32(1.5);
/// assert_eq!(f.as_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(pub u32);

impl Word {
    /// The all-zero word.
    pub const ZERO: Word = Word(0);

    /// Construct a word from a signed integer.
    #[must_use]
    pub fn from_i32(v: i32) -> Word {
        Word(v as u32)
    }

    /// Construct a word from a float.
    #[must_use]
    pub fn from_f32(v: f32) -> Word {
        Word(v.to_bits())
    }

    /// View the word as a signed integer.
    #[must_use]
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// View the word as a float.
    #[must_use]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// True if the word is non-zero (the machine's branch condition).
    #[must_use]
    pub fn is_truthy(self) -> bool {
        self.0 != 0
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Word {
        Word::from_i32(v)
    }
}

impl From<f32> for Word {
    fn from(v: f32) -> Word {
        Word::from_f32(v)
    }
}

impl std::fmt::Display for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl std::fmt::LowerHex for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::UpperHex for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::UpperHex::fmt(&self.0, f)
    }
}

impl std::fmt::Binary for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

impl std::fmt::Octal for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 42, -42] {
            assert_eq!(Word::from_i32(v).as_i32(), v);
        }
    }

    #[test]
    fn float_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 3.5, -0.25, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(Word::from_f32(v).as_f32(), v);
        }
    }

    #[test]
    fn nan_bits_preserved() {
        let w = Word::from_f32(f32::NAN);
        assert!(w.as_f32().is_nan());
    }

    #[test]
    fn truthiness() {
        assert!(!Word::ZERO.is_truthy());
        assert!(Word::from_i32(1).is_truthy());
        assert!(Word::from_i32(-1).is_truthy());
        // Negative zero as float is bit pattern 0x8000_0000, which is truthy:
        // the machine branches on raw bits, as real integer pipelines do.
        assert!(Word::from_f32(-0.0).is_truthy());
    }

    #[test]
    fn display_formats() {
        let w = Word(0xDEAD_BEEF);
        assert_eq!(format!("{w}"), "0xdeadbeef");
        assert_eq!(format!("{w:x}"), "deadbeef");
        assert_eq!(format!("{w:X}"), "DEADBEEF");
    }
}
