//! Machine operations, functional units, and the VLIW instruction format.
//!
//! A [`VliwInst`] has one slot per functional unit; the compiler's
//! compaction pass fills as many slots as dependences and resource
//! constraints allow, and the processor retires one instruction per cycle.

use crate::regs::{AReg, FReg, IReg, Reg};
use crate::Bank;

/// Number of functional units in the model architecture.
pub const NUM_FUNC_UNITS: usize = 9;

/// One of the nine functional units (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuncUnit {
    /// Program control unit: branches, calls, returns, halt.
    Pcu,
    /// Memory unit 0: the only path to data bank X.
    Mu0,
    /// Memory unit 1: the only path to data bank Y.
    Mu1,
    /// Address unit 0.
    Au0,
    /// Address unit 1.
    Au1,
    /// Integer data unit 0.
    Du0,
    /// Integer data unit 1.
    Du1,
    /// Floating-point unit 0.
    Fpu0,
    /// Floating-point unit 1.
    Fpu1,
}

impl FuncUnit {
    /// All functional units.
    pub const ALL: [FuncUnit; NUM_FUNC_UNITS] = [
        FuncUnit::Pcu,
        FuncUnit::Mu0,
        FuncUnit::Mu1,
        FuncUnit::Au0,
        FuncUnit::Au1,
        FuncUnit::Du0,
        FuncUnit::Du1,
        FuncUnit::Fpu0,
        FuncUnit::Fpu1,
    ];

    /// The class of operations this unit executes.
    #[must_use]
    pub fn class(self) -> UnitClass {
        match self {
            FuncUnit::Pcu => UnitClass::Pcu,
            FuncUnit::Mu0 | FuncUnit::Mu1 => UnitClass::Mem,
            FuncUnit::Au0 | FuncUnit::Au1 => UnitClass::Addr,
            FuncUnit::Du0 | FuncUnit::Du1 => UnitClass::Int,
            FuncUnit::Fpu0 | FuncUnit::Fpu1 => UnitClass::Fp,
        }
    }
}

impl std::fmt::Display for FuncUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FuncUnit::Pcu => "PCU",
            FuncUnit::Mu0 => "MU0",
            FuncUnit::Mu1 => "MU1",
            FuncUnit::Au0 => "AU0",
            FuncUnit::Au1 => "AU1",
            FuncUnit::Du0 => "DU0",
            FuncUnit::Du1 => "DU1",
            FuncUnit::Fpu0 => "FPU0",
            FuncUnit::Fpu1 => "FPU1",
        };
        write!(f, "{s}")
    }
}

/// A class of functional units; each class has identical units that any
/// operation of that class may use — except memory operations, which are
/// tied to the unit of their bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitClass {
    /// Program control (1 unit).
    Pcu,
    /// Memory access (2 units, one per bank).
    Mem,
    /// Address arithmetic (2 units).
    Addr,
    /// Integer arithmetic (2 units).
    Int,
    /// Floating-point arithmetic (2 units).
    Fp,
}

impl UnitClass {
    /// Number of units in this class.
    #[must_use]
    pub fn unit_count(self) -> usize {
        match self {
            UnitClass::Pcu => 1,
            _ => 2,
        }
    }

    /// The concrete units of this class.
    #[must_use]
    pub fn units(self) -> &'static [FuncUnit] {
        match self {
            UnitClass::Pcu => &[FuncUnit::Pcu],
            UnitClass::Mem => &[FuncUnit::Mu0, FuncUnit::Mu1],
            UnitClass::Addr => &[FuncUnit::Au0, FuncUnit::Au1],
            UnitClass::Int => &[FuncUnit::Du0, FuncUnit::Du1],
            UnitClass::Fp => &[FuncUnit::Fpu0, FuncUnit::Fpu1],
        }
    }

    /// All unit classes.
    pub const ALL: [UnitClass; 5] = [
        UnitClass::Pcu,
        UnitClass::Mem,
        UnitClass::Addr,
        UnitClass::Int,
        UnitClass::Fp,
    ];
}

/// A resolved branch/call target: an absolute instruction address in the
/// linked program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstAddr(pub u32);

impl std::fmt::Display for InstAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The addressing modes of the memory units.
///
/// Register-plus-register indexed addressing is standard on DSP
/// address-generation units (e.g. the Motorola DSP56001's `(Rn+Nn)`
/// mode); modelling it directly keeps array accesses single-cycle
/// without burning address-unit slots on every element access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAddr {
    /// Direct (absolute) addressing of a statically allocated word.
    Absolute(u32),
    /// Register-indirect with immediate displacement: `base + offset`.
    Base {
        /// The address register holding the base.
        base: AReg,
        /// Word displacement added to the base.
        offset: i32,
    },
    /// Absolute base plus index register: `addr + index` (global array
    /// with a dynamic subscript). The base is signed because a negative
    /// constant displacement (e.g. `a[i - 1]`) may fold into it; the
    /// effective address is checked at run time.
    AbsIndex {
        /// Absolute word address of the array start (with any constant
        /// displacement already folded in).
        addr: i32,
        /// Integer register holding the index.
        index: IReg,
    },
    /// Register base plus index register plus displacement:
    /// `base + index + offset` (stack or parameter array with a dynamic
    /// subscript).
    BaseIndex {
        /// The address register holding the base.
        base: AReg,
        /// Integer register holding the index.
        index: IReg,
        /// Constant word displacement.
        offset: i32,
    },
}

impl std::fmt::Display for MemAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemAddr::Absolute(a) => write!(f, "[{a}]"),
            MemAddr::Base { base, offset } if *offset == 0 => write!(f, "[{base}]"),
            MemAddr::Base { base, offset } => write!(f, "[{base}{offset:+}]"),
            MemAddr::AbsIndex { addr, index } => write!(f, "[{addr}+{index}]"),
            MemAddr::BaseIndex {
                base,
                index,
                offset,
            } if *offset == 0 => write!(f, "[{base}+{index}]"),
            MemAddr::BaseIndex {
                base,
                index,
                offset,
            } => write!(f, "[{base}+{index}{offset:+}]"),
        }
    }
}

/// An operation executed by a memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load a word from `bank` into `dst`.
    Load {
        /// Destination register (any file).
        dst: Reg,
        /// Effective address within the bank.
        addr: MemAddr,
        /// Bank accessed; determines the unit (X→MU0, Y→MU1).
        bank: Bank,
    },
    /// Store the word in `src` into `bank`.
    Store {
        /// Source register (any file).
        src: Reg,
        /// Effective address within the bank.
        addr: MemAddr,
        /// Bank accessed; determines the unit (X→MU0, Y→MU1).
        bank: Bank,
    },
}

impl MemOp {
    /// Bank accessed by this operation.
    #[must_use]
    pub fn bank(&self) -> Bank {
        match self {
            MemOp::Load { bank, .. } | MemOp::Store { bank, .. } => *bank,
        }
    }

    /// The only functional unit that can execute this operation.
    #[must_use]
    pub fn unit(&self) -> FuncUnit {
        self.bank().memory_unit()
    }

    /// True for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, MemOp::Store { .. })
    }
}

impl std::fmt::Display for MemOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemOp::Load { dst, addr, bank } => write!(f, "ld.{bank} {dst}, {addr}"),
            MemOp::Store { src, addr, bank } => write!(f, "st.{bank} {addr}, {src}"),
        }
    }
}

/// An operation executed by an address unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrOp {
    /// Load an absolute address (or any constant) into an address register.
    Lea {
        /// Destination address register.
        dst: AReg,
        /// Absolute word address.
        addr: u32,
    },
    /// `dst = base + index` where the index comes from the integer file.
    AddIndex {
        /// Destination address register.
        dst: AReg,
        /// Base address register.
        base: AReg,
        /// Integer register holding the (word) index.
        index: IReg,
    },
    /// `dst = base + imm`.
    AddImm {
        /// Destination address register.
        dst: AReg,
        /// Base address register.
        base: AReg,
        /// Immediate word displacement.
        imm: i32,
    },
    /// Copy one address register to another.
    Mov {
        /// Destination address register.
        dst: AReg,
        /// Source address register.
        src: AReg,
    },
    /// Move an address into the integer file (e.g. to pass an array
    /// argument).
    ToInt {
        /// Destination integer register.
        dst: IReg,
        /// Source address register.
        src: AReg,
    },
    /// Move an integer into the address file (e.g. to receive an array
    /// argument).
    FromInt {
        /// Destination address register.
        dst: AReg,
        /// Source integer register.
        src: IReg,
    },
}

impl std::fmt::Display for AddrOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrOp::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            AddrOp::AddIndex { dst, base, index } => write!(f, "adda {dst}, {base}, {index}"),
            AddrOp::AddImm { dst, base, imm } => write!(f, "adda {dst}, {base}, #{imm}"),
            AddrOp::Mov { dst, src } => write!(f, "mova {dst}, {src}"),
            AddrOp::ToInt { dst, src } => write!(f, "mvai {dst}, {src}"),
            AddrOp::FromInt { dst, src } => write!(f, "mvia {dst}, {src}"),
        }
    }
}

/// Binary integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntBinKind {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Two's-complement multiplication (wrapping; single cycle, as in DSP
    /// multiplier arrays).
    Mul,
    /// Signed division; division by zero yields 0, as on saturating DSPs.
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (by `rhs & 31`).
    Shl,
    /// Arithmetic shift right (by `rhs & 31`).
    Shr,
}

impl std::fmt::Display for IntBinKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IntBinKind::Add => "add",
            IntBinKind::Sub => "sub",
            IntBinKind::Mul => "mul",
            IntBinKind::Div => "div",
            IntBinKind::Rem => "rem",
            IntBinKind::And => "and",
            IntBinKind::Or => "or",
            IntBinKind::Xor => "xor",
            IntBinKind::Shl => "shl",
            IntBinKind::Shr => "shr",
        };
        write!(f, "{s}")
    }
}

/// Comparison predicates (integer and floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed / ordered less-than.
    Lt,
    /// Signed / ordered less-or-equal.
    Le,
    /// Signed / ordered greater-than.
    Gt,
    /// Signed / ordered greater-or-equal.
    Ge,
}

impl std::fmt::Display for CmpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// The right-hand operand of an integer operation: a register or a small
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOperand {
    /// A register operand.
    Reg(IReg),
    /// An immediate operand.
    Imm(i32),
}

impl std::fmt::Display for IntOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntOperand::Reg(r) => write!(f, "{r}"),
            IntOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// An operation executed by an integer data unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// `dst = lhs <kind> rhs`.
    Bin {
        /// Operation kind.
        kind: IntBinKind,
        /// Destination register.
        dst: IReg,
        /// Left operand register.
        lhs: IReg,
        /// Right operand (register or immediate).
        rhs: IntOperand,
    },
    /// `dst = (lhs <kind> rhs) ? 1 : 0`.
    Cmp {
        /// Comparison predicate.
        kind: CmpKind,
        /// Destination register (receives 0 or 1).
        dst: IReg,
        /// Left operand register.
        lhs: IReg,
        /// Right operand (register or immediate).
        rhs: IntOperand,
    },
    /// Load an immediate.
    MovImm {
        /// Destination register.
        dst: IReg,
        /// Immediate value.
        imm: i32,
    },
    /// Register copy.
    Mov {
        /// Destination register.
        dst: IReg,
        /// Source register.
        src: IReg,
    },
    /// Arithmetic negation.
    Neg {
        /// Destination register.
        dst: IReg,
        /// Source register.
        src: IReg,
    },
    /// Bitwise complement.
    Not {
        /// Destination register.
        dst: IReg,
        /// Source register.
        src: IReg,
    },
}

impl std::fmt::Display for IntOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntOp::Bin {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{kind} {dst}, {lhs}, {rhs}"),
            IntOp::Cmp {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "s{kind} {dst}, {lhs}, {rhs}"),
            IntOp::MovImm { dst, imm } => write!(f, "movi {dst}, #{imm}"),
            IntOp::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            IntOp::Neg { dst, src } => write!(f, "neg {dst}, {src}"),
            IntOp::Not { dst, src } => write!(f, "not {dst}, {src}"),
        }
    }
}

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinKind {
    /// IEEE-754 single-precision addition.
    Add,
    /// IEEE-754 single-precision subtraction.
    Sub,
    /// IEEE-754 single-precision multiplication.
    Mul,
    /// IEEE-754 single-precision division.
    Div,
}

impl std::fmt::Display for FpBinKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FpBinKind::Add => "fadd",
            FpBinKind::Sub => "fsub",
            FpBinKind::Mul => "fmul",
            FpBinKind::Div => "fdiv",
        };
        write!(f, "{s}")
    }
}

/// An operation executed by a floating-point unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FpOp {
    /// `dst = lhs <kind> rhs`.
    Bin {
        /// Operation kind.
        kind: FpBinKind,
        /// Destination register.
        dst: FReg,
        /// Left operand register.
        lhs: FReg,
        /// Right operand register.
        rhs: FReg,
    },
    /// Fused multiply-accumulate `dst = dst + a * b`, the signature DSP
    /// operation (single cycle, like the 56001's `MAC`).
    Mac {
        /// Accumulator register (read and written).
        dst: FReg,
        /// First factor.
        a: FReg,
        /// Second factor.
        b: FReg,
    },
    /// `dst = (lhs <kind> rhs) ? 1 : 0`, written to the integer file.
    Cmp {
        /// Comparison predicate.
        kind: CmpKind,
        /// Destination integer register (receives 0 or 1).
        dst: IReg,
        /// Left operand register.
        lhs: FReg,
        /// Right operand register.
        rhs: FReg,
    },
    /// Load a floating-point immediate.
    MovImm {
        /// Destination register.
        dst: FReg,
        /// Immediate value.
        imm: f32,
    },
    /// Register copy.
    Mov {
        /// Destination register.
        dst: FReg,
        /// Source register.
        src: FReg,
    },
    /// Arithmetic negation.
    Neg {
        /// Destination register.
        dst: FReg,
        /// Source register.
        src: FReg,
    },
    /// Convert a signed integer to float.
    CvtItoF {
        /// Destination floating-point register.
        dst: FReg,
        /// Source integer register.
        src: IReg,
    },
    /// Convert a float to a signed integer (truncating toward zero).
    CvtFtoI {
        /// Destination integer register.
        dst: IReg,
        /// Source floating-point register.
        src: FReg,
    },
}

impl std::fmt::Display for FpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpOp::Bin {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{kind} {dst}, {lhs}, {rhs}"),
            FpOp::Mac { dst, a, b } => write!(f, "fmac {dst}, {a}, {b}"),
            FpOp::Cmp {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "fs{kind} {dst}, {lhs}, {rhs}"),
            FpOp::MovImm { dst, imm } => write!(f, "fmovi {dst}, #{imm}"),
            FpOp::Mov { dst, src } => write!(f, "fmov {dst}, {src}"),
            FpOp::Neg { dst, src } => write!(f, "fneg {dst}, {src}"),
            FpOp::CvtItoF { dst, src } => write!(f, "itof {dst}, {src}"),
            FpOp::CvtFtoI { dst, src } => write!(f, "ftoi {dst}, {src}"),
        }
    }
}

/// An operation executed by the program control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcuOp {
    /// Unconditional jump.
    Jump(InstAddr),
    /// Branch to `target` if `cond` is non-zero.
    BranchNz {
        /// Condition register.
        cond: IReg,
        /// Branch target.
        target: InstAddr,
    },
    /// Branch to `target` if `cond` is zero.
    BranchZ {
        /// Condition register.
        cond: IReg,
        /// Branch target.
        target: InstAddr,
    },
    /// Call a function, pushing the return address on the hardware call
    /// stack (DSPs commonly provide one in hardware).
    Call(InstAddr),
    /// Return to the address on top of the hardware call stack.
    Ret,
    /// Stop the machine.
    Halt,
}

impl std::fmt::Display for PcuOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcuOp::Jump(t) => write!(f, "jmp {t}"),
            PcuOp::BranchNz { cond, target } => write!(f, "bnz {cond}, {target}"),
            PcuOp::BranchZ { cond, target } => write!(f, "bz {cond}, {target}"),
            PcuOp::Call(t) => write!(f, "call {t}"),
            PcuOp::Ret => write!(f, "ret"),
            PcuOp::Halt => write!(f, "halt"),
        }
    }
}

/// One very long instruction word: one optional operation per functional
/// unit, all issued in the same cycle.
///
/// Reads happen before writes within a cycle, so an operation may read a
/// register that a parallel operation overwrites (this is what lets the
/// compaction pass schedule anti-dependent operations together).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VliwInst {
    /// Program-control slot.
    pub pcu: Option<PcuOp>,
    /// Memory unit 0 (bank X) slot.
    pub mu0: Option<MemOp>,
    /// Memory unit 1 (bank Y) slot.
    pub mu1: Option<MemOp>,
    /// Address unit 0 slot.
    pub au0: Option<AddrOp>,
    /// Address unit 1 slot.
    pub au1: Option<AddrOp>,
    /// Integer unit 0 slot.
    pub du0: Option<IntOp>,
    /// Integer unit 1 slot.
    pub du1: Option<IntOp>,
    /// Floating-point unit 0 slot.
    pub fpu0: Option<FpOp>,
    /// Floating-point unit 1 slot.
    pub fpu1: Option<FpOp>,
}

impl VliwInst {
    /// An empty instruction (all slots vacant; executes as a no-op cycle).
    #[must_use]
    pub fn new() -> VliwInst {
        VliwInst::default()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn op_count(&self) -> usize {
        usize::from(self.pcu.is_some())
            + usize::from(self.mu0.is_some())
            + usize::from(self.mu1.is_some())
            + usize::from(self.au0.is_some())
            + usize::from(self.au1.is_some())
            + usize::from(self.du0.is_some())
            + usize::from(self.du1.is_some())
            + usize::from(self.fpu0.is_some())
            + usize::from(self.fpu1.is_some())
    }

    /// True if no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0
    }

    /// Number of memory operations (0, 1 or 2).
    #[must_use]
    pub fn mem_op_count(&self) -> usize {
        usize::from(self.mu0.is_some()) + usize::from(self.mu1.is_some())
    }

    /// Check the structural invariant that each memory slot holds an
    /// operation for the matching bank.
    ///
    /// When `dual_ported` is true (the paper's *Ideal* configuration) a
    /// memory operation may occupy either slot regardless of its bank.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated slot.
    pub fn check_bank_discipline(&self, dual_ported: bool) -> Result<(), String> {
        if dual_ported {
            return Ok(());
        }
        if let Some(op) = &self.mu0 {
            if op.bank() != Bank::X {
                return Err(format!("MU0 holds a bank-{} operation: {op}", op.bank()));
            }
        }
        if let Some(op) = &self.mu1 {
            if op.bank() != Bank::Y {
                return Err(format!("MU1 holds a bank-{} operation: {op}", op.bank()));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for VliwInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(op) = &self.pcu {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.du0 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.du1 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.fpu0 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.fpu1 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.au0 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.au1 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.mu0 {
            parts.push(op.to_string());
        }
        if let Some(op) = &self.mu1 {
            parts.push(op.to_string());
        }
        if parts.is_empty() {
            write!(f, "nop")
        } else {
            write!(f, "{}", parts.join(" || "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(bank: Bank) -> MemOp {
        MemOp::Load {
            dst: Reg::Int(IReg(0)),
            addr: MemAddr::Absolute(0),
            bank,
        }
    }

    #[test]
    fn empty_inst_is_nop() {
        let inst = VliwInst::new();
        assert!(inst.is_empty());
        assert_eq!(inst.op_count(), 0);
        assert_eq!(inst.to_string(), "nop");
    }

    #[test]
    fn op_count_counts_all_slots() {
        let mut inst = VliwInst::new();
        inst.pcu = Some(PcuOp::Halt);
        inst.du0 = Some(IntOp::MovImm {
            dst: IReg(1),
            imm: 3,
        });
        inst.mu1 = Some(load(Bank::Y));
        assert_eq!(inst.op_count(), 3);
        assert_eq!(inst.mem_op_count(), 1);
    }

    #[test]
    fn bank_discipline_enforced() {
        let mut inst = VliwInst::new();
        inst.mu0 = Some(load(Bank::X));
        inst.mu1 = Some(load(Bank::Y));
        assert!(inst.check_bank_discipline(false).is_ok());

        let mut bad = VliwInst::new();
        bad.mu0 = Some(load(Bank::Y));
        assert!(bad.check_bank_discipline(false).is_err());
        // Dual-ported (Ideal) memory tolerates any placement.
        assert!(bad.check_bank_discipline(true).is_ok());
    }

    #[test]
    fn unit_classes_cover_all_units() {
        let mut n = 0;
        for c in UnitClass::ALL {
            n += c.unit_count();
            for u in c.units() {
                assert_eq!(u.class(), c);
            }
        }
        assert_eq!(n, NUM_FUNC_UNITS);
    }

    #[test]
    fn display_smoke() {
        let mut inst = VliwInst::new();
        inst.du0 = Some(IntOp::Bin {
            kind: IntBinKind::Add,
            dst: IReg(2),
            lhs: IReg(0),
            rhs: IntOperand::Imm(4),
        });
        inst.mu0 = Some(load(Bank::X));
        let s = inst.to_string();
        assert!(s.contains("add r2, r0, #4"), "{s}");
        assert!(s.contains("ld.X r0, [0]"), "{s}");
    }

    #[test]
    fn mem_op_unit_follows_bank() {
        assert_eq!(load(Bank::X).unit(), FuncUnit::Mu0);
        assert_eq!(load(Bank::Y).unit(), FuncUnit::Mu1);
        assert!(!load(Bank::X).is_store());
    }
}
