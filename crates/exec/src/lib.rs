#![warn(missing_docs)]
//! `dsp-exec` — the workspace's one shared job scheduler.
//!
//! Before this crate the repo had two independent thread pools: the
//! batch engine's per-`run_matrix` workers and `dsp-serve`'s connection
//! workers, which ran whole sweeps inline on the thread that owned the
//! connection. This executor unifies them: every compute job —
//! interactive `/compile`, a CLI `bench all`, one cell of a served
//! `/sweep` matrix — is a task submitted to one machine-sized pool.
//! Mirroring the source paper's framing, the point is to keep every
//! unit busy instead of serializing a workload on the one unit that
//! happens to own it.
//!
//! Design:
//!
//! * **Two priority classes.** [`Priority::Interactive`] tasks (single
//!   `/compile` requests) are always dequeued ahead of
//!   [`Priority::Batch`] tasks (sweep cells), so a point query never
//!   waits behind a 161-job matrix — only behind the tasks already
//!   running.
//! * **Job handles.** [`Executor::submit`] returns a [`JobHandle`]
//!   that the submitter waits on ([`JobHandle::wait`] /
//!   [`JobHandle::wait_until`]); results flow back per job, which is
//!   what lets `dsp-serve` stream a sweep response as cells finish.
//! * **Cancellation.** Tasks submitted under a [`CancelToken`] are
//!   skipped (never run) if the token is cancelled while they are
//!   still queued — a request that hits its deadline takes its
//!   remaining work out of the pool instead of leaking it.
//! * **Telemetry.** [`Executor::stats`] snapshots queue depths, busy
//!   workers, per-priority execution counts, and a per-worker executed
//!   count, so "did this sweep use the whole machine" is observable.
//! * **Tracing.** A pool built with [`Executor::with_tracer`] records
//!   one `exec.wait` span (time from submit to dequeue) and one
//!   `exec.run` span per executed task, parented under the submitter's
//!   [`SpanCtx`] via [`Executor::submit_ctx`], and feeds the
//!   queue-wait latency histogram per priority class. With the default
//!   disabled tracer all of this is a no-op.
//!
//! Tasks must never block on other tasks' handles (submit-and-wait is
//! for *callers* of the pool, not for tasks inside it); every user in
//! this workspace submits only leaf jobs, so the pool cannot deadlock.
//!
//! Determinism: the executor adds none of its own nondeterminism —
//! tasks are claimed in an arbitrary order, but each task is a pure
//! function and results are read back through per-job handles, so a
//! caller that assembles results in submission order gets bit-identical
//! output for any worker count (see `crates/driver/tests/determinism.rs`).

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

pub use dsp_trace::{SpanCtx, Tracer};

/// Scheduling class of a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Point queries (served `/compile`): dequeued before any queued
    /// batch work.
    Interactive,
    /// Sweep cells and CLI batch matrices.
    Batch,
}

/// A shared cancellation flag for a group of tasks (typically: every
/// cell of one request's matrix).
///
/// Cancelling is cooperative and queue-level: tasks still *queued* when
/// the token flips are dequeued without running (their handles resolve
/// to cancelled); tasks already running complete normally — compute
/// jobs in this workspace are bounded by simulator fuel, so a cancelled
/// running job cannot pin a worker forever.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flip the token. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Why a [`JobHandle`] wait returned without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome<T> {
    /// The task ran to completion.
    Done(T),
    /// The task was cancelled before running (or its closure panicked;
    /// the panic is contained to the task).
    Cancelled,
    /// The deadline passed first; the task is still queued or running.
    TimedOut,
}

enum JobState<T> {
    Pending,
    Done(T),
    /// Value already handed out by a previous wait.
    Taken,
    Cancelled,
}

struct HandleShared<T> {
    state: Mutex<JobState<T>>,
    done: Condvar,
}

impl<T> HandleShared<T> {
    fn finish(&self, state: JobState<T>) {
        *self.state.lock().expect("job state poisoned") = state;
        self.done.notify_all();
    }
}

/// The submitter's side of one task: wait for its result.
pub struct JobHandle<T> {
    shared: Arc<HandleShared<T>>,
}

impl<T> JobHandle<T> {
    /// Block until the task completes; `None` if it was cancelled (or
    /// panicked).
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned.
    #[must_use]
    pub fn wait(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        loop {
            match std::mem::replace(&mut *state, JobState::Taken) {
                JobState::Done(v) => return Some(v),
                JobState::Cancelled => {
                    *state = JobState::Cancelled;
                    return None;
                }
                JobState::Taken => panic!("job result already taken"),
                JobState::Pending => {
                    *state = JobState::Pending;
                    state = self.shared.done.wait(state).expect("job state poisoned");
                }
            }
        }
    }

    /// Wait until `deadline` at the latest. [`WaitOutcome::TimedOut`]
    /// leaves the task in place — the caller typically cancels the
    /// token and moves on.
    ///
    /// # Panics
    ///
    /// Panics if the state mutex is poisoned.
    #[must_use]
    pub fn wait_until(&self, deadline: Instant) -> WaitOutcome<T> {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        loop {
            match std::mem::replace(&mut *state, JobState::Taken) {
                JobState::Done(v) => return WaitOutcome::Done(v),
                JobState::Cancelled => {
                    *state = JobState::Cancelled;
                    return WaitOutcome::Cancelled;
                }
                JobState::Taken => panic!("job result already taken"),
                JobState::Pending => {
                    *state = JobState::Pending;
                    let Some(timeout) = deadline.checked_duration_since(Instant::now()) else {
                        return WaitOutcome::TimedOut;
                    };
                    let (guard, result) = self
                        .shared
                        .done
                        .wait_timeout(state, timeout)
                        .expect("job state poisoned");
                    state = guard;
                    if result.timed_out() && matches!(*state, JobState::Pending) {
                        return WaitOutcome::TimedOut;
                    }
                }
            }
        }
    }
}

enum TaskMode {
    Run,
    Cancel,
}

struct Task {
    token: Option<CancelToken>,
    priority: Priority,
    /// Trace context of the submitter; queue-wait and run spans are
    /// parented under it.
    ctx: SpanCtx,
    /// When the task was enqueued — only sampled when the pool's
    /// tracer is enabled, so the disabled path takes no clock reads.
    submitted: Option<Instant>,
    run: Box<dyn FnOnce(TaskMode) + Send>,
}

struct QueueState {
    interactive: VecDeque<Task>,
    batch: VecDeque<Task>,
    closed: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    ready: Condvar,
    workers: usize,
    busy: AtomicUsize,
    executed_interactive: AtomicU64,
    executed_batch: AtomicU64,
    cancelled: AtomicU64,
    per_worker_executed: Vec<AtomicU64>,
    tracer: Arc<Tracer>,
}

fn class_label(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Batch => "batch",
    }
}

/// Telemetry snapshot of an [`Executor`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Pool size.
    pub workers: usize,
    /// Workers currently running a task.
    pub busy: usize,
    /// Interactive tasks waiting.
    pub queued_interactive: usize,
    /// Batch tasks waiting.
    pub queued_batch: usize,
    /// Interactive tasks executed to completion.
    pub executed_interactive: u64,
    /// Batch tasks executed to completion.
    pub executed_batch: u64,
    /// Tasks dequeued under a cancelled token and skipped.
    pub cancelled: u64,
    /// Tasks executed by each worker — the "did one request use the
    /// whole pool" telemetry.
    pub per_worker_executed: Vec<u64>,
}

/// A fixed pool of worker threads draining a two-level priority queue.
///
/// Shared via `Arc` by everything that computes: the CLI builds one per
/// invocation, `dsp-serve` builds one per process, and every
/// [`dsp_driver`-style engine] submits its pipeline cells here instead
/// of spawning threads of its own. Dropping the last reference closes
/// the queue; workers drain what is already queued and exit on their
/// own, detached — a worker may be deep inside an abandoned
/// (deadline-expired) job that only simulator fuel will stop, and a
/// join would stall teardown for exactly that long.
pub struct Executor {
    inner: Arc<Inner>,
}

impl Executor {
    /// A pool of `threads` workers; `0` means
    /// [`std::thread::available_parallelism`]. Tracing is disabled;
    /// use [`Executor::with_tracer`] to record spans.
    #[must_use]
    pub fn new(threads: usize) -> Executor {
        Executor::with_tracer(threads, Tracer::disabled())
    }

    /// A pool whose workers record `exec.wait` / `exec.run` spans and
    /// queue-wait histograms on `tracer` (a no-op when the tracer is
    /// disabled).
    #[must_use]
    pub fn with_tracer(threads: usize, tracer: Arc<Tracer>) -> Executor {
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            threads
        };
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
            executed_interactive: AtomicU64::new(0),
            executed_batch: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            per_worker_executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            tracer,
        });
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("dsp-exec-{i}"))
                .spawn(move || worker_loop(&inner, i))
                .expect("spawn executor worker");
        }
        Executor { inner }
    }

    /// Pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Submit one task; the closure runs on a pool worker. A task
    /// carrying a `token` is skipped (handle resolves cancelled) if the
    /// token is cancelled while the task is still queued.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    pub fn submit<T, F>(
        &self,
        priority: Priority,
        token: Option<&CancelToken>,
        f: F,
    ) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_ctx(priority, token, SpanCtx::NONE, f)
    }

    /// [`Executor::submit`] with a trace context: the task's
    /// `exec.wait` and `exec.run` spans are parented under `ctx`, so a
    /// request's trace shows where its cells waited and ran.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    pub fn submit_ctx<T, F>(
        &self,
        priority: Priority,
        token: Option<&CancelToken>,
        ctx: SpanCtx,
        f: F,
    ) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let shared = Arc::new(HandleShared {
            state: Mutex::new(JobState::Pending),
            done: Condvar::new(),
        });
        let result_slot = Arc::clone(&shared);
        let run = Box::new(move |mode: TaskMode| match mode {
            TaskMode::Run => match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => result_slot.finish(JobState::Done(v)),
                // Contain the panic to this task; the worker survives.
                Err(_) => result_slot.finish(JobState::Cancelled),
            },
            TaskMode::Cancel => result_slot.finish(JobState::Cancelled),
        });
        let task = Task {
            token: token.cloned(),
            priority,
            ctx,
            submitted: self.inner.tracer.is_enabled().then(Instant::now),
            run,
        };
        {
            let mut queue = self.inner.queue.lock().expect("executor queue poisoned");
            if queue.closed {
                // Only reachable while the executor is being dropped,
                // which means nobody is left to wait on this handle.
                drop(queue);
                (task.run)(TaskMode::Cancel);
                return JobHandle { shared };
            }
            match priority {
                Priority::Interactive => queue.interactive.push_back(task),
                Priority::Batch => queue.batch.push_back(task),
            }
        }
        self.inner.ready.notify_one();
        JobHandle { shared }
    }

    /// Snapshot the executor's telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    #[must_use]
    pub fn stats(&self) -> ExecutorStats {
        let (queued_interactive, queued_batch) = {
            let queue = self.inner.queue.lock().expect("executor queue poisoned");
            (queue.interactive.len(), queue.batch.len())
        };
        ExecutorStats {
            workers: self.inner.workers,
            busy: self.inner.busy.load(Ordering::Relaxed),
            queued_interactive,
            queued_batch,
            executed_interactive: self.inner.executed_interactive.load(Ordering::Relaxed),
            executed_batch: self.inner.executed_batch.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            per_worker_executed: self
                .inner
                .per_worker_executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Close and wake, but never join: workers hold their own Arc
        // to the shared state, drain the remaining queue, and exit when
        // it is empty. At process exit they are simply killed, which is
        // the desired fate for an abandoned fuel-bounded job.
        self.inner
            .queue
            .lock()
            .expect("executor queue poisoned")
            .closed = true;
        self.inner.ready.notify_all();
    }
}

fn worker_loop(inner: &Inner, index: usize) {
    loop {
        let task = {
            let mut queue = inner.queue.lock().expect("executor queue poisoned");
            loop {
                if let Some(task) = queue
                    .interactive
                    .pop_front()
                    .or_else(|| queue.batch.pop_front())
                {
                    break task;
                }
                if queue.closed {
                    return;
                }
                queue = inner.ready.wait(queue).expect("executor queue poisoned");
            }
        };
        if task.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            (task.run)(TaskMode::Cancel);
            continue;
        }
        inner.busy.fetch_add(1, Ordering::Relaxed);
        // Counters are bumped before running so that a caller who has
        // just observed a job's completion reads them fully up to date.
        inner.per_worker_executed[index].fetch_add(1, Ordering::Relaxed);
        match task.priority {
            Priority::Interactive => inner.executed_interactive.fetch_add(1, Ordering::Relaxed),
            Priority::Batch => inner.executed_batch.fetch_add(1, Ordering::Relaxed),
        };
        let class = class_label(task.priority);
        if let Some(submitted) = task.submitted {
            // Backfill the time this task spent queued, anchored at
            // its submit instant so the trace nests correctly.
            let wait = submitted.elapsed();
            inner.tracer.record_span(
                "exec.wait",
                "exec",
                task.ctx,
                submitted,
                wait,
                vec![("class", class.to_string())],
            );
            inner
                .tracer
                .observe(dsp_trace::families::QUEUE_WAIT, class, wait);
        }
        {
            let mut span = inner.tracer.span("exec.run", "exec", task.ctx);
            span.attr("class", class);
            (task.run)(TaskMode::Run);
        }
        inner.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn results_come_back_through_handles() {
        let exec = Executor::new(2);
        let handles: Vec<JobHandle<usize>> = (0..16)
            .map(|i| exec.submit(Priority::Batch, None, move || i * i))
            .collect();
        let results: Vec<usize> = handles.iter().map(|h| h.wait().unwrap()).collect();
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
        let stats = exec.stats();
        assert_eq!(stats.executed_batch, 16);
        assert_eq!(stats.cancelled, 0);
    }

    #[test]
    fn interactive_jumps_ahead_of_queued_batch_work() {
        // One worker, blocked by a gate task. While it is blocked,
        // enqueue batch tasks and then one interactive task; the
        // interactive one must run before every still-queued batch task.
        let exec = Executor::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let gate = exec.submit(Priority::Batch, None, move || {
            entered_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("gate task must start");

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let order = Arc::clone(&order);
            handles.push(exec.submit(Priority::Batch, None, move || {
                order.lock().unwrap().push(format!("batch-{i}"));
            }));
        }
        let order2 = Arc::clone(&order);
        let interactive = exec.submit(Priority::Interactive, None, move || {
            order2.lock().unwrap().push("interactive".to_string());
        });

        gate_tx.send(()).unwrap();
        gate.wait().unwrap();
        interactive.wait().unwrap();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(
            order.lock().unwrap().first().map(String::as_str),
            Some("interactive"),
            "interactive task must be dequeued before queued batch tasks"
        );
    }

    #[test]
    fn cancelled_queued_tasks_never_run() {
        let exec = Executor::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let gate = exec.submit(Priority::Batch, None, move || {
            entered_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("gate task must start");

        let token = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<JobHandle<()>> = (0..8)
            .map(|_| {
                let ran = Arc::clone(&ran);
                exec.submit(Priority::Batch, Some(&token), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        token.cancel();
        gate_tx.send(()).unwrap();
        gate.wait().unwrap();
        for h in handles {
            assert!(h.wait().is_none(), "cancelled task must resolve to None");
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no cancelled task may run");
        assert_eq!(exec.stats().cancelled, 8);
    }

    #[test]
    fn wait_until_times_out_and_the_task_still_completes() {
        let exec = Executor::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let slow = exec.submit(Priority::Batch, None, move || {
            gate_rx.recv().unwrap();
            42
        });
        assert!(matches!(
            slow.wait_until(Instant::now() + Duration::from_millis(30)),
            WaitOutcome::TimedOut
        ));
        gate_tx.send(()).unwrap();
        assert_eq!(slow.wait(), Some(42));
    }

    #[test]
    fn one_batch_uses_every_worker() {
        // N tasks that rendezvous on an N-party barrier can only all
        // finish if N workers run them concurrently.
        const N: usize = 4;
        let exec = Executor::new(N);
        let barrier = Arc::new(std::sync::Barrier::new(N));
        let handles: Vec<JobHandle<()>> = (0..N)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                exec.submit(Priority::Batch, None, move || {
                    barrier.wait();
                })
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = exec.stats();
        assert_eq!(stats.per_worker_executed.len(), N);
        assert!(
            stats.per_worker_executed.iter().all(|&n| n >= 1),
            "every worker must have executed a task: {:?}",
            stats.per_worker_executed
        );
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_pool() {
        let exec = Executor::new(1);
        let bad = exec.submit(Priority::Batch, None, || panic!("task panic"));
        assert!(bad.wait().is_none(), "panicked task resolves to None");
        let ok = exec.submit(Priority::Batch, None, || 7);
        assert_eq!(ok.wait(), Some(7), "the worker must survive the panic");
    }

    #[test]
    fn zero_means_available_parallelism() {
        let exec = Executor::new(0);
        assert!(exec.workers() >= 1);
    }

    #[test]
    fn traced_pool_records_wait_and_run_spans() {
        let tracer = Tracer::new(64);
        let exec = Executor::with_tracer(1, Arc::clone(&tracer));
        let root = tracer.new_trace();
        let h = exec.submit_ctx(Priority::Interactive, None, root, || 5);
        assert_eq!(h.wait(), Some(5));
        // The run span records just *after* the handle resolves (the
        // guard drops once the task body returns), so poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        let spans = loop {
            let spans = tracer.snapshot(16);
            if spans.iter().any(|s| s.name == "exec.run") {
                break spans;
            }
            assert!(Instant::now() < deadline, "run span never appeared");
            std::thread::sleep(Duration::from_millis(2));
        };
        let wait = spans
            .iter()
            .find(|s| s.name == "exec.wait")
            .expect("wait span");
        let run = spans
            .iter()
            .find(|s| s.name == "exec.run")
            .expect("run span");
        for s in [wait, run] {
            assert_eq!(s.trace, root.trace, "spans join the submitter's trace");
            assert_eq!(s.parent, root.span);
            assert!(s
                .attrs
                .iter()
                .any(|(k, v)| *k == "class" && v == "interactive"));
        }
        let fam = tracer.family_snapshot(dsp_trace::families::QUEUE_WAIT);
        assert_eq!(fam.len(), 1);
        assert_eq!(fam[0].0, "interactive");
        assert_eq!(fam[0].1.count, 1);
    }

    #[test]
    fn untraced_submit_samples_no_clock() {
        // Executor::new uses a disabled tracer: tasks must carry no
        // submit timestamp and record nothing.
        let tracer = Tracer::disabled();
        let exec = Executor::with_tracer(1, Arc::clone(&tracer));
        assert_eq!(exec.submit(Priority::Batch, None, || 1).wait(), Some(1));
        assert!(tracer.snapshot(4).is_empty());
        assert!(tracer.family_names().is_empty());
    }
}
