//! Prometheus text-exposition parser and histogram arithmetic.
//!
//! Every node in the fleet serves the 0.0.4 text format; this module
//! turns a scrape into typed [`Family`] values and rebuilds latency
//! distributions from their cumulative `_bucket{le="..."}` series so
//! quantiles can be computed fleet-wide, by the same conservative rule
//! the in-process histograms use (`dsp_trace::HistogramSnapshot`):
//! resolve the target rank to the upper bound of the bucket holding it.

use std::collections::BTreeMap;

/// One sample line: the full series name, its labels, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of one label, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A metric family: the `# TYPE` name plus every sample that belongs
/// to it (for histograms that includes the `_bucket`, `_sum`, and
/// `_count` series).
#[derive(Debug, Clone, Default)]
pub struct Family {
    pub name: String,
    pub help: String,
    /// `counter`, `gauge`, `histogram`, or `untyped`.
    pub kind: String,
    pub samples: Vec<Sample>,
}

/// Parse a text-format scrape into families, in exposition order.
/// Samples that never saw a `# TYPE` line become `untyped` families.
#[must_use]
pub fn parse(text: &str) -> Vec<Family> {
    let mut families: Vec<Family> = Vec::new();
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    fn ensure(
        families: &mut Vec<Family>,
        index: &mut BTreeMap<String, usize>,
        name: &str,
    ) -> usize {
        *index.entry(name.to_string()).or_insert_with(|| {
            families.push(Family {
                name: name.to_string(),
                kind: "untyped".to_string(),
                ..Family::default()
            });
            families.len() - 1
        })
    }
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                let i = ensure(&mut families, &mut index, name);
                families[i].help = help.to_string();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                let i = ensure(&mut families, &mut index, name);
                families[i].kind = kind.trim().to_string();
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample(line) else {
            continue;
        };
        let family = base_name(&sample.name, &index);
        let i = ensure(&mut families, &mut index, &family);
        families[i].samples.push(sample);
    }
    families
}

/// Map a series name to its family: histogram series carry `_bucket`,
/// `_sum`, or `_count` suffixes on top of the declared family name.
fn base_name(series: &str, index: &BTreeMap<String, usize>) -> String {
    if index.contains_key(series) {
        return series.to_string();
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = series.strip_suffix(suffix) {
            if index.contains_key(stem) {
                return stem.to_string();
            }
        }
    }
    series.to_string()
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (series, value) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}')?;
            let labels = parse_labels(&line[open + 1..close])?;
            let name = line[..open].trim().to_string();
            let value = line[close + 1..].trim();
            (
                Sample {
                    name,
                    labels,
                    value: 0.0,
                },
                value,
            )
        }
        None => {
            let (name, value) = line.split_once(char::is_whitespace)?;
            (
                Sample {
                    name: name.to_string(),
                    labels: Vec::new(),
                    value: 0.0,
                },
                value.trim(),
            )
        }
    };
    let mut sample = series;
    sample.value = parse_value(value)?;
    Some(sample)
}

/// `+Inf`/`-Inf`/`NaN` are legal exposition values.
fn parse_value(v: &str) -> Option<f64> {
    match v {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        v => v.parse().ok(),
    }
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut value = String::new();
        let mut chars = after.strip_prefix('"')?.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c)) => value.push(c),
                    None => return None,
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = consumed?;
        labels.push((key, value));
        rest = after[1 + end..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

/// One reconstructed histogram: the cumulative finite buckets of a
/// single label set (minus `le`), plus its `_count` and `_sum`.
#[derive(Debug, Clone, Default)]
pub struct HistogramView {
    /// The label set shared by every series of this view, `le` removed.
    pub labels: Vec<(String, String)>,
    /// `(upper bound seconds, cumulative count)`, ascending, finite.
    pub buckets: Vec<(f64, u64)>,
    pub count: u64,
    pub sum_seconds: f64,
}

impl HistogramView {
    /// The `q`-quantile in seconds, by the same rule as
    /// `dsp_trace::HistogramSnapshot::quantile`: the upper bound of the
    /// bucket holding rank `ceil(q * count)`. A rank past the last
    /// finite bucket resolves to the last finite bound — the exact
    /// maximum is not in the exposition, so the estimate is a floor.
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(bound, cum) in &self.buckets {
            if cum >= target {
                return bound;
            }
        }
        self.buckets.last().map_or(0.0, |&(bound, _)| bound)
    }

    /// Fold another view's buckets into this one (fleet-wide merge).
    /// Cumulative counts only add pointwise when both views know the
    /// bound, so the union is rebuilt from per-bucket deltas.
    pub fn merge(&mut self, other: &HistogramView) {
        let mut deltas: BTreeMap<u64, u64> = BTreeMap::new();
        for view in [&*self, other] {
            let mut prev = 0u64;
            for &(bound, cum) in &view.buckets {
                *deltas.entry(bound.to_bits()).or_insert(0) += cum.saturating_sub(prev);
                prev = cum;
            }
        }
        let mut buckets = Vec::with_capacity(deltas.len());
        let mut cum = 0u64;
        for (bits, n) in deltas {
            cum += n;
            buckets.push((f64::from_bits(bits), cum));
        }
        self.buckets = buckets;
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
    }
}

/// Rebuild every label set's histogram from a `histogram` family.
/// Views are keyed (and ordered) by their rendered label set.
#[must_use]
pub fn histogram_views(family: &Family) -> Vec<HistogramView> {
    let bucket_series = format!("{}_bucket", family.name);
    let count_series = format!("{}_count", family.name);
    let sum_series = format!("{}_sum", family.name);
    let mut views: BTreeMap<String, HistogramView> = BTreeMap::new();
    for s in &family.samples {
        let labels: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        let key = label_key(&labels);
        let view = views.entry(key).or_insert_with(|| HistogramView {
            labels,
            ..HistogramView::default()
        });
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        if s.name == bucket_series {
            match s.label("le") {
                Some("+Inf") | None => {}
                Some(le) => {
                    if let Ok(bound) = le.parse::<f64>() {
                        view.buckets.push((bound, s.value as u64));
                    }
                }
            }
        } else if s.name == count_series {
            view.count = s.value as u64;
        } else if s.name == sum_series {
            view.sum_seconds = s.value;
        }
    }
    let mut out: Vec<HistogramView> = views.into_values().collect();
    for v in &mut out {
        v.buckets
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }
    out
}

/// Canonical rendering of a label set, used as a grouping key.
#[must_use]
pub fn label_key(labels: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
# HELP dsp_serve_requests_total Finished HTTP requests by endpoint and status.\n\
# TYPE dsp_serve_requests_total counter\n\
dsp_serve_requests_total{endpoint=\"compile\",status=\"200\"} 7\n\
dsp_serve_requests_total{endpoint=\"sweep\",status=\"502\"} 1\n\
# HELP dsp_serve_http_request_seconds End-to-end HTTP request latency.\n\
# TYPE dsp_serve_http_request_seconds histogram\n\
dsp_serve_http_request_seconds_bucket{endpoint=\"compile\",le=\"0.001\"} 2\n\
dsp_serve_http_request_seconds_bucket{endpoint=\"compile\",le=\"0.01\"} 9\n\
dsp_serve_http_request_seconds_bucket{endpoint=\"compile\",le=\"+Inf\"} 10\n\
dsp_serve_http_request_seconds_sum{endpoint=\"compile\"} 0.5\n\
dsp_serve_http_request_seconds_count{endpoint=\"compile\"} 10\n\
dsp_serve_up 1\n";

    #[test]
    fn families_group_their_series_including_histogram_suffixes() {
        let families = parse(SCRAPE);
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "dsp_serve_requests_total",
                "dsp_serve_http_request_seconds",
                "dsp_serve_up"
            ]
        );
        assert_eq!(families[0].kind, "counter");
        assert_eq!(families[0].samples.len(), 2);
        assert_eq!(families[1].kind, "histogram");
        assert_eq!(families[1].samples.len(), 5);
        assert_eq!(families[2].kind, "untyped");
        let s = &families[0].samples[1];
        assert_eq!(s.label("status"), Some("502"));
        assert!((s.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_values_unescape_and_inf_parses() {
        let families = parse("m{path=\"a\\\"b\\\\c\\nd\"} 3\nh_bucket{le=\"+Inf\"} 4\ng +Inf\n");
        assert_eq!(families[0].samples[0].label("path"), Some("a\"b\\c\nd"));
        assert_eq!(families[1].samples[0].label("le"), Some("+Inf"));
        assert!(families[2].samples[0].value.is_infinite());
    }

    #[test]
    fn histogram_views_rebuild_cumulative_buckets() {
        let families = parse(SCRAPE);
        let views = histogram_views(&families[1]);
        assert_eq!(views.len(), 1);
        let v = &views[0];
        assert_eq!(
            v.labels,
            vec![("endpoint".to_string(), "compile".to_string())]
        );
        assert_eq!(v.buckets, vec![(0.001, 2), (0.01, 9)]);
        assert_eq!(v.count, 10);
        assert!((v.sum_seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_match_the_histogram_snapshot_rule() {
        // Hand-computed against HistogramSnapshot::quantile semantics:
        // rank = ceil(q * count) clamped to 1..=count, resolved to the
        // holding bucket's upper bound.
        let v = HistogramView {
            labels: Vec::new(),
            buckets: vec![(0.001, 90), (0.01, 99)],
            count: 100,
            sum_seconds: 1.0,
        };
        assert!((v.quantile(0.5) - 0.001).abs() < 1e-12); // rank 50 in first bucket
        assert!((v.quantile(0.9) - 0.001).abs() < 1e-12); // rank 90 still inside
        assert!((v.quantile(0.95) - 0.01).abs() < 1e-12); // rank 95 spills over
                                                          // rank 100 is past every finite bucket: floor to the last bound.
        assert!((v.quantile(1.0) - 0.01).abs() < 1e-12);
        assert_eq!(HistogramView::default().quantile(0.99), 0.0);
    }

    #[test]
    fn merging_views_adds_per_bucket_counts() {
        let mut a = HistogramView {
            labels: Vec::new(),
            buckets: vec![(0.001, 5), (0.01, 8)],
            count: 8,
            sum_seconds: 0.2,
        };
        let b = HistogramView {
            labels: Vec::new(),
            buckets: vec![(0.001, 1), (0.1, 3)],
            count: 3,
            sum_seconds: 0.3,
        };
        a.merge(&b);
        assert_eq!(a.buckets, vec![(0.001, 6), (0.01, 9), (0.1, 11)]);
        assert_eq!(a.count, 11);
        assert!((a.sum_seconds - 0.5).abs() < 1e-12);
    }
}
