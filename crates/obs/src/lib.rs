//! dsp-obs: the fleet observability plane.
//!
//! The serving tier already exposes per-process observability —
//! `/metrics` on every node, `/debug/trace` span rings on the router
//! and the replicas, `X-Dsp-Traceparent` carrying one trace id across
//! the router hop. This crate is the collector that turns those
//! per-process surfaces into one fleet-level view:
//!
//! * **[`prom`]** — text-exposition parser and histogram arithmetic
//!   (fleet-merged quantiles by the tracer's conservative rule).
//! * **[`fleet`]** — named targets, scraping, counter totals/deltas,
//!   per-endpoint latency merging.
//! * **[`slo`]** — availability and p99 objectives with multi-window
//!   error-budget burn rates.
//! * **[`stitch`]** — cross-process span joins per trace id and the
//!   merged Perfetto export (one `pid` track per node).
//! * **[`snapshot`]** — the deterministic `dualbank-obs/v1` JSON
//!   document.
//!
//! Three subcommands ride on those pieces: `snapshot` (one poll, one
//! JSON document), `export --trace-id` (one stitched Perfetto file),
//! and `watch` (a terminal ticker with rates and burn verdicts).
//!
//! See docs/observability.md ("Fleet view") for the workflow.

pub mod fleet;
pub mod prom;
pub mod slo;
pub mod snapshot;
pub mod stitch;

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use fleet::{NodeView, Target};
use slo::{SloConfig, WindowSample};

/// Everything the CLI resolves before dispatching a subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    pub mode: String,
    pub targets: Vec<Target>,
    pub trace_id: Option<String>,
    pub out: Option<String>,
    pub timeout: Duration,
    pub interval: Duration,
    /// Watch rounds; 0 = run until interrupted.
    pub rounds: u64,
    pub trace_depth: usize,
    pub slo: SloConfig,
}

/// Parse `dualbank obs` / `dsp-obs` arguments.
///
/// # Errors
///
/// Returns a usage message on an unknown mode/flag or a bad value.
pub fn config_from_args(args: &[String]) -> Result<ObsConfig, String> {
    let mut config = ObsConfig {
        mode: String::new(),
        targets: Vec::new(),
        trace_id: None,
        out: None,
        timeout: Duration::from_millis(5000),
        interval: Duration::from_millis(2000),
        rounds: 0,
        trace_depth: 4096,
        slo: SloConfig::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "snapshot" | "export" | "watch" if config.mode.is_empty() => {
                config.mode = arg.clone();
            }
            "--target" => config
                .targets
                .push(fleet::parse_target(&flag_value("--target")?)?),
            "--targets" => {
                for spec in flag_value("--targets")?.split(',') {
                    let spec = spec.trim();
                    if !spec.is_empty() {
                        config.targets.push(fleet::parse_target(spec)?);
                    }
                }
            }
            "--trace-id" => config.trace_id = Some(flag_value("--trace-id")?),
            "--out" => config.out = Some(flag_value("--out")?),
            "--timeout-ms" => {
                config.timeout =
                    Duration::from_millis(parse_num("--timeout-ms", &flag_value("--timeout-ms")?)?);
            }
            "--interval-ms" => {
                config.interval = Duration::from_millis(parse_num(
                    "--interval-ms",
                    &flag_value("--interval-ms")?,
                )?);
            }
            "--rounds" => config.rounds = parse_num("--rounds", &flag_value("--rounds")?)?,
            "--trace-depth" => {
                config.trace_depth =
                    usize::try_from(parse_num("--trace-depth", &flag_value("--trace-depth")?)?)
                        .unwrap_or(4096)
                        .clamp(1, 4096);
            }
            "--availability-target" => {
                let v = flag_value("--availability-target")?;
                let t: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --availability-target value '{v}'"))?;
                if !(0.0..1.0).contains(&t) {
                    return Err(format!("--availability-target must be in [0, 1), got {t}"));
                }
                config.slo.availability_target = t;
            }
            "--p99-target-ms" => {
                config.slo.p99_target_seconds =
                    parse_num("--p99-target-ms", &flag_value("--p99-target-ms")?)? as f64 / 1e3;
            }
            "--page-burn-rate" => {
                let v = flag_value("--page-burn-rate")?;
                config.slo.page_burn_rate = v
                    .parse()
                    .map_err(|_| format!("bad --page-burn-rate value '{v}'"))?;
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if config.mode.is_empty() {
        return Err(format!(
            "a mode is required: snapshot | export | watch\n{}",
            usage()
        ));
    }
    if config.targets.is_empty() {
        return Err(format!(
            "at least one --target NAME=HOST:PORT is required\n{}",
            usage()
        ));
    }
    if config.mode == "export" && config.trace_id.is_none() {
        return Err(
            "export needs --trace-id HEX (see `obs snapshot` for the trace index)".to_string(),
        );
    }
    Ok(config)
}

fn parse_num(flag: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("bad {flag} value '{v}'"))
}

#[must_use]
pub fn usage() -> String {
    "usage: dsp-obs <snapshot|export|watch> --target NAME=HOST:PORT [...]\n\
     \n\
     Fleet observability plane: polls /metrics and /debug/trace from\n\
     every target, aggregates counters and latency quantiles, checks\n\
     SLO burn rates, and stitches per-process spans into one trace.\n\
     \n\
     modes:\n\
     \x20 snapshot               one poll, one deterministic JSON document\n\
     \x20 export --trace-id HEX  merge one trace's spans from every node\n\
     \x20                        into a single Perfetto/chrome file\n\
     \x20 watch                  periodic terminal ticker (rates + burn)\n\
     \n\
     options:\n\
     \x20 --target NAME=HOST:PORT    add a scrape target (repeatable)\n\
     \x20 --targets A=X,B=Y          add several targets at once\n\
     \x20 --trace-id HEX             trace to export (16 hex digits)\n\
     \x20 --out PATH                 write output here instead of stdout\n\
     \x20 --timeout-ms MS            per-request scrape budget (default 5000)\n\
     \x20 --interval-ms MS           watch poll interval (default 2000)\n\
     \x20 --rounds N                 watch rounds, 0 = forever (default 0)\n\
     \x20 --trace-depth N            spans requested per node (default 4096)\n\
     \x20 --availability-target F    availability SLO (default 0.999)\n\
     \x20 --p99-target-ms MS         latency SLO on p99 (default 500)\n\
     \x20 --page-burn-rate F         paging burn threshold (default 14.4)\n"
        .to_string()
}

/// Entry point behind `dualbank obs` and the `dsp-obs` binary.
///
/// # Errors
///
/// Returns a message on bad flags, unreachable output paths, or an
/// export of a trace no node has spans for.
pub fn run_obs(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return Ok(());
    }
    let config = config_from_args(args)?;
    match config.mode.as_str() {
        "snapshot" => {
            let nodes = scrape_all(&config);
            emit(&config, &snapshot::render(&nodes, &config.slo))
        }
        "export" => {
            let trace_id = config.trace_id.clone().unwrap_or_default();
            let nodes = scrape_all(&config);
            let spans = stitch::stitch(&nodes, &trace_id);
            if spans.is_empty() {
                let with_spans: Vec<&str> = nodes
                    .iter()
                    .filter(|n| n.traced)
                    .map(|n| n.target.name.as_str())
                    .collect();
                return Err(format!(
                    "no spans for trace {trace_id} on any target (traced nodes: {})",
                    if with_spans.is_empty() {
                        "none".to_string()
                    } else {
                        with_spans.join(", ")
                    }
                ));
            }
            let nodes_hit: Vec<&str> = spans
                .iter()
                .map(|(i, _)| nodes[*i].target.name.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            eprintln!(
                "dsp-obs: trace {trace_id}: {} span(s) across {}",
                spans.len(),
                nodes_hit.join(", ")
            );
            emit(&config, &stitch::chrome_export(&nodes, &spans))
        }
        "watch" => watch(&config),
        other => Err(format!("unknown mode '{other}'\n{}", usage())),
    }
}

fn scrape_all(config: &ObsConfig) -> Vec<NodeView> {
    config
        .targets
        .iter()
        .map(|t| fleet::scrape(t, config.timeout, config.trace_depth))
        .collect()
}

fn emit(config: &ObsConfig, document: &str) -> Result<(), String> {
    match &config.out {
        Some(path) => {
            std::fs::write(path, document).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("dsp-obs: wrote {} bytes to {path}", document.len());
            Ok(())
        }
        None => {
            print!("{document}");
            Ok(())
        }
    }
}

/// Sliding-window history for the watch ticker: one entry per poll.
struct PollPoint {
    at: Duration,
    edge: WindowSample,
    requests: f64,
}

/// The availability sample accumulated over the trailing `window`.
fn window_sample(history: &VecDeque<PollPoint>, now: Duration, window: Duration) -> WindowSample {
    let cutoff = now.saturating_sub(window);
    let mut oldest: Option<&PollPoint> = None;
    for p in history {
        if p.at >= cutoff {
            oldest = Some(p);
            break;
        }
    }
    let (Some(first), Some(last)) = (oldest, history.back()) else {
        return WindowSample::default();
    };
    WindowSample {
        total: (last.edge.total - first.edge.total).max(0.0),
        errors: (last.edge.errors - first.edge.errors).max(0.0),
    }
}

/// Short / long alerting windows for the watch ticker.
const SHORT_WINDOW: Duration = Duration::from_secs(60);
const LONG_WINDOW: Duration = Duration::from_secs(300);

fn watch(config: &ObsConfig) -> Result<(), String> {
    let started = Instant::now();
    let mut history: VecDeque<PollPoint> = VecDeque::new();
    let mut round = 0u64;
    loop {
        let nodes = scrape_all(config);
        let now = started.elapsed();
        let up = nodes.iter().filter(|n| n.up).count();
        let (total, errors) = fleet::edge_requests(&nodes);
        let requests: f64 = fleet::counter_totals(&nodes)
            .get("dsp_serve_requests_total")
            .copied()
            .unwrap_or(total);
        let rate = history.back().map_or(0.0, |prev| {
            let dt = (now - prev.at).as_secs_f64();
            if dt > 0.0 {
                ((requests - prev.requests) / dt).max(0.0)
            } else {
                0.0
            }
        });
        history.push_back(PollPoint {
            at: now,
            edge: WindowSample { total, errors },
            requests,
        });
        while history
            .front()
            .is_some_and(|p| now - p.at > LONG_WINDOW + config.interval)
        {
            history.pop_front();
        }
        let short = window_sample(&history, now, SHORT_WINDOW);
        let long = window_sample(&history, now, LONG_WINDOW);
        let avail = slo::availability_verdict(&config.slo, short, long);
        let worst = fleet::LATENCY_FAMILIES
            .iter()
            .flat_map(|f| fleet::endpoint_latency(&nodes, f))
            .filter(|(_, v)| v.count > 0)
            .map(|(e, v)| (e, v.quantile(0.99)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let p99 = worst.as_ref().map_or_else(
            || "p99 n/a".to_string(),
            |(e, q)| format!("p99 {e} {:.1}ms", q * 1e3),
        );
        println!(
            "[obs +{:>6.1}s] up {up}/{} · req {} ({rate:.1}/s) · err {} · burn short {:.2} long {:.2}{} · {p99}",
            now.as_secs_f64(),
            nodes.len(),
            snapshot::number(total),
            snapshot::number(errors),
            avail.short_burn,
            avail.long_burn,
            if avail.page { " · PAGE" } else { "" },
        );
        round += 1;
        if config.rounds > 0 && round >= config.rounds {
            return Ok(());
        }
        std::thread::sleep(config.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn args_round_trip_into_a_config() {
        let config = config_from_args(&args(&[
            "snapshot",
            "--target",
            "router=127.0.0.1:8300",
            "--targets",
            "serve-a=127.0.0.1:8301, serve-b=127.0.0.1:8302",
            "--timeout-ms",
            "750",
            "--trace-depth",
            "128",
            "--availability-target",
            "0.99",
            "--p99-target-ms",
            "250",
        ]))
        .expect("config");
        assert_eq!(config.mode, "snapshot");
        let names: Vec<&str> = config.targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["router", "serve-a", "serve-b"]);
        assert_eq!(config.timeout, Duration::from_millis(750));
        assert_eq!(config.trace_depth, 128);
        assert!((config.slo.availability_target - 0.99).abs() < 1e-12);
        assert!((config.slo.p99_target_seconds - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missing_mode_targets_or_trace_id_are_usage_errors() {
        assert!(config_from_args(&args(&["--target", "a=b:1"]))
            .unwrap_err()
            .contains("mode is required"));
        assert!(config_from_args(&args(&["snapshot"]))
            .unwrap_err()
            .contains("--target"));
        assert!(config_from_args(&args(&["export", "--target", "a=b:1"]))
            .unwrap_err()
            .contains("--trace-id"));
        assert!(
            config_from_args(&args(&["snapshot", "--target", "nonsense"]))
                .unwrap_err()
                .contains("NAME=HOST:PORT")
        );
    }

    #[test]
    fn window_samples_take_the_trailing_slice() {
        let mut history = VecDeque::new();
        for (t, total, errors) in [(0u64, 0.0, 0.0), (60, 100.0, 1.0), (120, 300.0, 9.0)] {
            history.push_back(PollPoint {
                at: Duration::from_secs(t),
                edge: WindowSample { total, errors },
                requests: total,
            });
        }
        let now = Duration::from_secs(120);
        // The trailing 60s window spans the last two polls.
        let short = window_sample(&history, now, Duration::from_secs(60));
        assert!((short.total - 200.0).abs() < 1e-9);
        assert!((short.errors - 8.0).abs() < 1e-9);
        // The long window reaches back to the first poll.
        let long = window_sample(&history, now, Duration::from_secs(300));
        assert!((long.total - 300.0).abs() < 1e-9);
        assert!((long.errors - 9.0).abs() < 1e-9);
    }
}
