//! Standalone observability binary; `dualbank obs` is the same front-end.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dsp_obs::run_obs(&args) {
        eprintln!("dsp-obs: {e}");
        std::process::exit(1);
    }
}
