//! The deterministic fleet snapshot (`dualbank obs snapshot`).
//!
//! One JSON document summarizing a single poll: per-target liveness,
//! fleet-summed counters, per-endpoint latency quantiles, SLO
//! verdicts, and the cross-process trace index. Given identical
//! scrape results the document is byte-identical — maps render in
//! sorted order and floats with fixed precision — so goldens and CI
//! greps can rely on its shape.

use std::fmt::Write as _;

use dsp_trace::export::escape;

use crate::fleet::{self, NodeView};
use crate::slo::{self, SloConfig, WindowSample};
use crate::stitch;

/// A float with stable rendering: integers bare, the rest at fixed
/// six-decimal precision.
#[must_use]
pub fn number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

/// Render the `dualbank-obs/v1` snapshot document.
#[must_use]
pub fn render(nodes: &[NodeView], cfg: &SloConfig) -> String {
    let mut out = String::from("{\n  \"schema\": \"dualbank-obs/v1\",\n  \"targets\": [");
    for (i, node) in nodes.iter().enumerate() {
        let _ = write!(
            out,
            "{}    {{\"name\": \"{}\", \"addr\": \"{}\", \"up\": {}, \"traced\": {}, \
             \"spans\": {}, \"error\": {}}}",
            if i == 0 { "\n" } else { ",\n" },
            escape(&node.target.name),
            escape(&node.target.addr),
            node.up,
            node.traced,
            node.spans.len(),
            node.error
                .as_ref()
                .map_or_else(|| "null".to_string(), |e| format!("\"{}\"", escape(e))),
        );
    }
    out.push_str("\n  ],\n  \"counters\": {");
    let totals = fleet::counter_totals(nodes);
    for (i, (name, value)) in totals.iter().enumerate() {
        let _ = write!(
            out,
            "{}    \"{}\": {}",
            if i == 0 { "\n" } else { ",\n" },
            escape(name),
            number(*value),
        );
    }
    out.push_str("\n  },\n  \"latency\": [");
    let mut first = true;
    for family in fleet::LATENCY_FAMILIES {
        for (endpoint, view) in fleet::endpoint_latency(nodes, family) {
            let _ = write!(
                out,
                "{}    {{\"family\": \"{family}\", \"endpoint\": \"{}\", \"count\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                if first { "\n" } else { ",\n" },
                escape(&endpoint),
                view.count,
                number(view.quantile(0.5)),
                number(view.quantile(0.9)),
                number(view.quantile(0.99)),
            );
            first = false;
        }
    }
    out.push_str("\n  ],\n  \"slo\": ");
    out.push_str(&render_slo(nodes, cfg));
    out.push_str(",\n  \"traces\": [");
    for (i, t) in stitch::trace_index(nodes).iter().enumerate() {
        let nodes_list = t
            .nodes
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "{}    {{\"trace\": \"{}\", \"spans\": {}, \"nodes\": [{nodes_list}], \"root\": {}}}",
            if i == 0 { "\n" } else { ",\n" },
            escape(&t.trace),
            t.span_count,
            t.root
                .as_ref()
                .map_or_else(|| "null".to_string(), |r| format!("\"{}\"", escape(r))),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The SLO object: a single poll has no window history, so both the
/// short and the long availability window degenerate to the fleet's
/// lifetime totals (watch mode keeps real sliding windows).
fn render_slo(nodes: &[NodeView], cfg: &SloConfig) -> String {
    let (total, errors) = fleet::edge_requests(nodes);
    let lifetime = WindowSample { total, errors };
    let avail = slo::availability_verdict(cfg, lifetime, lifetime);
    let worst = fleet::LATENCY_FAMILIES
        .iter()
        .flat_map(|f| fleet::endpoint_latency(nodes, f))
        .filter(|(_, v)| v.count > 0)
        .map(|(endpoint, v)| (endpoint, v.quantile(0.99)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (worst_endpoint, worst_p99) = worst.unwrap_or_else(|| ("none".to_string(), 0.0));
    let latency = slo::latency_verdict(cfg, worst_p99, worst_p99);
    format!(
        "{{\n    \"availability\": {{\"target\": {}, \"total\": {}, \"errors\": {}, \
         \"burn\": {}, \"page\": {}}},\n    \
         \"latency_p99\": {{\"target_seconds\": {}, \"worst_endpoint\": \"{}\", \
         \"p99_seconds\": {}, \"ratio\": {}, \"page\": {}}}\n  }}",
        number(cfg.availability_target),
        number(total),
        number(errors),
        number(avail.long_burn),
        avail.page,
        number(cfg.p99_target_seconds),
        escape(&worst_endpoint),
        number(worst_p99),
        number(latency.long_burn),
        latency.page,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Target;
    use crate::prom;

    fn node(name: &str, metrics: &str) -> NodeView {
        NodeView {
            target: Target {
                name: name.to_string(),
                addr: "127.0.0.1:1".to_string(),
            },
            up: true,
            error: None,
            families: prom::parse(metrics),
            traced: false,
            spans: Vec::new(),
        }
    }

    #[test]
    fn snapshot_is_deterministic_and_carries_every_section() {
        let metrics = "\
# TYPE dsp_serve_requests_total counter\n\
dsp_serve_requests_total{endpoint=\"compile\",status=\"200\"} 9\n\
dsp_serve_requests_total{endpoint=\"compile\",status=\"500\"} 1\n\
# TYPE dsp_serve_http_request_seconds histogram\n\
dsp_serve_http_request_seconds_bucket{endpoint=\"compile\",status=\"200\",le=\"0.01\"} 10\n\
dsp_serve_http_request_seconds_bucket{endpoint=\"compile\",status=\"200\",le=\"+Inf\"} 10\n\
dsp_serve_http_request_seconds_count{endpoint=\"compile\",status=\"200\"} 10\n";
        let nodes = vec![node("serve-a", metrics)];
        let cfg = SloConfig::default();
        let a = render(&nodes, &cfg);
        let b = render(&nodes, &cfg);
        assert_eq!(a, b, "identical scrapes must render byte-identically");
        assert!(a.contains("\"schema\": \"dualbank-obs/v1\""));
        assert!(a.contains("\"dsp_serve_requests_total\": 10"));
        assert!(a.contains("\"endpoint\": \"compile\", \"count\": 10"));
        // 1 error in 10 requests at a 99.9% target burns 100x budget.
        assert!(a.contains("\"burn\": 100"), "snapshot: {a}");
        assert!(a.contains("\"traces\": ["));
    }

    #[test]
    fn numbers_render_stably() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.5), "0.500000");
        assert_eq!(number(0.001), "0.001000");
    }
}
