//! Cross-process trace stitching.
//!
//! Every node exports spans with 16-hex-digit trace/span/parent ids;
//! the router propagates its context upstream via `X-Dsp-Traceparent`,
//! so one routed request leaves spans with the same trace id in the
//! router's ring *and* in every replica it touched. This module joins
//! those per-node dumps into fleet-level views:
//!
//! * [`trace_index`] — which traces exist, how many spans each has,
//!   and which nodes contributed them.
//! * [`stitch`] + [`chrome_export`] — one Perfetto/chrome-tracing
//!   document per trace, with each node on its own `pid` track
//!   (named via `process_name` metadata events) and parent links
//!   preserved in `args`.
//!
//! Timestamps are each process's own monotonic microseconds; the
//! export rebases every node's spans so its earliest span in the trace
//! starts at zero. Tracks therefore align at their starts, not by a
//! shared wall clock — ordering *within* a node is exact, ordering
//! across nodes is by parent links.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dsp_trace::export::escape;

use crate::fleet::{NodeView, SpanRec};

/// Summary of one trace id across the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub trace: String,
    pub span_count: usize,
    /// Names of the nodes that contributed spans, in target order.
    pub nodes: Vec<String>,
    /// Name of the root span (no parent), when one was captured.
    pub root: Option<String>,
}

/// Index every trace id seen across the fleet, ordered by trace id.
#[must_use]
pub fn trace_index(nodes: &[NodeView]) -> Vec<TraceSummary> {
    let mut by_trace: BTreeMap<&str, TraceSummary> = BTreeMap::new();
    for node in nodes {
        for span in &node.spans {
            let entry = by_trace
                .entry(span.trace.as_str())
                .or_insert_with(|| TraceSummary {
                    trace: span.trace.clone(),
                    span_count: 0,
                    nodes: Vec::new(),
                    root: None,
                });
            entry.span_count += 1;
            if !entry.nodes.contains(&node.target.name) {
                entry.nodes.push(node.target.name.clone());
            }
            if span.parent.is_none() {
                entry.root = Some(span.name.clone());
            }
        }
    }
    by_trace.into_values().collect()
}

/// All spans of one trace, tagged with the index of the node that
/// recorded them, in (node, ring) order.
#[must_use]
pub fn stitch<'a>(nodes: &'a [NodeView], trace_id: &str) -> Vec<(usize, &'a SpanRec)> {
    let mut out = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        for span in &node.spans {
            if span.trace == trace_id {
                out.push((i, span));
            }
        }
    }
    out
}

/// Render stitched spans as a Chrome trace-event document. Each node
/// becomes its own process track: `pid = node index + 1`, named by a
/// `process_name` metadata event, so one file shows the router and
/// every replica side by side under a single trace id.
#[must_use]
pub fn chrome_export(nodes: &[NodeView], spans: &[(usize, &SpanRec)]) -> String {
    // Rebase each participating node to its earliest span.
    let mut base: BTreeMap<usize, u64> = BTreeMap::new();
    for (i, span) in spans {
        let b = base.entry(*i).or_insert(u64::MAX);
        *b = (*b).min(span.start_us);
    }
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&event);
    };
    for &i in base.keys() {
        push(
            &mut out,
            format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                i + 1,
                escape(&nodes[i].target.name),
            ),
        );
    }
    let mut ordered: Vec<&(usize, &SpanRec)> = spans.iter().collect();
    ordered.sort_by_key(|(i, s)| (*i, s.start_us, s.span.clone()));
    for (i, s) in ordered {
        let mut event = format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {}, \
             \"ts\": {}, \"dur\": {}, \"args\": {{\"trace\": \"{}\", \"span\": \"{}\"",
            escape(&s.name),
            escape(&s.cat),
            i + 1,
            s.tid,
            s.start_us - base[i],
            s.dur_us,
            escape(&s.trace),
            escape(&s.span),
        );
        if let Some(parent) = &s.parent {
            let _ = write!(event, ", \"parent\": \"{}\"", escape(parent));
        }
        let _ = write!(event, ", \"node\": \"{}\"", escape(&nodes[*i].target.name));
        for (k, v) in &s.args {
            let _ = write!(event, ", \"{}\": \"{}\"", escape(k), escape(v));
        }
        event.push_str("}}");
        push(&mut out, event);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Target;

    fn span(trace: &str, span_id: &str, parent: Option<&str>, name: &str, start: u64) -> SpanRec {
        SpanRec {
            trace: trace.to_string(),
            span: span_id.to_string(),
            parent: parent.map(str::to_string),
            name: name.to_string(),
            cat: "t".to_string(),
            tid: 1,
            start_us: start,
            dur_us: 5,
            args: Vec::new(),
        }
    }

    fn node(name: &str, spans: Vec<SpanRec>) -> NodeView {
        NodeView {
            target: Target {
                name: name.to_string(),
                addr: "127.0.0.1:0".to_string(),
            },
            up: true,
            error: None,
            families: Vec::new(),
            traced: true,
            spans,
        }
    }

    fn fleet() -> Vec<NodeView> {
        vec![
            node(
                "router",
                vec![
                    span("aa", "01", None, "router.request", 1000),
                    span("aa", "02", Some("01"), "router.upstream", 1010),
                ],
            ),
            node(
                "serve-a",
                vec![
                    span("aa", "03", Some("02"), "http.request", 50),
                    span("bb", "04", None, "http.request", 80),
                ],
            ),
        ]
    }

    #[test]
    fn trace_index_groups_spans_by_trace_across_nodes() {
        let idx = trace_index(&fleet());
        assert_eq!(idx.len(), 2);
        let aa = &idx[0];
        assert_eq!(aa.trace, "aa");
        assert_eq!(aa.span_count, 3);
        assert_eq!(aa.nodes, vec!["router", "serve-a"]);
        assert_eq!(aa.root.as_deref(), Some("router.request"));
        assert_eq!(idx[1].nodes, vec!["serve-a"]);
    }

    #[test]
    fn stitch_collects_exactly_one_traces_spans() {
        let nodes = fleet();
        let spans = stitch(&nodes, "aa");
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|(_, s)| s.trace == "aa"));
    }

    #[test]
    fn chrome_export_gives_each_node_its_own_named_pid() {
        let nodes = fleet();
        let spans = stitch(&nodes, "aa");
        let doc = chrome_export(&nodes, &spans);
        assert!(doc.contains(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {\"name\": \"router\"}}"
        ));
        assert!(doc.contains(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \
             \"args\": {\"name\": \"serve-a\"}}"
        ));
        // Parent links survive, and the replica span keeps its link to
        // the router's upstream span.
        assert!(doc.contains("\"parent\": \"02\""));
        // Each node's track is rebased to its own earliest span.
        assert!(doc.contains("\"pid\": 1, \"tid\": 1, \"ts\": 0"));
        assert!(doc.contains("\"pid\": 2, \"tid\": 1, \"ts\": 0"));
        // Events are complete-phase and carry the node name.
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"node\": \"serve-a\""));
    }
}
