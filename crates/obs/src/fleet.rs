//! Fleet scraping: named targets, their `/metrics` and `/debug/trace`
//! surfaces, and cross-node aggregation of the results.
//!
//! A target is anything speaking the fleet's observability contract: a
//! `dsp-serve` replica, a `dsp-router`, or a `dsp-chaos` admin
//! endpoint (which has `/metrics` but no trace ring — the scrape
//! records that instead of failing).

use std::collections::BTreeMap;
use std::time::Duration;

use dsp_driver::json::{self, Value};
use dsp_serve::client::ClientConn;

use crate::prom::{self, Family};

/// One named scrape target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    pub name: String,
    pub addr: String,
}

/// Parse a `NAME=HOST:PORT` target spec.
///
/// # Errors
///
/// Returns a message naming the spec when it has no `=` or an empty
/// side.
pub fn parse_target(spec: &str) -> Result<Target, String> {
    let (name, addr) = spec
        .split_once('=')
        .ok_or_else(|| format!("target `{spec}` is not NAME=HOST:PORT"))?;
    let (name, addr) = (name.trim(), addr.trim());
    if name.is_empty() || addr.is_empty() {
        return Err(format!("target `{spec}` is not NAME=HOST:PORT"));
    }
    Ok(Target {
        name: name.to_string(),
        addr: addr.to_string(),
    })
}

/// One span parsed back from a node's `/debug/trace` dump. IDs stay in
/// their 16-hex-digit wire form so they join across processes exactly
/// as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub trace: String,
    pub span: String,
    /// `None` for a root span (`"parent": null` on the wire).
    pub parent: Option<String>,
    pub name: String,
    pub cat: String,
    pub tid: u64,
    pub start_us: u64,
    pub dur_us: u64,
    pub args: Vec<(String, String)>,
}

/// Everything one poll learned about one target.
#[derive(Debug, Clone)]
pub struct NodeView {
    pub target: Target,
    /// `/metrics` answered 200 and parsed.
    pub up: bool,
    /// Why the node counts as down, when it does.
    pub error: Option<String>,
    pub families: Vec<Family>,
    /// The node exposes `/debug/trace` (chaos admin endpoints do not).
    pub traced: bool,
    pub spans: Vec<SpanRec>,
}

/// Scrape one target: `/metrics` always, `/debug/trace` when served.
/// Network failures mark the node down rather than erroring out — a
/// fleet view with a hole in it beats no view at all.
#[must_use]
pub fn scrape(target: &Target, timeout: Duration, trace_depth: usize) -> NodeView {
    let mut view = NodeView {
        target: target.clone(),
        up: false,
        error: None,
        families: Vec::new(),
        traced: false,
        spans: Vec::new(),
    };
    match fetch(&target.addr, "/metrics", timeout) {
        Ok((200, body)) => {
            view.families = prom::parse(&body);
            view.up = true;
        }
        Ok((status, _)) => view.error = Some(format!("/metrics answered {status}")),
        Err(e) => view.error = Some(e),
    }
    if !view.up {
        return view;
    }
    // Anything but a parseable 200 means no trace ring on this node
    // (chaos admin, --no-trace) — not an error.
    if let Ok((200, body)) = fetch(
        &target.addr,
        &format!("/debug/trace?n={trace_depth}"),
        timeout,
    ) {
        match parse_trace_dump(&body) {
            Ok(spans) => {
                view.traced = true;
                view.spans = spans;
            }
            Err(e) => view.error = Some(format!("/debug/trace unparseable: {e}")),
        }
    }
    view
}

fn fetch(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let mut conn = ClientConn::connect(addr, timeout).map_err(|e| format!("connect: {e}"))?;
    let resp = conn
        .request("GET", path, None)
        .map_err(|e| format!("GET {path}: {e}"))?;
    Ok((resp.status, resp.text()))
}

/// Parse a `dualbank-trace/v1` document into span records.
///
/// # Errors
///
/// Returns a message when the document is not valid trace JSON.
pub fn parse_trace_dump(body: &str) -> Result<Vec<SpanRec>, String> {
    let doc = json::parse(body).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Value::as_str) != Some("dualbank-trace/v1") {
        return Err("not a dualbank-trace/v1 document".to_string());
    }
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("no spans[] array")?;
    let mut out = Vec::with_capacity(spans.len());
    for s in spans {
        let str_field = |k: &str| s.get(k).and_then(Value::as_str).map(str::to_string);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let num_field = |k: &str| s.get(k).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let mut args = Vec::new();
        if let Some(Value::Object(map)) = s.get("args") {
            for (k, v) in map {
                if let Some(v) = v.as_str() {
                    args.push((k.clone(), v.to_string()));
                }
            }
        }
        out.push(SpanRec {
            trace: str_field("trace").ok_or("span without trace id")?,
            span: str_field("span").ok_or("span without span id")?,
            parent: str_field("parent"),
            name: str_field("name").unwrap_or_default(),
            cat: str_field("cat").unwrap_or_default(),
            tid: num_field("tid"),
            start_us: num_field("start_us"),
            dur_us: num_field("dur_us"),
            args,
        });
    }
    Ok(out)
}

/// Sum every counter family across the fleet, keyed by family name.
/// Gauges and histograms are skipped — only counters sum meaningfully.
#[must_use]
pub fn counter_totals(nodes: &[NodeView]) -> BTreeMap<String, f64> {
    let mut totals = BTreeMap::new();
    for node in nodes {
        for family in &node.families {
            if family.kind != "counter" {
                continue;
            }
            let sum: f64 = family.samples.iter().map(|s| s.value).sum();
            *totals.entry(family.name.clone()).or_insert(0.0) += sum;
        }
    }
    totals
}

/// Per-family deltas between two total maps (new counters appear with
/// their full value; counter resets clamp to zero rather than going
/// negative).
#[must_use]
pub fn counter_deltas(
    prev: &BTreeMap<String, f64>,
    cur: &BTreeMap<String, f64>,
) -> BTreeMap<String, f64> {
    cur.iter()
        .map(|(k, v)| {
            (
                k.clone(),
                (v - prev.get(k).copied().unwrap_or(0.0)).max(0.0),
            )
        })
        .collect()
}

/// Families that count client-facing requests with a `status` label —
/// the numerators and denominators of the availability SLO.
pub const EDGE_REQUEST_FAMILIES: [&str; 2] = [
    "dsp_router_client_requests_total",
    "dsp_serve_requests_total",
];

/// Fleet-wide `(total, 5xx-or-error)` request counts from the edge
/// request families.
#[must_use]
pub fn edge_requests(nodes: &[NodeView]) -> (f64, f64) {
    let mut total = 0.0;
    let mut errors = 0.0;
    for node in nodes {
        for family in &node.families {
            if !EDGE_REQUEST_FAMILIES.contains(&family.name.as_str()) {
                continue;
            }
            for s in &family.samples {
                total += s.value;
                let failed = match s.label("status") {
                    Some(status) => status == "error" || status.starts_with('5'),
                    None => false,
                };
                if failed {
                    errors += s.value;
                }
            }
        }
    }
    (total, errors)
}

/// Latency histogram families whose quantiles the plane reports,
/// merged across the fleet and across `status` (grouped by endpoint).
pub const LATENCY_FAMILIES: [&str; 2] = [
    "dsp_router_request_seconds",
    "dsp_serve_http_request_seconds",
];

/// Fleet-merged per-endpoint latency views for one family name.
#[must_use]
pub fn endpoint_latency(
    nodes: &[NodeView],
    family_name: &str,
) -> Vec<(String, prom::HistogramView)> {
    let mut merged: BTreeMap<String, prom::HistogramView> = BTreeMap::new();
    for node in nodes {
        for family in &node.families {
            if family.name != family_name || family.kind != "histogram" {
                continue;
            }
            for view in prom::histogram_views(family) {
                let endpoint = view
                    .labels
                    .iter()
                    .find(|(k, _)| k == "endpoint")
                    .map_or_else(|| "all".to_string(), |(_, v)| v.clone());
                match merged.get_mut(&endpoint) {
                    Some(acc) => acc.merge(&view),
                    None => {
                        merged.insert(endpoint, view);
                    }
                }
            }
        }
    }
    merged.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, metrics: &str) -> NodeView {
        NodeView {
            target: Target {
                name: name.to_string(),
                addr: "127.0.0.1:0".to_string(),
            },
            up: true,
            error: None,
            families: prom::parse(metrics),
            traced: false,
            spans: Vec::new(),
        }
    }

    #[test]
    fn target_specs_parse_and_reject_malformed_forms() {
        let t = parse_target("router=127.0.0.1:8300").expect("valid spec");
        assert_eq!(t.name, "router");
        assert_eq!(t.addr, "127.0.0.1:8300");
        assert!(parse_target("just-a-name").is_err());
        assert!(parse_target("=addr").is_err());
        assert!(parse_target("name=").is_err());
    }

    #[test]
    fn trace_dumps_round_trip_into_span_records() {
        let body = "{\"schema\": \"dualbank-trace/v1\", \"dropped\": 0, \"spans\": [\n\
            {\"trace\": \"00000000000000aa\", \"span\": \"00000000000000bb\", \
             \"parent\": null, \"name\": \"http.request\", \"cat\": \"serve\", \
             \"tid\": 3, \"start_us\": 10, \"dur_us\": 25, \
             \"args\": {\"request_id\": \"r-1\"}}]}";
        let spans = parse_trace_dump(body).expect("parse");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, "00000000000000aa");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].dur_us, 25);
        assert_eq!(
            spans[0].args,
            vec![("request_id".to_string(), "r-1".to_string())]
        );
        assert!(parse_trace_dump("{\"schema\": \"other\"}").is_err());
    }

    #[test]
    fn counter_totals_sum_across_nodes_and_deltas_clamp() {
        let a = node(
            "a",
            "# TYPE x_total counter\nx_total 3\n# TYPE g gauge\ng 9\n",
        );
        let b = node("b", "# TYPE x_total counter\nx_total{k=\"v\"} 4\n");
        let totals = counter_totals(&[a, b]);
        assert_eq!(totals.get("x_total").copied(), Some(7.0));
        assert!(!totals.contains_key("g"), "gauges must not sum");
        let mut prev = BTreeMap::new();
        prev.insert("x_total".to_string(), 9.0);
        let deltas = counter_deltas(&prev, &totals);
        assert_eq!(deltas.get("x_total").copied(), Some(0.0), "reset clamps");
    }

    #[test]
    fn edge_requests_split_errors_from_successes() {
        let metrics = "\
# TYPE dsp_router_client_requests_total counter\n\
dsp_router_client_requests_total{endpoint=\"compile\",status=\"200\"} 90\n\
dsp_router_client_requests_total{endpoint=\"compile\",status=\"502\"} 8\n\
dsp_router_client_requests_total{endpoint=\"sweep\",status=\"error\"} 2\n";
        let (total, errors) = edge_requests(&[node("router", metrics)]);
        assert!((total - 100.0).abs() < 1e-9);
        assert!((errors - 10.0).abs() < 1e-9);
    }

    #[test]
    fn endpoint_latency_merges_across_nodes_and_statuses() {
        let m = |c2: u64, c9: u64| {
            format!(
                "# TYPE dsp_serve_http_request_seconds histogram\n\
                 dsp_serve_http_request_seconds_bucket{{endpoint=\"sweep\",status=\"200\",le=\"0.01\"}} {c2}\n\
                 dsp_serve_http_request_seconds_bucket{{endpoint=\"sweep\",status=\"200\",le=\"+Inf\"}} {c2}\n\
                 dsp_serve_http_request_seconds_count{{endpoint=\"sweep\",status=\"200\"}} {c2}\n\
                 dsp_serve_http_request_seconds_bucket{{endpoint=\"sweep\",status=\"429\",le=\"0.01\"}} {c9}\n\
                 dsp_serve_http_request_seconds_bucket{{endpoint=\"sweep\",status=\"429\",le=\"+Inf\"}} {c9}\n\
                 dsp_serve_http_request_seconds_count{{endpoint=\"sweep\",status=\"429\"}} {c9}\n"
            )
        };
        let nodes = [node("a", &m(3, 1)), node("b", &m(5, 0))];
        let views = endpoint_latency(&nodes, "dsp_serve_http_request_seconds");
        assert_eq!(views.len(), 1, "statuses and nodes merge per endpoint");
        assert_eq!(views[0].0, "sweep");
        assert_eq!(views[0].1.count, 9);
        assert_eq!(views[0].1.buckets, vec![(0.01, 9)]);
    }
}
