//! Service-level objectives and multi-window burn rates.
//!
//! Two objectives cover the serving fleet:
//!
//! * **Availability** — the fraction of edge requests answered without
//!   a 5xx/transport error must stay above a target (default 99.9%).
//! * **Latency** — the p99 of edge request latency must stay under a
//!   target (default 500 ms).
//!
//! Availability is tracked as an error-budget **burn rate**: observed
//! error rate divided by the budgeted error rate `(1 - target)`. Burn
//! 1.0 spends the budget exactly at its sustainable pace; burn 14.4
//! spends a 30-day budget in ~2 days. Alerts use the standard
//! multi-window rule — page only when both a short and a long window
//! burn fast — so a brief spike (short window hot, long window cold)
//! and a slow leak (long hot, short recovered) are distinguished from
//! a real, ongoing incident.

/// Objective targets for the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Availability target in `(0, 1)`, e.g. `0.999`.
    pub availability_target: f64,
    /// p99 latency target in seconds.
    pub p99_target_seconds: f64,
    /// Burn rate at or above which both windows must sit to page.
    pub page_burn_rate: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            availability_target: 0.999,
            p99_target_seconds: 0.5,
            page_burn_rate: 14.4,
        }
    }
}

/// Request totals observed inside one alerting window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSample {
    pub total: f64,
    pub errors: f64,
}

/// Error-budget burn rate of one window: observed error rate over the
/// budgeted error rate. Zero when the window saw no traffic (no
/// requests cannot burn budget) or the budget is degenerate.
#[must_use]
pub fn burn_rate(availability_target: f64, window: WindowSample) -> f64 {
    let budget = 1.0 - availability_target;
    if window.total <= 0.0 || budget <= 0.0 {
        return 0.0;
    }
    (window.errors / window.total) / budget
}

/// One evaluated objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// `"availability"` or `"latency-p99"`.
    pub objective: &'static str,
    /// Short burn / long burn for availability; observed p99 over
    /// target for latency (a "burn"-like ratio: 1.0 = exactly at
    /// target).
    pub short_burn: f64,
    pub long_burn: f64,
    pub page: bool,
}

/// Evaluate availability over a short and a long window. Pages only
/// when *both* windows burn at or above the page rate.
#[must_use]
pub fn availability_verdict(
    cfg: &SloConfig,
    short: WindowSample,
    long: WindowSample,
) -> SloVerdict {
    let short_burn = burn_rate(cfg.availability_target, short);
    let long_burn = burn_rate(cfg.availability_target, long);
    SloVerdict {
        objective: "availability",
        short_burn,
        long_burn,
        page: short_burn >= cfg.page_burn_rate && long_burn >= cfg.page_burn_rate,
    }
}

/// Evaluate the latency objective from observed p99s (seconds) in the
/// short and long windows. The "burn" is the ratio of observed p99 to
/// target; both windows must sit at or above 1.0 to page.
#[must_use]
pub fn latency_verdict(cfg: &SloConfig, short_p99: f64, long_p99: f64) -> SloVerdict {
    let ratio = |p99: f64| {
        if cfg.p99_target_seconds <= 0.0 {
            0.0
        } else {
            p99 / cfg.p99_target_seconds
        }
    };
    let (short_burn, long_burn) = (ratio(short_p99), ratio(long_p99));
    SloVerdict {
        objective: "latency-p99",
        short_burn,
        long_burn,
        page: short_burn >= 1.0 && long_burn >= 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig::default()
    }

    #[test]
    fn burn_rate_matches_hand_computed_fixtures() {
        // 99.9% target -> budget 0.001. 5 errors in 1000 requests is an
        // error rate of 0.005: five times the budgeted pace.
        let w = WindowSample {
            total: 1000.0,
            errors: 5.0,
        };
        assert!((burn_rate(0.999, w) - 5.0).abs() < 1e-9);

        // 99% target -> budget 0.01. 2 errors in 200 requests is an
        // error rate of 0.01: burning exactly at the sustainable pace.
        let w = WindowSample {
            total: 200.0,
            errors: 2.0,
        };
        assert!((burn_rate(0.99, w) - 1.0).abs() < 1e-9);

        // Every request failing against a 99.9% target saturates at
        // 1.0 / 0.001 = 1000x budget pace.
        let w = WindowSample {
            total: 50.0,
            errors: 50.0,
        };
        assert!((burn_rate(0.999, w) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn no_traffic_burns_nothing() {
        assert_eq!(burn_rate(0.999, WindowSample::default()), 0.0);
        assert_eq!(
            burn_rate(
                1.0, // degenerate budget
                WindowSample {
                    total: 10.0,
                    errors: 10.0
                }
            ),
            0.0
        );
    }

    #[test]
    fn paging_requires_both_windows_to_burn() {
        let hot = WindowSample {
            total: 1000.0,
            errors: 20.0, // burn 20.0 at 99.9%
        };
        let cold = WindowSample {
            total: 10000.0,
            errors: 3.0, // burn 0.3
        };
        // Transient spike: short window hot, long window cold — no page.
        let v = availability_verdict(&cfg(), hot, cold);
        assert!((v.short_burn - 20.0).abs() < 1e-9);
        assert!((v.long_burn - 0.3).abs() < 1e-9);
        assert!(!v.page);
        // Recovered incident: long window still hot, short cold — no page.
        assert!(!availability_verdict(&cfg(), cold, hot).page);
        // Ongoing incident: both hot — page.
        assert!(availability_verdict(&cfg(), hot, hot).page);
    }

    #[test]
    fn page_threshold_is_inclusive() {
        // Exactly at the page rate in both windows must page. All the
        // values here are exact in binary, so the comparison really is
        // equality: budget 0.5, error rate 0.75, burn exactly 1.5.
        let exact = SloConfig {
            availability_target: 0.5,
            page_burn_rate: 1.5,
            ..cfg()
        };
        let at = WindowSample {
            total: 100.0,
            errors: 75.0,
        };
        let v = availability_verdict(&exact, at, at);
        assert!((v.short_burn - 1.5).abs() < 1e-12);
        assert!(v.page);
    }

    #[test]
    fn latency_verdict_compares_p99_to_target() {
        // 600 ms observed against a 500 ms target in both windows.
        let v = latency_verdict(&cfg(), 0.6, 0.6);
        assert!((v.short_burn - 1.2).abs() < 1e-9);
        assert!(v.page);
        // Fast long window vetoes the page.
        assert!(!latency_verdict(&cfg(), 0.6, 0.1).page);
        assert!(!latency_verdict(&cfg(), 0.1, 0.1).page);
    }
}
