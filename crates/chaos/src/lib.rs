//! dsp-chaos: a deterministic network-fault injection proxy.
//!
//! Sits between the router and its replicas (or between a client and
//! `dsp-serve`) and injects faults — refuse-connect, accept-then-reset,
//! delay-first-byte, trickle, truncate, corrupt, blackhole — from a
//! seeded schedule. The same `--seed` and `--scenario` reproduce the
//! same fault sequence byte-for-byte, so any failure the proxy provokes
//! is a repeatable test case rather than a flake. Counters for every
//! injected fault are served from a separate admin `/metrics` endpoint
//! so the data path stays untouched.
//!
//! See docs/chaos.md for the scenario schema and reproduction workflow.

pub mod proxy;
pub mod scenario;

pub use proxy::{ChaosConfig, ChaosHandle, ChaosProxy, Counters};
pub use scenario::{Fault, Rng, Scenario, Schedule, FAULT_KINDS, SCENARIOS};

/// Build a [`ChaosConfig`] from `dualbank chaos` / `dsp-chaos` args.
pub fn config_from_args(args: &[String]) -> Result<ChaosConfig, String> {
    let mut listen = String::from("127.0.0.1:0");
    let mut upstream: Option<String> = None;
    let mut admin: Option<String> = Some(String::from("127.0.0.1:0"));
    let mut scenario = Scenario::Mixed;
    let mut seed: u64 = 1;
    let mut fault_pct: u32 = 50;
    let mut onset_after_bytes: u64 = 0;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = flag_value("--listen")?,
            "--upstream" => upstream = Some(flag_value("--upstream")?),
            "--admin" => {
                let v = flag_value("--admin")?;
                admin = if v == "none" { None } else { Some(v) };
            }
            "--scenario" => {
                let v = flag_value("--scenario")?;
                scenario = Scenario::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown scenario '{v}' (expected one of: {})",
                        SCENARIOS
                            .iter()
                            .map(|s| s.label())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            }
            "--seed" => {
                let v = flag_value("--seed")?;
                seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--fault-pct" => {
                let v = flag_value("--fault-pct")?;
                let pct: u32 = v
                    .parse()
                    .map_err(|_| format!("bad --fault-pct value '{v}'"))?;
                if pct > 100 {
                    return Err(format!("--fault-pct must be 0..=100, got {pct}"));
                }
                fault_pct = pct;
            }
            "--onset-after-bytes" => {
                let v = flag_value("--onset-after-bytes")?;
                onset_after_bytes = v
                    .parse()
                    .map_err(|_| format!("bad --onset-after-bytes value '{v}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    let upstream = upstream.ok_or_else(|| format!("--upstream is required\n{}", usage()))?;
    Ok(ChaosConfig {
        listen,
        upstream,
        admin,
        schedule: Schedule::new(scenario, seed, fault_pct)
            .with_onset_after_bytes(onset_after_bytes),
    })
}

pub fn usage() -> String {
    "usage: dsp-chaos --upstream HOST:PORT [options]\n\
     \n\
     A deterministic fault-injection TCP proxy: point a router replica\n\
     entry (or a client) at --listen and it forwards to --upstream,\n\
     injecting faults from a seeded schedule.\n\
     \n\
     options:\n\
     \x20 --listen HOST:PORT     intercept address (default 127.0.0.1:0)\n\
     \x20 --upstream HOST:PORT   forward target (required)\n\
     \x20 --admin HOST:PORT      admin /metrics address, or 'none'\n\
     \x20                        (default 127.0.0.1:0)\n\
     \x20 --scenario NAME        clean | refuse-connect | reset | delay |\n\
     \x20                        trickle | truncate | corrupt | blackhole |\n\
     \x20                        mixed (default mixed)\n\
     \x20 --seed N               schedule seed (default 1); the same seed\n\
     \x20                        and scenario reproduce the same faults\n\
     \x20 --fault-pct N          percent of connections faulted (default 50)\n\
     \x20 --onset-after-bytes K  forward a healthy response prefix of up to\n\
     \x20                        K bytes (per-connection jitter from the\n\
     \x20                        seeded schedule) before a trickle, reset,\n\
     \x20                        or blackhole fault engages; default 0 =\n\
     \x20                        faults strike from the first byte\n"
        .to_string()
}

/// Entry point behind `dualbank chaos` and the `dsp-chaos` binary.
pub fn run_chaos(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return Ok(());
    }
    let config = config_from_args(args)?;
    let proxy = ChaosProxy::bind(config.clone()).map_err(|e| format!("chaos bind: {e}"))?;
    println!("dsp-chaos listening on http://{}", proxy.local_addr());
    if let Some(admin) = proxy.admin_addr() {
        println!("dsp-chaos admin on http://{admin}");
    }
    let onset = match config.schedule.onset_after_bytes() {
        0 => String::new(),
        k => format!(" · onset ≤ {k} B"),
    };
    println!(
        "  upstream {} · scenario {} · seed {} · fault {}%{onset}",
        config.upstream,
        config.schedule.scenario().label(),
        config.schedule.seed(),
        config.schedule.fault_pct(),
    );
    proxy.run().map_err(|e| format!("chaos proxy: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_round_trip_into_a_config() {
        let config = config_from_args(&args(&[
            "--listen",
            "127.0.0.1:7001",
            "--upstream",
            "127.0.0.1:9000",
            "--admin",
            "none",
            "--scenario",
            "trickle",
            "--seed",
            "9",
            "--fault-pct",
            "75",
            "--onset-after-bytes",
            "4096",
        ]))
        .expect("config");
        assert_eq!(config.listen, "127.0.0.1:7001");
        assert_eq!(config.upstream, "127.0.0.1:9000");
        assert!(config.admin.is_none());
        assert_eq!(config.schedule.scenario(), Scenario::Trickle);
        assert_eq!(config.schedule.seed(), 9);
        assert_eq!(config.schedule.fault_pct(), 75);
        assert_eq!(config.schedule.onset_after_bytes(), 4096);
    }

    #[test]
    fn missing_upstream_and_bad_values_are_usage_errors() {
        assert!(config_from_args(&[]).unwrap_err().contains("--upstream"));
        assert!(
            config_from_args(&args(&["--upstream", "x", "--scenario", "nope"]))
                .unwrap_err()
                .contains("unknown scenario")
        );
        assert!(
            config_from_args(&args(&["--upstream", "x", "--fault-pct", "101"]))
                .unwrap_err()
                .contains("0..=100")
        );
        assert!(config_from_args(&args(&["--upstream", "x", "--seed"]))
            .unwrap_err()
            .contains("--seed needs a value"));
    }
}
