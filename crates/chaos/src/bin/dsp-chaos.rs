use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dsp_chaos::run_chaos(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dsp-chaos: {msg}");
            ExitCode::FAILURE
        }
    }
}
