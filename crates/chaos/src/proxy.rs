//! The interception proxy: accept, draw a fault for this connection
//! index from the schedule, then either sabotage the connection
//! directly (refuse / reset / blackhole) or splice it to the upstream
//! with the response stream shaped (delay / trickle / truncate /
//! corrupt) on the way back.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::scenario::{Fault, Schedule, FAULT_KINDS};

/// How long a pump read may block before re-checking for shutdown; also
/// the hard bound on how long a dead peer can pin a pump thread.
const PUMP_READ_TIMEOUT: Duration = Duration::from_secs(120);
const UPSTREAM_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Listen address for intercepted traffic (port 0 picks a free one).
    pub listen: String,
    /// Where clean and shaped connections are forwarded.
    pub upstream: String,
    /// Admin address serving `/metrics`; `None` disables the listener.
    pub admin: Option<String>,
    pub schedule: Schedule,
}

/// Per-fault counters, exposed on the admin `/metrics` endpoint. All
/// counters count faults *scheduled* for a connection; a corrupt offset
/// past the end of a short response still counts as injected.
#[derive(Debug, Default)]
pub struct Counters {
    pub connections: AtomicU64,
    pub faults: [AtomicU64; FAULT_KINDS.len()],
    pub upstream_connect_failures: AtomicU64,
    pub forwarded_bytes: AtomicU64,
}

impl Counters {
    pub fn faults_injected(&self) -> u64 {
        self.faults
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0)
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

struct Shared {
    config: ChaosConfig,
    counters: Counters,
    conn_seq: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

/// Cloneable handle for shutdown and counter inspection (the in-process
/// embedding used by `dsp-serve-load --chaos` and the tests).
#[derive(Clone)]
pub struct ChaosHandle {
    shared: Arc<Shared>,
    local: SocketAddr,
    admin: Option<SocketAddr>,
}

impl ChaosHandle {
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loops with throwaway connections.
        let _ = TcpStream::connect(self.local);
        if let Some(admin) = self.admin {
            let _ = TcpStream::connect(admin);
        }
    }

    pub fn counters(&self) -> &Counters {
        &self.shared.counters
    }
}

pub struct ChaosProxy {
    listener: TcpListener,
    admin_listener: Option<TcpListener>,
    local: SocketAddr,
    admin: Option<SocketAddr>,
    shared: Arc<Shared>,
}

impl ChaosProxy {
    pub fn bind(config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(&config.listen)?;
        let local = listener.local_addr()?;
        let admin_listener = match &config.admin {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let admin = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let shared = Arc::new(Shared {
            config,
            counters: Counters::default(),
            conn_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        Ok(ChaosProxy {
            listener,
            admin_listener,
            local,
            admin,
            shared,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin
    }

    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle {
            shared: Arc::clone(&self.shared),
            local: self.local,
            admin: self.admin,
        }
    }

    /// Accept until [`ChaosHandle::shutdown`]. Spawns one thread per
    /// connection plus one for the admin listener.
    pub fn run(self) -> io::Result<()> {
        if let Some(admin) = self.admin_listener {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || admin_loop(&admin, &shared));
        }
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(client) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            let index = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
            thread::spawn(move || handle_client(&shared, client, index));
        }
        Ok(())
    }
}

fn handle_client(shared: &Shared, client: TcpStream, index: u64) {
    let (fault, onset) = shared.config.schedule.plan_for(index);
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    shared.counters.faults[fault.kind_index()].fetch_add(1, Ordering::Relaxed);
    let _ = client.set_nodelay(true);
    match fault {
        Fault::RefuseConnect => drop(client),
        // With an onset, reset and blackhole become mid-stream faults:
        // they splice to the upstream, forward a healthy response
        // prefix, and only then strike. Without one they stay
        // connection-level, exactly as before.
        Fault::AcceptThenReset if onset == 0 => {
            // Read a little so the client believes the connection is
            // live, then drop while more request bytes are likely
            // unread: Linux answers further traffic with RST.
            let _ = client.set_read_timeout(Some(Duration::from_millis(100)));
            let mut buf = [0u8; 64];
            let _ = (&client).read(&mut buf);
            drop(client);
        }
        Fault::Blackhole(hold) if onset == 0 => {
            // Swallow request bytes silently until the hold expires,
            // then close without ever writing a response byte.
            let deadline = Instant::now() + hold;
            let mut buf = [0u8; 4096];
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let _ = client.set_read_timeout(Some(left));
                match (&client).read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            drop(client);
        }
        fault => splice(shared, client, fault, onset),
    }
}

/// Forward client↔upstream, shaping only the response direction.
fn splice(shared: &Shared, client: TcpStream, fault: Fault, onset: u64) {
    let upstream = match connect_upstream(&shared.config.upstream) {
        Ok(s) => s,
        Err(_) => {
            shared
                .counters
                .upstream_connect_failures
                .fetch_add(1, Ordering::Relaxed);
            drop(client);
            return;
        }
    };
    let _ = upstream.set_nodelay(true);
    let (Ok(client_r), Ok(upstream_w)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    // Request direction: verbatim, in a side thread.
    thread::spawn(move || pump_verbatim(client_r, upstream_w));
    // Response direction: shaped, on this thread.
    pump_shaped(shared, upstream, client, fault, onset);
}

fn connect_upstream(addr: &str) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::NotFound, "upstream did not resolve");
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, UPSTREAM_CONNECT_TIMEOUT) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn pump_verbatim(from: TcpStream, to: TcpStream) {
    let _ = from.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let mut buf = [0u8; 4096];
    loop {
        match (&from).read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if (&to).write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

fn pump_shaped(shared: &Shared, upstream: TcpStream, client: TcpStream, fault: Fault, onset: u64) {
    let _ = upstream.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let mut buf = [0u8; 4096];
    let mut sent: u64 = 0; // response bytes already forwarded
    let mut first = true;
    'outer: loop {
        let n = match (&upstream).read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if first {
            if let Fault::DelayFirstByte(d) = fault {
                thread::sleep(d);
            }
            first = false;
        }
        // Healthy prefix: the first `onset` response bytes pass
        // through verbatim before the fault engages, so a connection
        // can fail mid-stream rather than only at its very start.
        let mut start = 0usize;
        if sent < onset {
            let healthy = ((onset - sent) as usize).min(n);
            if (&client).write_all(&buf[..healthy]).is_err() {
                break;
            }
            sent += healthy as u64;
            shared
                .counters
                .forwarded_bytes
                .fetch_add(healthy as u64, Ordering::Relaxed);
            if healthy == n {
                continue;
            }
            start = healthy;
        }
        match fault {
            // Onset reached: the response stops dead mid-body and both
            // sides close — the client sees a truncated transfer.
            Fault::AcceptThenReset => break 'outer,
            // Onset reached: go dark. Swallow the rest of the response
            // for the hold, then close without another byte.
            Fault::Blackhole(hold) => {
                drain_for(&upstream, hold);
                break 'outer;
            }
            _ => {}
        }
        if let Fault::CorruptByteAt(k) = fault {
            if k >= sent && k < sent + (n - start) as u64 {
                buf[start + (k - sent) as usize] ^= 0x20;
            }
        }
        let mut len = n - start;
        let mut closing = false;
        if let Fault::TruncateAfter(k) = fault {
            if sent + len as u64 >= k {
                len = (k - sent) as usize;
                closing = true;
            }
        }
        let chunk = &buf[start..start + len];
        let wrote = match fault {
            Fault::Trickle { bytes, interval } => {
                let step = bytes.max(1);
                let mut ok = true;
                for (i, piece) in chunk.chunks(step).enumerate() {
                    if i > 0 {
                        thread::sleep(interval);
                    }
                    if (&client).write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                }
                ok
            }
            _ => (&client).write_all(chunk).is_ok(),
        };
        sent += chunk.len() as u64;
        shared
            .counters
            .forwarded_bytes
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        if !wrote || closing {
            break 'outer;
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
}

/// Read and discard upstream bytes until `hold` expires — keeps the
/// upstream from blocking on a full send buffer while a mid-stream
/// blackhole holds the client in silence.
fn drain_for(upstream: &TcpStream, hold: Duration) {
    let deadline = Instant::now() + hold;
    let mut buf = [0u8; 4096];
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        let _ = upstream.set_read_timeout(Some(left));
        match (&*upstream).read(&mut buf) {
            Ok(_n @ 1..) => {}
            // Upstream finished early: keep the client hanging in
            // silence for the rest of the hold anyway.
            Ok(0) | Err(_) => {
                thread::sleep(deadline.saturating_duration_since(Instant::now()));
                break;
            }
        }
    }
}

/// Tiny single-purpose HTTP listener for `/metrics` and `/healthz`;
/// hand-rolled so the crate stays free of serve-tier dependencies.
fn admin_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut conn) = stream else { continue };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
        let mut head = Vec::new();
        let mut buf = [0u8; 512];
        while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => head.extend_from_slice(&buf[..n]),
            }
        }
        let line = String::from_utf8_lossy(&head);
        let path = line.split_whitespace().nth(1).unwrap_or("");
        let (status, body) = match path {
            "/metrics" => ("200 OK", render_metrics(shared)),
            "/healthz" => ("200 OK", "ok\n".to_string()),
            _ => ("404 Not Found", "not found\n".to_string()),
        };
        let _ = write!(
            conn,
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = conn.shutdown(Shutdown::Both);
    }
}

fn render_metrics(shared: &Shared) -> String {
    let c = &shared.counters;
    let sched = &shared.config.schedule;
    let mut out = String::with_capacity(1024);
    out.push_str("# HELP dsp_chaos_up Whether the chaos proxy is running.\n");
    out.push_str("# TYPE dsp_chaos_up gauge\ndsp_chaos_up 1\n");
    out.push_str("# HELP dsp_chaos_uptime_seconds Seconds since the proxy started.\n");
    out.push_str("# TYPE dsp_chaos_uptime_seconds gauge\n");
    out.push_str(&format!(
        "dsp_chaos_uptime_seconds {}\n",
        shared.started.elapsed().as_secs()
    ));
    out.push_str("# HELP dsp_chaos_info Scenario, seed, and fault rate of the schedule.\n");
    out.push_str("# TYPE dsp_chaos_info gauge\n");
    out.push_str(&format!(
        "dsp_chaos_info{{scenario=\"{}\",seed=\"{}\",fault_pct=\"{}\",upstream=\"{}\"}} 1\n",
        sched.scenario().label(),
        sched.seed(),
        sched.fault_pct(),
        shared.config.upstream,
    ));
    out.push_str("# HELP dsp_chaos_connections_total Client connections accepted.\n");
    out.push_str("# TYPE dsp_chaos_connections_total counter\n");
    out.push_str(&format!(
        "dsp_chaos_connections_total {}\n",
        c.connections.load(Ordering::Relaxed)
    ));
    out.push_str("# HELP dsp_chaos_faults_total Faults scheduled, by kind (kind=\"none\" counts clean pass-throughs).\n");
    out.push_str("# TYPE dsp_chaos_faults_total counter\n");
    for (kind, counter) in FAULT_KINDS.iter().zip(&c.faults) {
        out.push_str(&format!(
            "dsp_chaos_faults_total{{kind=\"{kind}\"}} {}\n",
            counter.load(Ordering::Relaxed)
        ));
    }
    out.push_str(
        "# HELP dsp_chaos_upstream_connect_failures_total Dials to the upstream that failed.\n",
    );
    out.push_str("# TYPE dsp_chaos_upstream_connect_failures_total counter\n");
    out.push_str(&format!(
        "dsp_chaos_upstream_connect_failures_total {}\n",
        c.upstream_connect_failures.load(Ordering::Relaxed)
    ));
    out.push_str("# HELP dsp_chaos_forwarded_bytes_total Response bytes forwarded to clients.\n");
    out.push_str("# TYPE dsp_chaos_forwarded_bytes_total counter\n");
    out.push_str(&format!(
        "dsp_chaos_forwarded_bytes_total {}\n",
        c.forwarded_bytes.load(Ordering::Relaxed)
    ));
    out
}
