//! Seeded fault schedules.
//!
//! A [`Schedule`] maps a connection index to a [`Fault`] purely as a
//! function of `(seed, scenario, index)`. The proxy accepts connections
//! concurrently, so determinism cannot rely on a shared RNG stream
//! being consumed in order: every connection derives its own generator
//! from the triple instead, making the fault sequence reproducible no
//! matter how threads interleave.

use std::time::Duration;

/// SplitMix64: the same tiny generator `dsp-gen` uses, copied rather
/// than imported so this crate stays dependency-free (it sits *under*
/// the crates it tests).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// FNV-1a over a scenario name, folded into the per-connection seed so
/// two scenarios with the same `--seed` still draw distinct streams.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One concrete fault, fully parameterized, applied to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward untouched.
    None,
    /// Close the client socket without dialing upstream.
    RefuseConnect,
    /// Accept, read a little, then drop with unread data pending so
    /// the kernel answers the peer with RST instead of FIN.
    AcceptThenReset,
    /// Forward, but hold the first response byte for this long.
    DelayFirstByte(Duration),
    /// Forward the response `bytes` bytes at a time with `interval`
    /// pauses between writes (slow but always progressing).
    Trickle { bytes: usize, interval: Duration },
    /// Forward exactly `K` response bytes, then close both sides.
    TruncateAfter(u64),
    /// Flip one bit of the response byte at stream offset `K`.
    CorruptByteAt(u64),
    /// Swallow the request, hold the connection silently for this
    /// long, then close without a single response byte.
    Blackhole(Duration),
}

/// Metric labels, one per variant. Order matches [`FAULT_KINDS`].
pub const FAULT_KINDS: [&str; 8] = [
    "none",
    "refuse-connect",
    "reset",
    "delay-first-byte",
    "trickle",
    "truncate",
    "corrupt",
    "blackhole",
];

impl Fault {
    pub fn kind(&self) -> &'static str {
        FAULT_KINDS[self.kind_index()]
    }

    pub fn kind_index(&self) -> usize {
        match self {
            Fault::None => 0,
            Fault::RefuseConnect => 1,
            Fault::AcceptThenReset => 2,
            Fault::DelayFirstByte(_) => 3,
            Fault::Trickle { .. } => 4,
            Fault::TruncateAfter(_) => 5,
            Fault::CorruptByteAt(_) => 6,
            Fault::Blackhole(_) => 7,
        }
    }
}

/// A named family of faults; `mixed` draws uniformly from all seven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    Clean,
    RefuseConnect,
    Reset,
    Delay,
    Trickle,
    Truncate,
    Corrupt,
    Blackhole,
    Mixed,
}

pub const SCENARIOS: [Scenario; 9] = [
    Scenario::Clean,
    Scenario::RefuseConnect,
    Scenario::Reset,
    Scenario::Delay,
    Scenario::Trickle,
    Scenario::Truncate,
    Scenario::Corrupt,
    Scenario::Blackhole,
    Scenario::Mixed,
];

impl Scenario {
    pub fn parse(name: &str) -> Option<Scenario> {
        SCENARIOS.iter().copied().find(|s| s.label() == name)
    }

    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::RefuseConnect => "refuse-connect",
            Scenario::Reset => "reset",
            Scenario::Delay => "delay",
            Scenario::Trickle => "trickle",
            Scenario::Truncate => "truncate",
            Scenario::Corrupt => "corrupt",
            Scenario::Blackhole => "blackhole",
            Scenario::Mixed => "mixed",
        }
    }
}

/// The seeded fault schedule: `fault_for(i)` is a pure function of the
/// constructor arguments and `i`, so re-running a scenario with the
/// same seed reproduces the same fault sequence byte-for-byte.
#[derive(Debug, Clone)]
pub struct Schedule {
    scenario: Scenario,
    seed: u64,
    /// Percentage (0..=100) of connections that draw a fault at all.
    fault_pct: u64,
    /// Upper bound on the healthy response prefix (in bytes) forwarded
    /// before a trickle / reset / blackhole fault engages; each faulted
    /// connection draws its onset uniformly from `1..=max`. Zero (the
    /// default) keeps the historical behavior: faults bite from the
    /// first response byte.
    onset_after_bytes: u64,
}

impl Schedule {
    pub fn new(scenario: Scenario, seed: u64, fault_pct: u32) -> Schedule {
        Schedule {
            scenario,
            seed,
            fault_pct: u64::from(fault_pct.min(100)),
            onset_after_bytes: 0,
        }
    }

    /// Configure mid-stream fault onset (see [`Schedule::plan_for`]).
    pub fn with_onset_after_bytes(mut self, max_bytes: u64) -> Schedule {
        self.onset_after_bytes = max_bytes;
        self
    }

    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn fault_pct(&self) -> u64 {
        self.fault_pct
    }

    pub fn onset_after_bytes(&self) -> u64 {
        self.onset_after_bytes
    }

    pub fn fault_for(&self, conn_index: u64) -> Fault {
        self.plan_for(conn_index).0
    }

    /// The fault for `conn_index` plus its onset: how many healthy
    /// response bytes pass through before the fault engages. Onset is
    /// drawn *after* the fault's own parameters from the same
    /// per-connection generator, so enabling `--onset-after-bytes`
    /// changes when faults strike but never which faults are drawn.
    /// Onset 0 means the fault applies from the first byte.
    pub fn plan_for(&self, conn_index: u64) -> (Fault, u64) {
        let mix = self
            .seed
            .wrapping_add(fnv1a(self.scenario.label()))
            .wrapping_add(conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Rng::new(mix);
        if self.scenario == Scenario::Clean || !rng.chance(self.fault_pct, 100) {
            return (Fault::None, 0);
        }
        let scenario = match self.scenario {
            Scenario::Mixed => SCENARIOS[1 + rng.below(7) as usize],
            s => s,
        };
        let fault = match scenario {
            Scenario::Clean | Scenario::Mixed => Fault::None,
            Scenario::RefuseConnect => Fault::RefuseConnect,
            Scenario::Reset => Fault::AcceptThenReset,
            Scenario::Delay => Fault::DelayFirstByte(Duration::from_millis(rng.range(25, 150))),
            // Fast enough that probe bodies still arrive well inside
            // any sane first-byte timeout, slow enough to exercise the
            // many-small-reads path: trickle tests that slow-but-live
            // responses *complete* rather than trip idle timeouts.
            Scenario::Trickle => Fault::Trickle {
                bytes: rng.range(64, 256) as usize,
                interval: Duration::from_millis(rng.range(1, 5)),
            },
            Scenario::Truncate => Fault::TruncateAfter(rng.range(16, 2048)),
            Scenario::Corrupt => Fault::CorruptByteAt(rng.range(8, 512)),
            Scenario::Blackhole => Fault::Blackhole(Duration::from_millis(rng.range(250, 1500))),
        };
        let onset = match fault {
            Fault::AcceptThenReset | Fault::Trickle { .. } | Fault::Blackhole(_)
                if self.onset_after_bytes > 0 =>
            {
                rng.range(1, self.onset_after_bytes)
            }
            _ => 0,
        };
        (fault, onset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_same_fault_sequence() {
        for scenario in SCENARIOS {
            let a = Schedule::new(scenario, 42, 50);
            let b = Schedule::new(scenario, 42, 50);
            for i in 0..256 {
                assert_eq!(a.fault_for(i), b.fault_for(i), "{scenario:?} conn {i}");
            }
        }
    }

    #[test]
    fn schedule_is_order_independent() {
        // Determinism must not depend on query order: connection 17
        // draws the same fault whether asked first or last.
        let s = Schedule::new(Scenario::Mixed, 7, 80);
        let forward: Vec<Fault> = (0..64).map(|i| s.fault_for(i)).collect();
        let backward: Vec<Fault> = (0..64).rev().map(|i| s.fault_for(i)).collect();
        let backward: Vec<Fault> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn different_seeds_differ_and_scenarios_stay_in_family() {
        let a = Schedule::new(Scenario::Truncate, 1, 100);
        let b = Schedule::new(Scenario::Truncate, 2, 100);
        let mut differed = false;
        for i in 0..64 {
            let fa = a.fault_for(i);
            assert!(
                matches!(fa, Fault::TruncateAfter(_)),
                "100% truncate schedule drew {fa:?}"
            );
            if fa != b.fault_for(i) {
                differed = true;
            }
        }
        assert!(differed, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn clean_scenario_and_zero_pct_never_fault() {
        let clean = Schedule::new(Scenario::Clean, 3, 100);
        let zero = Schedule::new(Scenario::Mixed, 3, 0);
        for i in 0..128 {
            assert_eq!(clean.fault_for(i), Fault::None);
            assert_eq!(zero.fault_for(i), Fault::None);
        }
    }

    #[test]
    fn mixed_covers_every_fault_kind() {
        let s = Schedule::new(Scenario::Mixed, 11, 100);
        let mut seen = [false; FAULT_KINDS.len()];
        for i in 0..512 {
            seen[s.fault_for(i).kind_index()] = true;
        }
        for (kind, hit) in FAULT_KINDS.iter().zip(seen).skip(1) {
            assert!(hit, "mixed schedule never drew {kind}");
        }
    }

    #[test]
    fn onset_is_drawn_only_when_configured_and_only_for_maskable_kinds() {
        let plain = Schedule::new(Scenario::Mixed, 21, 100);
        let onset = Schedule::new(Scenario::Mixed, 21, 100).with_onset_after_bytes(512);
        for i in 0..256 {
            // Enabling onset must not perturb which fault is drawn.
            assert_eq!(plain.fault_for(i), onset.fault_for(i), "conn {i}");
            let (_, off) = plain.plan_for(i);
            assert_eq!(off, 0, "onset without the flag must be 0 (conn {i})");
            let (fault, off) = onset.plan_for(i);
            match fault {
                Fault::AcceptThenReset | Fault::Trickle { .. } | Fault::Blackhole(_) => {
                    assert!(
                        (1..=512).contains(&off),
                        "conn {i}: {fault:?} onset {off} out of 1..=512"
                    );
                }
                _ => assert_eq!(off, 0, "conn {i}: {fault:?} must not draw an onset"),
            }
        }
    }

    #[test]
    fn onset_draws_are_deterministic() {
        let a = Schedule::new(Scenario::Reset, 5, 100).with_onset_after_bytes(300);
        let b = Schedule::new(Scenario::Reset, 5, 100).with_onset_after_bytes(300);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..64 {
            assert_eq!(a.plan_for(i), b.plan_for(i), "conn {i}");
            distinct.insert(a.plan_for(i).1);
        }
        assert!(
            distinct.len() > 8,
            "onset must be jittered per connection, saw only {distinct:?}"
        );
    }

    #[test]
    fn scenario_labels_round_trip() {
        for s in SCENARIOS {
            assert_eq!(Scenario::parse(s.label()), Some(s));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }
}
