//! Minimal hand-rolled JSON: a writer (escaper + object builder) and a
//! recursive-descent parser.
//!
//! The build container has no registry access, so there is no `serde`;
//! this module is the one place in the workspace that knows how to
//! escape a JSON string or walk a JSON document. [`RunReport::to_json`]
//! (crate::RunReport::to_json) renders through the writer half, and
//! `dsp-serve` parses request bodies through the parser half.
//!
//! The parser accepts standard JSON (RFC 8259) with two deliberate
//! limits, both fine for request bodies we generate or document:
//! numbers are kept as `f64`, and nesting depth is capped so a
//! malicious body cannot overflow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Escape and quote a JSON string.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite f64 as a JSON number (3 decimal places); `null` for
/// NaN/infinities, which JSON cannot represent.
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Minimal top-level JSON object builder (two-space indent, insertion
/// order preserved).
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> ObjectWriter {
        ObjectWriter::new()
    }
}

impl ObjectWriter {
    /// An empty object (`{`).
    #[must_use]
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: "{\n".to_string(),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push_str(",\n");
        }
        self.first = false;
        self.buf.push_str("  ");
        self.buf.push_str(&escape(k));
        self.buf.push_str(": ");
    }

    /// Add a string member.
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(&escape(v));
    }

    /// Add an unsigned integer member.
    pub fn num(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Add a float member (see [`number`]).
    pub fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&number(v));
    }

    /// Add a boolean member.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Add a pre-rendered JSON value verbatim.
    pub fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    /// Close the object and return the rendered text (trailing newline
    /// included).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n}\n");
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `k` of an object, if this is an object that has it.
    #[must_use]
    pub fn get(&self, k: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(k),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer
    /// small enough to round-trip through `f64` exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum array/object nesting the parser accepts (stack-depth guard).
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document (one value, optionally surrounded by
/// whitespace).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uXXXX` with a low one.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 leaves pos past the digits; skip the
                            // outer `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_newlines() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("\u{0}\u{1f}"), "\"\\u0000\\u001f\"");
        assert_eq!(escape("\r\t"), "\"\\r\\t\"");
    }

    #[test]
    fn passes_non_ascii_through() {
        assert_eq!(escape("héllo …§ 日本"), "\"héllo …§ 日本\"");
        assert_eq!(escape("emoji: 🙂"), "\"emoji: 🙂\"");
    }

    #[test]
    fn numbers_stay_finite() {
        assert_eq!(number(1.5), "1.500");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn writer_builds_objects() {
        let mut o = ObjectWriter::new();
        o.str("a", "x\"y");
        o.num("b", 7);
        o.raw("c", "[1, 2]");
        assert_eq!(
            o.finish(),
            "{\n  \"a\": \"x\\\"y\",\n  \"b\": 7,\n  \"c\": [1, 2]\n}\n"
        );
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse(r#""a\"b\\c\n\t\u0041""#).unwrap(),
            Value::String("a\"b\\c\n\tA".into())
        );
        // Surrogate pair: U+1F642.
        assert_eq!(
            parse(r#""\ud83d\ude42""#).unwrap(),
            Value::String("🙂".into())
        );
    }

    #[test]
    fn roundtrips_through_escape() {
        for s in ["plain", "q\"b\\s\n\r\t", "\u{1}\u{1f}", "héllo 日本 🙂"] {
            assert_eq!(parse(&escape(s)).unwrap(), Value::String(s.into()));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01x",
            "{} extra",
            "\"\\ud800\"",
            "nul",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }
}
