//! The batch engine as a thin pipeline over the shared
//! [`dsp_exec::Executor`].
//!
//! Since PR 3 the engine owns no threads of its own: a matrix run
//! submits one task per (benchmark, strategy) cell to a work-queue
//! executor — either a private one sized by [`EngineOptions::jobs`]
//! ([`Engine::new`]) or one shared with other engines and with
//! `dsp-serve`'s request handling ([`Engine::with_executor`]). Each
//! task is the pure pipeline parse → optimize → profile → partition →
//! compile → simulate, split at the [`ArtifactCache`] seams so
//! strategy-independent stages are computed once per source.
//!
//! Determinism: each cell's computation is a pure function of (source,
//! config, strategy), and [`MatrixRun`] reads results back through
//! per-job handles in matrix order. A parallel run is therefore
//! bit-identical to `jobs = 1` in every field except wall times and
//! the per-job `*_cached` flags (which job of a source reaches the
//! cache first is schedule-dependent; the per-layer totals are not).

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsp_backend::{CompileConfig, Strategy};
use dsp_exec::{CancelToken, Executor, JobHandle, Priority, WaitOutcome};
use dsp_sim::{SimOptions, Simulator};
use dsp_trace::{families, SpanCtx, Tracer};
use dsp_workloads::runner::{self, RunError};
use dsp_workloads::Benchmark;

use crate::cache::{ArtifactCache, CacheStats};
use crate::report::{CacheFlags, JobReport, RunReport, StageTimes};
use crate::store::DiskStore;

/// Parse a user-supplied worker/`--jobs` count.
///
/// The one validation point for every thread-count knob in the
/// workspace (CLI `--jobs`, `dsp-serve --workers`, the load
/// generator's `--connections`): the count must be a positive
/// integer. `0` is rejected here — "use all cores" is spelled by
/// omitting the flag, not by passing zero.
///
/// # Errors
///
/// Returns a human-readable message naming `flag` on empty,
/// non-numeric, or zero input.
pub fn parse_worker_count(flag: &str, input: &str) -> Result<usize, String> {
    match input.parse::<usize>() {
        Ok(0) => Err(format!(
            "{flag} must be at least 1 (omit the flag to use all cores)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} expects a positive integer, got `{input}`")),
    }
}

/// Parse a cache byte-budget flag given in KiB (`--cache-max-kb`,
/// `--cache-disk-max-kb`). `0` means **disabled** (unbounded) and
/// returns `None` — the documented spelling for "no byte budget",
/// consistent across the CLI and `dsp-serve`.
///
/// # Errors
///
/// Returns a human-readable message naming `flag` on empty or
/// non-numeric input.
pub fn parse_byte_budget(flag: &str, input: &str) -> Result<Option<u64>, String> {
    match input.parse::<u64>() {
        Ok(0) => Ok(None),
        Ok(kb) => Ok(Some(kb.saturating_mul(1024))),
        Err(_) => Err(format!(
            "{flag} expects a size in KiB (0 disables the bound), got `{input}`"
        )),
    }
}

/// Parse a cache entry-capacity flag (`--cache-capacity`). `0` means
/// **disabled** (unbounded) and returns `None`, mirroring
/// [`parse_byte_budget`].
///
/// # Errors
///
/// Returns a human-readable message naming `flag` on empty or
/// non-numeric input.
pub fn parse_entry_budget(flag: &str, input: &str) -> Result<Option<NonZeroUsize>, String> {
    match input.parse::<usize>() {
        Ok(n) => Ok(NonZeroUsize::new(n)),
        Err(_) => Err(format!(
            "{flag} expects an entry count (0 disables the bound), got `{input}`"
        )),
    }
}

/// Validate a `--cache-dir` argument: non-empty, and not an existing
/// non-directory (a typo'd file path would silently degrade the store
/// to a no-op; catch it at the flag instead). The directory itself
/// need not exist — the store creates it.
///
/// # Errors
///
/// Returns a human-readable message naming `flag` for empty input or a
/// path that exists but is not a directory.
pub fn parse_cache_dir(flag: &str, input: &str) -> Result<PathBuf, String> {
    if input.is_empty() {
        return Err(format!("{flag} expects a directory path"));
    }
    let path = PathBuf::from(input);
    if path.exists() && !path.is_dir() {
        return Err(format!("{flag}: `{input}` exists and is not a directory"));
    }
    Ok(path)
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker-thread count of the engine's private executor; `0` means
    /// [`std::thread::available_parallelism`]. Ignored by
    /// [`Engine::with_executor`] — there the shared pool's size rules.
    pub jobs: usize,
    /// Driver-level compile configuration applied to every job.
    pub config: CompileConfig,
    /// Simulator fuel (cycle budget) per job.
    pub fuel: u64,
    /// Verify every simulated run against the reference interpreter
    /// (skipped automatically for benchmarks with no checked globals).
    pub verify: bool,
    /// Per-layer artifact-cache capacity; `None` = unbounded (batch
    /// sweeps), `Some(n)` = LRU-bounded to `n` entries per layer
    /// (long-running servers).
    pub cache_capacity: Option<NonZeroUsize>,
    /// Per-layer artifact-cache byte budget (estimated resident bytes);
    /// `None` = unbounded. Composes with `cache_capacity`: whichever
    /// bound is exceeded first evicts.
    pub cache_max_bytes: Option<u64>,
    /// Directory of the persistent artifact store ([`DiskStore`]);
    /// `None` = in-memory only. The engine opens the store at
    /// construction (startup sweep included) and consults it on every
    /// in-memory artifact miss.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget of the on-disk store (LRU-by-mtime eviction);
    /// `None` = unbounded. Only meaningful with `cache_dir`.
    pub cache_disk_max_bytes: Option<u64>,
    /// Span recorder shared with the executor and every job: each cell
    /// records a `cell` span with per-stage children and cache
    /// decisions, and feeds the stage-duration histograms. Defaults to
    /// [`Tracer::disabled`], which makes all of it a no-op; trace IDs
    /// and timestamps never reach deterministic report projections.
    pub tracer: Arc<Tracer>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            jobs: 0,
            config: CompileConfig::default(),
            fuel: SimOptions::default().fuel,
            verify: true,
            cache_capacity: None,
            cache_max_bytes: None,
            cache_dir: None,
            cache_disk_max_bytes: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// A job that failed, with enough context to report it.
#[derive(Debug)]
pub struct EngineError {
    /// Benchmark name.
    pub bench: String,
    /// Strategy under which the job failed.
    pub strategy: Strategy,
    /// The underlying failure.
    pub error: RunError,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.bench, self.strategy, self.error)
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The batch compile-and-simulate engine.
pub struct Engine {
    opts: EngineOptions,
    cache: Arc<ArtifactCache>,
    exec: Arc<Executor>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    /// An engine with the given options, an empty cache (bounded by
    /// [`EngineOptions::cache_capacity`] / `cache_max_bytes` when set),
    /// and a private executor of [`EngineOptions::jobs`] workers.
    #[must_use]
    pub fn new(opts: EngineOptions) -> Engine {
        let exec = Arc::new(Executor::with_tracer(opts.jobs, Arc::clone(&opts.tracer)));
        Engine::with_executor(opts, exec)
    }

    /// An engine submitting to an existing shared executor instead of
    /// spawning its own pool — how `dsp-serve` and the CLI give every
    /// engine in the process one machine-sized scheduler.
    #[must_use]
    pub fn with_executor(opts: EngineOptions, exec: Arc<Executor>) -> Engine {
        let store = opts
            .cache_dir
            .as_deref()
            .map(|dir| Arc::new(DiskStore::open_default(dir, opts.cache_disk_max_bytes)));
        Engine::with_cache_store(opts, exec, store)
    }

    /// [`Engine::with_executor`] over an explicit (possibly absent)
    /// disk store — the seam the fault-injection suite uses to hand
    /// the engine a store whose IO layer misbehaves on cue.
    #[must_use]
    pub fn with_cache_store(
        opts: EngineOptions,
        exec: Arc<Executor>,
        store: Option<Arc<DiskStore>>,
    ) -> Engine {
        let cache = Arc::new(ArtifactCache::with_store(
            opts.cache_capacity,
            opts.cache_max_bytes,
            store,
        ));
        Engine { opts, cache, exec }
    }

    /// The engine's options.
    #[must_use]
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The shared artifact cache (persists across `run_matrix` calls,
    /// so a repeated sweep is served from cache).
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The executor this engine submits to.
    #[must_use]
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// Worker threads that a matrix of `njobs` jobs could use.
    #[must_use]
    pub fn worker_count(&self, njobs: usize) -> usize {
        self.exec.workers().max(1).min(njobs.max(1))
    }

    /// Submit the full `benches` × `strategies` matrix to the executor
    /// without waiting: one task per cell, all under `priority` and
    /// `token`. The returned [`MatrixRun`] hands back per-job results
    /// in matrix order as they complete — the streaming building block
    /// for `dsp-serve`'s chunked `/sweep` responses.
    ///
    /// Every cell's spans (queue wait, run, per-stage children) are
    /// parented under `ctx` — the request's trace for a served matrix,
    /// or [`SpanCtx::NONE`] / [`Tracer::new_trace`] for batch runs.
    #[must_use]
    pub fn submit_matrix(
        &self,
        benches: &[Benchmark],
        strategies: &[Strategy],
        priority: Priority,
        token: CancelToken,
        ctx: SpanCtx,
    ) -> MatrixRun {
        self.submit_matrix_with_config(benches, strategies, priority, token, ctx, self.opts.config)
    }

    /// [`Engine::submit_matrix`] with the [`CompileConfig`] overridden
    /// per matrix — how a served request selects its own partitioner
    /// while the engine (and its caches, keyed on the config) is
    /// shared.
    #[must_use]
    pub fn submit_matrix_with_config(
        &self,
        benches: &[Benchmark],
        strategies: &[Strategy],
        priority: Priority,
        token: CancelToken,
        ctx: SpanCtx,
        config: CompileConfig,
    ) -> MatrixRun {
        let pairs: Vec<(String, Strategy)> = benches
            .iter()
            .flat_map(|b| strategies.iter().map(move |&s| (b.name.clone(), s)))
            .collect();
        let workers = self.worker_count(pairs.len());
        let started = Instant::now();
        let handles = benches
            .iter()
            .flat_map(|b| strategies.iter().map(move |&s| (b, s)))
            .map(|(bench, strategy)| {
                let cache = Arc::clone(&self.cache);
                let mut opts = self.opts.clone();
                opts.config = config;
                let bench = bench.clone();
                self.exec.submit_ctx(priority, Some(&token), ctx, move || {
                    run_job(&cache, &opts, &bench, strategy, ctx)
                })
            })
            .collect();
        MatrixRun {
            pairs,
            handles,
            strategies: strategies.to_vec(),
            workers,
            started,
            cache: Arc::clone(&self.cache),
            token,
        }
    }

    /// Run the full `benches` × `strategies` matrix and collect a
    /// [`RunReport`] with per-job measurements, stage times, and cache
    /// statistics. Jobs are reported bench-major, in argument order,
    /// regardless of execution interleaving.
    ///
    /// # Errors
    ///
    /// Returns the first failing job in matrix order (remaining jobs
    /// still run to completion).
    pub fn run_matrix(
        &self,
        benches: &[Benchmark],
        strategies: &[Strategy],
    ) -> Result<RunReport, EngineError> {
        let ctx = self.opts.tracer.new_trace();
        self.submit_matrix(
            benches,
            strategies,
            Priority::Batch,
            CancelToken::new(),
            ctx,
        )
        .into_report()
    }

    /// Run the whole 23-benchmark suite under `strategies`.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_matrix`].
    pub fn run_suite(&self, strategies: &[Strategy]) -> Result<RunReport, EngineError> {
        self.run_matrix(&dsp_workloads::all(), strategies)
    }
}

/// An in-flight matrix: one submitted task per (benchmark, strategy)
/// cell, results retrievable per job in matrix order.
pub struct MatrixRun {
    pairs: Vec<(String, Strategy)>,
    handles: Vec<JobHandle<Result<JobReport, RunError>>>,
    strategies: Vec<Strategy>,
    workers: usize,
    started: Instant,
    cache: Arc<ArtifactCache>,
    token: CancelToken,
}

impl MatrixRun {
    /// Number of jobs in the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True for an empty matrix.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The (benchmark name, strategy) of job `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pair(&self, i: usize) -> (&str, Strategy) {
        let (name, strategy) = &self.pairs[i];
        (name, *strategy)
    }

    /// Executor workers this matrix could use (capped by job count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Strategies swept, in column order.
    #[must_use]
    pub fn strategies(&self) -> &[Strategy] {
        &self.strategies
    }

    /// The cancel token shared by every job of this matrix.
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Cancel every job of this matrix still queued; running jobs
    /// finish (bounded by simulator fuel).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Wall time since submission.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Cache counters of the engine that submitted this matrix.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Block until job `i` completes; `None` if it was cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn wait_job(&self, i: usize) -> Option<Result<JobReport, RunError>> {
        self.handles[i].wait()
    }

    /// Wait for job `i` until `deadline` at the latest.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn wait_job_until(
        &self,
        i: usize,
        deadline: Instant,
    ) -> WaitOutcome<Result<JobReport, RunError>> {
        self.handles[i].wait_until(deadline)
    }

    /// Wait for every job and assemble the [`RunReport`] (jobs in
    /// matrix order).
    ///
    /// # Errors
    ///
    /// Returns the first failing job in matrix order (remaining jobs
    /// still run to completion).
    ///
    /// # Panics
    ///
    /// Panics if a job was cancelled (cancel-aware callers stream via
    /// [`MatrixRun::wait_job_until`] instead) or if a job panicked.
    pub fn into_report(self) -> Result<RunReport, EngineError> {
        let outcomes: Vec<Option<Result<JobReport, RunError>>> =
            self.handles.iter().map(JobHandle::wait).collect();
        let wall_time = self.started.elapsed();
        let mut reports = Vec::with_capacity(outcomes.len());
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (bench, strategy) = &self.pairs[i];
            match outcome {
                Some(Ok(report)) => reports.push(report),
                Some(Err(error)) => {
                    return Err(EngineError {
                        bench: bench.clone(),
                        strategy: *strategy,
                        error,
                    })
                }
                None => panic!("engine job {bench} [{strategy}] panicked or was cancelled"),
            }
        }
        Ok(RunReport {
            strategies: self.strategies,
            workers: self.workers,
            wall_time,
            cache: self.cache.stats(),
            jobs: reports,
        })
    }
}

/// Compile, simulate, and verify one (benchmark, strategy) pair, going
/// through `cache` for every strategy-independent stage. This is the
/// executor task body: a pure function of its arguments (the tracer in
/// `opts` records timing as a side channel but never feeds back into
/// results).
///
/// With an enabled tracer the job records one `cell` span under
/// `parent` with per-stage children: live `prepared` / `profile` /
/// `artifact` / `verify` spans carrying their cache decision as an
/// attribute, and stages whose wall times the pipeline already
/// measures (`parse`, `opt`, compile sub-stages, `reference`,
/// `simulate`) backfilled from those durations. Stage times feed the
/// [`families::STAGE`] histogram only when this job actually computed
/// the stage — cache hits would double-count the original compute.
///
/// # Errors
///
/// Propagates the first failing pipeline stage.
pub fn run_job(
    cache: &ArtifactCache,
    opts: &EngineOptions,
    bench: &Benchmark,
    strategy: Strategy,
    parent: SpanCtx,
) -> Result<JobReport, RunError> {
    let tracer = &opts.tracer;
    let mut cell = tracer.span("cell", "engine", parent);
    cell.attr("bench", &bench.name);
    if tracer.is_enabled() {
        cell.attr("strategy", &strategy.to_string());
    }
    let cell_ctx = cell.ctx();

    let (prep, prepared_cached) = {
        let mut span = tracer.span("prepared", "stage", cell_ctx);
        let (prep, cached) = cache.prepared(&bench.source)?;
        span.attr("cache", if cached { "hit" } else { "miss" });
        if !cached {
            if let Some(anchor) = span.start_instant() {
                let ctx = span.ctx();
                tracer.record_span("parse", "stage", ctx, anchor, prep.parse_time, Vec::new());
                tracer.record_span(
                    "opt",
                    "stage",
                    ctx,
                    anchor + prep.parse_time,
                    prep.opt_time,
                    Vec::new(),
                );
            }
            tracer.observe(families::STAGE, "parse", prep.parse_time);
            tracer.observe(families::STAGE, "opt", prep.opt_time);
        }
        (prep, cached)
    };

    let needs_profile = matches!(strategy, Strategy::ProfileWeighted | Strategy::SelectiveDup);
    let (profile, profile_time, profile_cached) = if needs_profile {
        let mut span = tracer.span("profile", "stage", cell_ctx);
        let (stats, time, cached) = cache.profile(&prep)?;
        span.attr("cache", if cached { "hit" } else { "miss" });
        if !cached {
            tracer.observe(families::STAGE, "profile", time);
        }
        (Some(stats), time, cached)
    } else {
        (None, Duration::ZERO, false)
    };

    let (artifact, artifact_cached, artifact_disk) = {
        let mut span = tracer.span("artifact", "stage", cell_ctx);
        let (artifact, cached, disk) = cache.artifact(&prep, strategy, opts.config, profile)?;
        span.attr(
            "cache",
            if cached {
                "memory-hit"
            } else if disk == Some(true) {
                "disk-hit"
            } else {
                "compiled"
            },
        );
        if !cached && disk != Some(true) {
            // A fresh compile: backfill its sub-stages end to end in
            // pipeline order, anchored at this span's start.
            if let Some(anchor) = span.start_instant() {
                let t = &artifact.timings;
                let ctx = span.ctx();
                let mut at = anchor;
                // The partition stage's histogram label carries the
                // algorithm (rendered by dsp-serve as a separate
                // `partitioner` Prometheus label); the span keeps the
                // plain stage name.
                let partition_label = match opts.config.partitioner {
                    dsp_backend::PartitionerKind::Greedy => "partition|greedy",
                    dsp_backend::PartitionerKind::Refined => "partition|refined",
                    dsp_backend::PartitionerKind::Fm => "partition|fm",
                    dsp_backend::PartitionerKind::Exhaustive => "partition|exhaustive",
                };
                for (name, label, dur) in [
                    ("trial_compaction", "trial_compaction", t.trial_compaction),
                    ("partition", partition_label, t.partition),
                    ("regalloc", "regalloc", t.regalloc),
                    ("lower", "lower", t.lower),
                    ("final_pack", "final_pack", t.final_pack),
                    ("link", "link", t.link),
                ] {
                    tracer.record_span(name, "stage", ctx, at, dur, Vec::new());
                    tracer.observe(families::STAGE, label, dur);
                    at += dur;
                }
            }
        }
        (artifact, cached, disk)
    };

    let sim_start = Instant::now();
    let mut sim = Simulator::new(
        &artifact.program,
        SimOptions {
            dual_ported: strategy.dual_ported(),
            fuel: opts.fuel,
        },
    );
    let stats = sim.run()?;
    let simulate = sim_start.elapsed();
    tracer.record_span(
        "simulate",
        "stage",
        cell_ctx,
        sim_start,
        simulate,
        Vec::new(),
    );
    tracer.observe(families::STAGE, "simulate", simulate);

    let mut verify = Duration::ZERO;
    let mut reference_time = Duration::ZERO;
    let mut reference_cached = None;
    if opts.verify && !bench.check_globals.is_empty() {
        let verify_start = Instant::now();
        let (reference, ref_time, ref_cached) = cache.reference(&prep)?;
        runner::verify_sim(bench, strategy, &sim, reference)?;
        let total = verify_start.elapsed();
        // When this job computed the reference run (a miss), that
        // time is reported under the `reference` stage, not here.
        verify = if ref_cached {
            total
        } else {
            total.saturating_sub(ref_time)
        };
        reference_time = ref_time;
        reference_cached = Some(ref_cached);
        if tracer.is_enabled() {
            let vctx = tracer.record_span(
                "verify",
                "stage",
                cell_ctx,
                verify_start,
                total,
                vec![(
                    "reference_cache",
                    if ref_cached { "hit" } else { "miss" }.to_string(),
                )],
            );
            if !ref_cached {
                tracer.record_span(
                    "reference",
                    "stage",
                    vctx,
                    verify_start,
                    ref_time,
                    Vec::new(),
                );
                tracer.observe(families::STAGE, "reference", ref_time);
            }
            tracer.observe(families::STAGE, "verify", verify);
        }
    }

    let measurement = runner::measure_program(
        &bench.name,
        &artifact.program,
        artifact.strategy,
        artifact.duplicated_vars,
        stats,
    );
    Ok(JobReport {
        bench: bench.name.clone(),
        kind: bench.kind,
        strategy,
        partition_cost: artifact.partition_cost,
        duplicated_words: artifact.duplicated_words,
        partitioner: opts.config.partitioner.label(),
        partition_passes: artifact.partition_passes,
        partition_moves: artifact.partition_moves,
        measurement,
        cached: CacheFlags {
            prepared: prepared_cached,
            profile: needs_profile.then_some(profile_cached),
            reference: reference_cached,
            artifact: artifact_cached,
            artifact_disk,
        },
        stages: StageTimes {
            parse: prep.parse_time,
            opt: prep.opt_time,
            opt_passes: prep
                .opt_passes
                .iter()
                .map(|p| (p.pass.to_string(), p.time))
                .collect(),
            profile: profile_time,
            trial_compaction: artifact.timings.trial_compaction,
            partition: artifact.timings.partition,
            regalloc: artifact.timings.regalloc,
            lower: artifact.timings.lower,
            final_pack: artifact.timings.final_pack,
            link: artifact.timings.link,
            reference: reference_time,
            simulate,
            verify,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_accepts_positive_integers() {
        assert_eq!(parse_worker_count("--jobs", "1"), Ok(1));
        assert_eq!(parse_worker_count("--jobs", "64"), Ok(64));
    }

    #[test]
    fn worker_count_rejects_zero_with_a_clear_error() {
        let err = parse_worker_count("--jobs", "0").unwrap_err();
        assert!(err.contains("--jobs"), "error should name the flag: {err}");
        assert!(err.contains("at least 1"), "error should say why: {err}");
        let err = parse_worker_count("--workers", "0").unwrap_err();
        assert!(err.contains("--workers"));
    }

    #[test]
    fn worker_count_rejects_garbage() {
        for bad in ["", "x", "-1", "1.5", "1e3"] {
            let err = parse_worker_count("--jobs", bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn byte_budget_zero_means_disabled() {
        // `0` is the documented "unbounded" spelling on every byte
        // knob, CLI and serve alike.
        assert_eq!(parse_byte_budget("--cache-max-kb", "0"), Ok(None));
        assert_eq!(
            parse_byte_budget("--cache-max-kb", "64"),
            Ok(Some(64 * 1024))
        );
        assert_eq!(
            parse_byte_budget("--cache-disk-max-kb", "1"),
            Ok(Some(1024))
        );
        for bad in ["", "x", "-1", "1.5"] {
            let err = parse_byte_budget("--cache-max-kb", bad).unwrap_err();
            assert!(err.contains("--cache-max-kb"), "{bad:?} -> {err}");
            assert!(err.contains("0 disables"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn entry_budget_zero_means_disabled() {
        assert_eq!(parse_entry_budget("--cache-capacity", "0"), Ok(None));
        assert_eq!(
            parse_entry_budget("--cache-capacity", "8"),
            Ok(NonZeroUsize::new(8))
        );
        let err = parse_entry_budget("--cache-capacity", "nope").unwrap_err();
        assert!(err.contains("--cache-capacity"));
    }

    #[test]
    fn cache_dir_rejects_empty_and_non_directories() {
        let err = parse_cache_dir("--cache-dir", "").unwrap_err();
        assert!(err.contains("--cache-dir"));
        // A nonexistent path is fine — the store creates it.
        assert!(parse_cache_dir("--cache-dir", "/tmp/definitely-new-dir").is_ok());
        // An existing file is a typo, not a cache.
        let file = std::env::temp_dir().join(format!("cache-dir-test-{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let err = parse_cache_dir("--cache-dir", file.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn engines_can_share_one_executor() {
        let exec = Arc::new(Executor::new(2));
        let a = Engine::with_executor(EngineOptions::default(), Arc::clone(&exec));
        let b = Engine::with_executor(EngineOptions::default(), Arc::clone(&exec));
        let bench = dsp_workloads::kernels::fir(8, 4);
        let ra = a
            .run_matrix(std::slice::from_ref(&bench), &[Strategy::Baseline])
            .unwrap();
        let rb = b
            .run_matrix(std::slice::from_ref(&bench), &[Strategy::Baseline])
            .unwrap();
        assert_eq!(ra.jobs[0].measurement.cycles, rb.jobs[0].measurement.cycles);
        // Both matrices ran on the shared pool.
        assert_eq!(exec.stats().executed_batch, 2);
    }

    #[test]
    fn cancelled_matrix_resolves_queued_jobs_as_cancelled() {
        // A 1-worker executor occupied by a gate keeps the matrix
        // queued; cancelling then must resolve every job without
        // running it.
        let exec = Arc::new(Executor::new(1));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let gate = exec.submit(Priority::Batch, None, move || {
            entered_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("gate must start");

        let engine = Engine::with_executor(EngineOptions::default(), Arc::clone(&exec));
        let bench = dsp_workloads::kernels::fir(8, 4);
        let run = engine.submit_matrix(
            std::slice::from_ref(&bench),
            &Strategy::ALL,
            Priority::Batch,
            CancelToken::new(),
            SpanCtx::NONE,
        );
        run.cancel();
        tx.send(()).unwrap();
        gate.wait().unwrap();
        for i in 0..run.len() {
            assert!(run.wait_job(i).is_none(), "job {i} must be cancelled");
        }
        assert_eq!(engine.cache().stats().misses(), 0, "no work may have run");
    }

    #[test]
    fn traced_matrix_records_stage_spans_and_histograms() {
        let tracer = Tracer::new(4096);
        let engine = Engine::new(EngineOptions {
            jobs: 1,
            tracer: Arc::clone(&tracer),
            ..EngineOptions::default()
        });
        let bench = dsp_workloads::kernels::fir(8, 4);
        let report = engine
            .run_matrix(std::slice::from_ref(&bench), &[Strategy::CbPartition])
            .unwrap();
        assert_eq!(report.jobs.len(), 1);

        // The worker's `exec.run` guard drops just *after* the job
        // handle resolves, so give it a moment to land in the ring.
        let deadline = Instant::now() + Duration::from_secs(5);
        let spans = loop {
            let spans = tracer.snapshot(usize::MAX);
            if spans.iter().any(|s| s.name == "exec.run") {
                break spans;
            }
            assert!(Instant::now() < deadline, "exec.run span never appeared");
            std::thread::sleep(Duration::from_millis(2));
        };
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span `{name}`"))
        };
        let cell = find("cell");
        assert!(cell
            .attrs
            .iter()
            .any(|(k, v)| *k == "bench" && v == &bench.name));
        assert_ne!(cell.trace, 0, "run_matrix mints a trace id");
        // Live stage spans hang off the cell; the executor's wait/run
        // spans join the same trace.
        for name in ["prepared", "artifact", "simulate", "exec.wait", "exec.run"] {
            assert_eq!(
                find(name).trace,
                cell.trace,
                "span `{name}` joins the trace"
            );
        }
        for name in ["prepared", "artifact", "simulate"] {
            assert_eq!(find(name).parent, cell.span, "span `{name}` nests in cell");
        }
        // A cold cache means fresh computes: compile sub-stages are
        // backfilled under the artifact span…
        let artifact = find("artifact");
        assert!(artifact
            .attrs
            .iter()
            .any(|(k, v)| *k == "cache" && v == "compiled"));
        for name in ["trial_compaction", "partition", "regalloc", "lower"] {
            assert_eq!(find(name).parent, artifact.span);
        }
        // …and the stage histogram family saw them.
        let fam = tracer.family_snapshot(families::STAGE);
        let labels: Vec<&str> = fam.iter().map(|(l, _)| l.as_str()).collect();
        for stage in ["parse", "opt", "partition|greedy", "regalloc", "simulate"] {
            assert!(
                labels.contains(&stage),
                "stage histogram for `{stage}`: {labels:?}"
            );
        }

        // A second identical run hits the cache: the artifact span now
        // says so, and stage histograms gain no compile observations.
        let partition_count = fam
            .iter()
            .find(|(l, _)| l == "partition|greedy")
            .map(|(_, s)| s.count)
            .unwrap();
        let _ = engine
            .run_matrix(std::slice::from_ref(&bench), &[Strategy::CbPartition])
            .unwrap();
        let spans = tracer.snapshot(usize::MAX);
        assert!(
            spans.iter().filter(|s| s.name == "artifact").any(|s| s
                .attrs
                .iter()
                .any(|(k, v)| *k == "cache" && v == "memory-hit")),
            "second run must record a memory-hit artifact span"
        );
        let fam = tracer.family_snapshot(families::STAGE);
        assert_eq!(
            fam.iter()
                .find(|(l, _)| l == "partition|greedy")
                .map(|(_, s)| s.count)
                .unwrap(),
            partition_count,
            "cache hits must not double-count stage durations"
        );
    }

    #[test]
    fn untraced_engine_is_the_default_and_records_nothing() {
        let engine = Engine::default();
        assert!(!engine.options().tracer.is_enabled());
        let bench = dsp_workloads::kernels::fir(8, 4);
        engine
            .run_matrix(std::slice::from_ref(&bench), &[Strategy::Baseline])
            .unwrap();
        assert!(engine.options().tracer.snapshot(8).is_empty());
    }
}
