//! Work-queue engine: fans a strategy×workload job matrix out over OS
//! threads, with every worker sharing one [`ArtifactCache`].
//!
//! Determinism: workers only *claim* jobs from an atomic counter; each
//! job's computation is pure (compilation and simulation are
//! deterministic functions of the source, config, and strategy), and
//! results land in a per-job slot that is read back in matrix order.
//! A parallel run is therefore bit-identical to `jobs = 1` in every
//! field except wall times and the per-job `*_cached` flags (which job
//! of a source reaches the cache first is schedule-dependent; the
//! per-layer totals are not).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsp_backend::{CompileConfig, Strategy};
use dsp_sim::{SimOptions, Simulator};
use dsp_workloads::runner::{self, RunError};
use dsp_workloads::Benchmark;

use crate::cache::ArtifactCache;
use crate::report::{CacheFlags, JobReport, RunReport, StageTimes};

/// Parse a user-supplied worker/`--jobs` count.
///
/// The one validation point for every thread-count knob in the
/// workspace (CLI `--jobs`, `dsp-serve --workers`, the load
/// generator's `--connections`): the count must be a positive
/// integer. `0` is rejected here — "use all cores" is spelled by
/// omitting the flag, not by passing zero.
///
/// # Errors
///
/// Returns a human-readable message naming `flag` on empty,
/// non-numeric, or zero input.
pub fn parse_worker_count(flag: &str, input: &str) -> Result<usize, String> {
    match input.parse::<usize>() {
        Ok(0) => Err(format!(
            "{flag} must be at least 1 (omit the flag to use all cores)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} expects a positive integer, got `{input}`")),
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Worker-thread count; `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Driver-level compile configuration applied to every job.
    pub config: CompileConfig,
    /// Simulator fuel (cycle budget) per job.
    pub fuel: u64,
    /// Verify every simulated run against the reference interpreter
    /// (skipped automatically for benchmarks with no checked globals).
    pub verify: bool,
    /// Per-layer artifact-cache capacity; `None` = unbounded (batch
    /// sweeps), `Some(n)` = LRU-bounded to `n` entries per layer
    /// (long-running servers).
    pub cache_capacity: Option<NonZeroUsize>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            jobs: 0,
            config: CompileConfig::default(),
            fuel: SimOptions::default().fuel,
            verify: true,
            cache_capacity: None,
        }
    }
}

/// A job that failed, with enough context to report it.
#[derive(Debug)]
pub struct EngineError {
    /// Benchmark name.
    pub bench: String,
    /// Strategy under which the job failed.
    pub strategy: Strategy,
    /// The underlying failure.
    pub error: RunError,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.bench, self.strategy, self.error)
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The batch compile-and-simulate engine.
#[derive(Default)]
pub struct Engine {
    opts: EngineOptions,
    cache: ArtifactCache,
}

impl Engine {
    /// An engine with the given options and an empty cache (bounded by
    /// [`EngineOptions::cache_capacity`] when set).
    #[must_use]
    pub fn new(opts: EngineOptions) -> Engine {
        let cache = match opts.cache_capacity {
            Some(cap) => ArtifactCache::bounded(cap),
            None => ArtifactCache::new(),
        };
        Engine { opts, cache }
    }

    /// The engine's options.
    #[must_use]
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The shared artifact cache (persists across `run_matrix` calls,
    /// so a repeated sweep is served from cache).
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Worker threads that a matrix of `njobs` jobs would use.
    #[must_use]
    pub fn worker_count(&self, njobs: usize) -> usize {
        let configured = if self.opts.jobs == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.opts.jobs
        };
        configured.max(1).min(njobs.max(1))
    }

    /// Run the full `benches` × `strategies` matrix and collect a
    /// [`RunReport`] with per-job measurements, stage times, and cache
    /// statistics. Jobs are reported bench-major, in argument order,
    /// regardless of execution interleaving.
    ///
    /// # Errors
    ///
    /// Returns the first failing job in matrix order (remaining jobs
    /// still run to completion).
    pub fn run_matrix(
        &self,
        benches: &[Benchmark],
        strategies: &[Strategy],
    ) -> Result<RunReport, EngineError> {
        let jobs: Vec<(&Benchmark, Strategy)> = benches
            .iter()
            .flat_map(|b| strategies.iter().map(move |&s| (b, s)))
            .collect();
        let workers = self.worker_count(jobs.len());
        let started = Instant::now();

        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<JobReport, RunError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let ji = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(bench, strategy)) = jobs.get(ji) else {
                        break;
                    };
                    let outcome = self.run_job(bench, strategy);
                    *results[ji].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        let mut reports = Vec::with_capacity(jobs.len());
        for (ji, cell) in results.into_iter().enumerate() {
            let (bench, strategy) = jobs[ji];
            match cell.into_inner().expect("result slot poisoned") {
                Some(Ok(report)) => reports.push(report),
                Some(Err(error)) => {
                    return Err(EngineError {
                        bench: bench.name.clone(),
                        strategy,
                        error,
                    })
                }
                None => unreachable!("job {ji} was never claimed"),
            }
        }
        Ok(RunReport {
            strategies: strategies.to_vec(),
            workers,
            wall_time: started.elapsed(),
            cache: self.cache.stats(),
            jobs: reports,
        })
    }

    /// Run the whole 23-benchmark suite under `strategies`.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_matrix`].
    pub fn run_suite(&self, strategies: &[Strategy]) -> Result<RunReport, EngineError> {
        self.run_matrix(&dsp_workloads::all(), strategies)
    }

    /// Compile, simulate, and verify one (benchmark, strategy) pair,
    /// going through the cache for every strategy-independent stage.
    fn run_job(&self, bench: &Benchmark, strategy: Strategy) -> Result<JobReport, RunError> {
        let (prep, prepared_cached) = self.cache.prepared(&bench.source)?;

        let needs_profile = matches!(strategy, Strategy::ProfileWeighted | Strategy::SelectiveDup);
        let (profile, profile_time, profile_cached) = if needs_profile {
            let (stats, time, cached) = self.cache.profile(&prep)?;
            (Some(stats), time, cached)
        } else {
            (None, Duration::ZERO, false)
        };

        let (artifact, artifact_cached) =
            self.cache
                .artifact(&prep, strategy, self.opts.config, profile)?;

        let sim_start = Instant::now();
        let mut sim = Simulator::new(
            &artifact.output.program,
            SimOptions {
                dual_ported: strategy.dual_ported(),
                fuel: self.opts.fuel,
            },
        );
        let stats = sim.run()?;
        let simulate = sim_start.elapsed();

        let mut verify = Duration::ZERO;
        let mut reference_time = Duration::ZERO;
        let mut reference_cached = None;
        if self.opts.verify && !bench.check_globals.is_empty() {
            let verify_start = Instant::now();
            let (reference, ref_time, ref_cached) = self.cache.reference(&prep)?;
            runner::verify_sim(bench, strategy, &sim, reference)?;
            let total = verify_start.elapsed();
            // When this job computed the reference run (a miss), that
            // time is reported under the `reference` stage, not here.
            verify = if ref_cached {
                total
            } else {
                total.saturating_sub(ref_time)
            };
            reference_time = ref_time;
            reference_cached = Some(ref_cached);
        }

        let measurement = runner::build_measurement(bench, &artifact.output, stats);
        Ok(JobReport {
            bench: bench.name.clone(),
            kind: bench.kind,
            strategy,
            partition_cost: artifact.output.alloc.partition_cost,
            duplicated_words: artifact.duplicated_words(),
            measurement,
            cached: CacheFlags {
                prepared: prepared_cached,
                profile: needs_profile.then_some(profile_cached),
                reference: reference_cached,
                artifact: artifact_cached,
            },
            stages: StageTimes {
                parse: prep.parse_time,
                opt: prep.opt_time,
                opt_passes: prep
                    .opt_passes
                    .iter()
                    .map(|p| (p.pass.to_string(), p.time))
                    .collect(),
                profile: profile_time,
                trial_compaction: artifact.timings.trial_compaction,
                partition: artifact.timings.partition,
                regalloc: artifact.timings.regalloc,
                lower: artifact.timings.lower,
                final_pack: artifact.timings.final_pack,
                link: artifact.timings.link,
                reference: reference_time,
                simulate,
                verify,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_accepts_positive_integers() {
        assert_eq!(parse_worker_count("--jobs", "1"), Ok(1));
        assert_eq!(parse_worker_count("--jobs", "64"), Ok(64));
    }

    #[test]
    fn worker_count_rejects_zero_with_a_clear_error() {
        let err = parse_worker_count("--jobs", "0").unwrap_err();
        assert!(err.contains("--jobs"), "error should name the flag: {err}");
        assert!(err.contains("at least 1"), "error should say why: {err}");
        let err = parse_worker_count("--workers", "0").unwrap_err();
        assert!(err.contains("--workers"));
    }

    #[test]
    fn worker_count_rejects_garbage() {
        for bad in ["", "x", "-1", "1.5", "1e3"] {
            let err = parse_worker_count("--jobs", bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?} -> {err}");
        }
    }
}
