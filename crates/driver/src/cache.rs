//! Content-hashed artifact cache.
//!
//! A sweep evaluates the same source under several strategies, and the
//! front half of the pipeline — parsing, machine-independent
//! optimization, the profiling run, and the reference-interpreter run —
//! is strategy-independent. The cache splits the pipeline at exactly
//! those seams:
//!
//! * **prepared** — parse + optimize, keyed on the FNV-1a hash of the
//!   source text; shared by every strategy of a source.
//! * **profile** — the profiling interpreter run over the optimized IR
//!   (`Pr`/`SelDup` only); one per source.
//! * **reference** — the reference interpreter's final global values,
//!   used for verification; one per source.
//! * **artifact** — the fully compiled program (a distilled
//!   [`CompileOutput`]), keyed on (source hash, [`CompileConfig`],
//!   [`Strategy`]); a repeated sweep compiles each pair exactly once.
//!
//! Below the in-memory artifact layer sits an optional **disk tier**
//! ([`crate::store::DiskStore`]): an in-memory miss first tries to
//! rehydrate the artifact from a content-addressed on-disk entry, and
//! a fresh compile is published back (atomic temp-file + rename), so
//! a restarted process warms from previous work. Each cell is a pure
//! function of its key, which is what makes artifacts safely durable.
//!
//! Every layer stores its value in an [`OnceLock`] fetched from the map
//! under a short-lived mutex, so concurrent workers asking for the same
//! key block on one computation instead of duplicating it. For an
//! unbounded cache, the miss count of a layer therefore equals the
//! number of distinct keys ever requested — a deterministic quantity,
//! independent of thread scheduling.
//!
//! # Bounding
//!
//! A batch sweep can afford an unbounded cache (23 sources × 7
//! strategies), but a long-running server cannot: every novel request
//! body would pin a parsed program and a compiled artifact forever.
//! [`ArtifactCache::bounded`] caps the `prepared` and `artifact` maps
//! at a fixed entry count with least-recently-used eviction, and
//! [`ArtifactCache::with_limits`] adds a per-layer byte budget over
//! *estimated* resident sizes (the dominant vectors — IR ops, VLIW
//! instructions, data-image words — at fixed per-element costs; sizes
//! are recorded when a fresh computation lands, so an entry being
//! computed is briefly accounted at zero). Whichever bound is exceeded
//! first evicts; evictions and evicted bytes are counted per layer in
//! [`CacheStats`]. Eviction only drops the map's reference — in-flight
//! users of an evicted slot hold their own `Arc` and finish normally;
//! a later request recomputes. A single entry larger than the byte
//! budget stays resident (the cache never evicts below one entry).
//! (The profile/reference sub-results ride inside their
//! `PreparedSource` entry and are evicted with it.)

use std::collections::HashMap;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use dsp_backend::opt::PassTime;
use dsp_backend::{
    compile_optimized, profile_ir, CompileConfig, CompileError, CompileOutput, CompileTimings,
    Strategy,
};
use dsp_bankalloc::Var;
use dsp_ir::{ExecStats, InterpError, Program};
use dsp_machine::{VliwInst, VliwProgram, Word};
use dsp_workloads::runner;

use crate::store::{DiskStats, DiskStore};

/// FNV-1a hash of a byte string — the cache's content hash.
///
/// 64 bits is ample for the handful of sources a sweep sees; the cache
/// is in-memory and process-local, so a collision could only arise
/// within one run over attacker-free inputs.
#[must_use]
pub fn content_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable index of a strategy (position in [`Strategy::ALL`]).
fn strategy_index(strategy: Strategy) -> u8 {
    Strategy::ALL
        .iter()
        .position(|&s| s == strategy)
        .map_or(u8::MAX, |i| i as u8)
}

/// Encode a [`CompileConfig`] into cache-key bits.
fn config_key(config: CompileConfig) -> u64 {
    u64::from(config.interrupt_safe_dup) | u64::from(config.partitioner.index()) << 1
}

/// Cache key of one compiled artifact: (source text, driver
/// configuration, strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// [`content_hash`] of the source text.
    pub source: u64,
    /// Encoded [`CompileConfig`].
    pub config: u64,
    /// Index into [`Strategy::ALL`].
    pub strategy: u8,
}

impl ArtifactKey {
    /// Build the key for a (source, config, strategy) triple.
    #[must_use]
    pub fn new(source: &str, config: CompileConfig, strategy: Strategy) -> ArtifactKey {
        ArtifactKey {
            source: content_hash(source.as_bytes()),
            config: config_key(config),
            strategy: strategy_index(strategy),
        }
    }
}

/// Snapshot of per-layer hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parse+optimize layer hits.
    pub prepared_hits: u64,
    /// Parse+optimize layer misses (distinct sources compiled).
    pub prepared_misses: u64,
    /// Profiling-run hits.
    pub profile_hits: u64,
    /// Profiling-run misses.
    pub profile_misses: u64,
    /// Reference-run hits.
    pub reference_hits: u64,
    /// Reference-run misses.
    pub reference_misses: u64,
    /// Compiled-artifact hits.
    pub artifact_hits: u64,
    /// Compiled-artifact misses (distinct (source, config, strategy)
    /// triples compiled).
    pub artifact_misses: u64,
    /// Prepared-source entries dropped by LRU eviction (bounded caches
    /// only).
    pub prepared_evictions: u64,
    /// Compiled-artifact entries dropped by LRU eviction (bounded
    /// caches only).
    pub artifact_evictions: u64,
    /// Estimated bytes resident in the prepared layer.
    pub prepared_bytes: u64,
    /// Estimated bytes resident in the artifact layer.
    pub artifact_bytes: u64,
    /// Estimated bytes dropped from the prepared layer by eviction.
    pub prepared_evicted_bytes: u64,
    /// Estimated bytes dropped from the artifact layer by eviction.
    pub artifact_evicted_bytes: u64,
    /// Disk-tier counters; `None` when no disk store is configured.
    pub disk: Option<DiskStats>,
}

impl CacheStats {
    /// Total hits across all layers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.prepared_hits + self.profile_hits + self.reference_hits + self.artifact_hits
    }

    /// Total misses across all layers.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.prepared_misses + self.profile_misses + self.reference_misses + self.artifact_misses
    }

    /// Fraction of lookups served from cache, `0.0` when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Total LRU evictions across all layers.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.prepared_evictions + self.artifact_evictions
    }

    /// Estimated bytes resident across the bounded layers.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.prepared_bytes + self.artifact_bytes
    }

    /// Estimated bytes dropped by eviction across the bounded layers.
    #[must_use]
    pub fn evicted_bytes(&self) -> u64 {
        self.prepared_evicted_bytes + self.artifact_evicted_bytes
    }
}

/// Reference snapshot: final words of every global, by name.
pub type ReferenceGlobals = Vec<(String, Vec<Word>)>;

/// Strategy-independent front half of the pipeline for one source:
/// parsed IR, optimized IR, and lazily computed profile/reference runs.
pub struct PreparedSource {
    /// [`content_hash`] of the source text.
    pub source_hash: u64,
    /// Front-end output (pre-optimization) — the reference
    /// interpreter's subject.
    pub ir: Program,
    /// Optimized IR — the subject of every per-strategy compilation.
    pub opt_ir: Program,
    /// Wall time of the front end.
    pub parse_time: Duration,
    /// Wall time of the optimization pipeline.
    pub opt_time: Duration,
    /// Per-pass breakdown of `opt_time`.
    pub opt_passes: Vec<PassTime>,
    profile: OnceLock<(Result<ExecStats, CompileError>, Duration)>,
    reference: OnceLock<(Result<ReferenceGlobals, InterpError>, Duration)>,
}

/// A fully compiled (source, config, strategy) artifact with its
/// per-stage wall times.
///
/// This is the cache's *durable* shape: exactly the fields a job needs
/// after compilation (the linked program, the report scalars, and the
/// back-half stage times), with the interference graph, allocation
/// trace, and IR of the in-flight [`CompileOutput`] distilled away.
/// That keeps resident entries small and makes the artifact
/// serializable for the disk tier (see [`crate::store`]).
pub struct CompiledArtifact {
    /// The linked, executable program.
    pub program: VliwProgram,
    /// Strategy this artifact was compiled under.
    pub strategy: Strategy,
    /// The partitioner's objective value (estimated serialized
    /// accesses).
    pub partition_cost: u64,
    /// Number of variables the allocator duplicated.
    pub duplicated_vars: usize,
    /// Data words occupied by duplicated variables (the second copy
    /// only), i.e. the memory the duplication strategies trade for
    /// cycles.
    pub duplicated_words: u64,
    /// Partitioner passes run while building this artifact.
    pub partition_passes: u64,
    /// Partitioner moves retained in the final bank assignment.
    pub partition_moves: u64,
    /// Back-half stage times recorded when this artifact was built
    /// (`opt`/`profile` are zero — those stages live in
    /// [`PreparedSource`]).
    pub timings: CompileTimings,
}

impl CompiledArtifact {
    /// Distill a freshly compiled [`CompileOutput`] into the durable
    /// artifact shape, computing the duplication footprint while the
    /// allocation and IR are still at hand.
    #[must_use]
    pub fn from_output(output: CompileOutput, timings: CompileTimings) -> CompiledArtifact {
        let ir = &output.ir;
        let duplicated_words = output
            .alloc
            .duplicated()
            .iter()
            .map(|v| match *v {
                Var::Global(g) => u64::from(ir.globals[g.0 as usize].size),
                Var::Local(f, l) => u64::from(ir.funcs[f.0 as usize].locals[l.0 as usize].size),
                // Array params alias caller storage; no copy of their own.
                Var::ParamSlot(..) => 0,
            })
            .sum();
        CompiledArtifact {
            program: output.program,
            strategy: output.strategy,
            partition_cost: output.alloc.partition_cost,
            duplicated_vars: output.alloc.duplicated().len(),
            duplicated_words,
            partition_passes: u64::from(output.alloc.partition_passes),
            partition_moves: output.alloc.partition_moves,
            timings,
        }
    }
}

type Slot<T> = Arc<OnceLock<T>>;

/// One map entry: the computation slot, its recency stamp, and its
/// estimated size (zero until the computation lands and records it).
struct Entry<T> {
    slot: Slot<T>,
    last_used: u64,
    bytes: u64,
}

impl<T> Default for Entry<T> {
    fn default() -> Entry<T> {
        Entry {
            slot: Arc::default(),
            last_used: 0,
            bytes: 0,
        }
    }
}

struct LayerInner<K, T> {
    map: HashMap<K, Entry<T>>,
    /// Monotonic access counter; the entry with the smallest stamp is
    /// the LRU victim.
    tick: u64,
    /// Sum of every entry's recorded `bytes`.
    bytes: u64,
}

/// One cache layer: a keyed map of [`OnceLock`] slots with optional
/// LRU bounding by entry count and/or estimated bytes.
struct Layer<K, T> {
    inner: Mutex<LayerInner<K, T>>,
    capacity: Option<NonZeroUsize>,
    max_bytes: Option<u64>,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl<K: Eq + Hash + Clone, T> Layer<K, T> {
    fn new(capacity: Option<NonZeroUsize>, max_bytes: Option<u64>) -> Layer<K, T> {
        Layer {
            inner: Mutex::new(LayerInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity,
            max_bytes,
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// Fetch-or-insert the [`OnceLock`] slot for `key`; the map lock is
    /// held only for the lookup (and a possible O(n²) eviction scan),
    /// never during computation.
    fn slot(&self, key: K) -> Slot<T> {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.entry(key).or_default();
        entry.last_used = tick;
        let slot = entry.slot.clone();
        self.enforce(&mut inner);
        slot
    }

    /// Record the estimated size of `key`'s computed value and re-apply
    /// the bounds. Recording counts as a touch, so the entry that just
    /// finished computing is not the immediate LRU victim.
    fn record_bytes(&self, key: &K, bytes: u64) {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let Some(entry) = inner.map.get_mut(key) else {
            // Evicted while computing; nothing resident to account.
            return;
        };
        let old = entry.bytes;
        entry.bytes = bytes;
        entry.last_used = tick;
        inner.bytes = inner.bytes - old + bytes;
        self.enforce(&mut inner);
    }

    /// Evict LRU entries until both bounds hold, but never below one
    /// entry — the just-touched key must survive its own insertion, and
    /// a single over-budget entry is better resident than thrashing.
    fn enforce(&self, inner: &mut LayerInner<K, T>) {
        loop {
            let over_count = self.capacity.is_some_and(|cap| inner.map.len() > cap.get());
            let over_bytes = self.max_bytes.is_some_and(|max| inner.bytes > max);
            if (!over_count && !over_bytes) || inner.map.len() <= 1 {
                return;
            }
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("cache mutex poisoned").map.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.lock().expect("cache mutex poisoned").bytes
    }
}

fn count(fresh: bool, hits: &AtomicU64, misses: &AtomicU64) {
    if fresh {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide artifact cache shared by all workers of an engine.
pub struct ArtifactCache {
    prepared: Layer<u64, Result<Arc<PreparedSource>, CompileError>>,
    artifacts: Layer<ArtifactKey, Result<Arc<CompiledArtifact>, CompileError>>,
    /// Optional disk tier under the artifact layer: consulted on an
    /// in-memory miss, written behind on a fresh compile. Every disk
    /// failure is absorbed by the store (counted, never propagated),
    /// so a broken disk degrades the cache to in-memory operation.
    store: Option<Arc<DiskStore>>,
    prepared_hits: AtomicU64,
    prepared_misses: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    reference_hits: AtomicU64,
    reference_misses: AtomicU64,
    artifact_hits: AtomicU64,
    artifact_misses: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::with_limits(None, None)
    }
}

impl ArtifactCache {
    /// An empty, unbounded cache (batch sweeps: every layer retained).
    #[must_use]
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// An empty cache holding at most `capacity` entries in each of the
    /// `prepared` and `artifact` layers, evicting least-recently-used
    /// entries beyond that (long-running servers: bounded memory).
    #[must_use]
    pub fn bounded(capacity: NonZeroUsize) -> ArtifactCache {
        ArtifactCache::with_limits(Some(capacity), None)
    }

    /// An empty cache bounded by entry count and/or estimated bytes,
    /// each applied per layer; `None` leaves that bound off.
    #[must_use]
    pub fn with_limits(capacity: Option<NonZeroUsize>, max_bytes: Option<u64>) -> ArtifactCache {
        ArtifactCache::with_store(capacity, max_bytes, None)
    }

    /// [`ArtifactCache::with_limits`] plus a disk tier under the
    /// artifact layer. An in-memory artifact miss first consults the
    /// store; a fresh compile is published to it. The store's failure
    /// handling is entirely internal: every IO error is counted in
    /// [`DiskStats`] and the cache continues in-memory.
    #[must_use]
    pub fn with_store(
        capacity: Option<NonZeroUsize>,
        max_bytes: Option<u64>,
        store: Option<Arc<DiskStore>>,
    ) -> ArtifactCache {
        ArtifactCache {
            prepared: Layer::new(capacity, max_bytes),
            artifacts: Layer::new(capacity, max_bytes),
            store,
            prepared_hits: AtomicU64::new(0),
            prepared_misses: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
            reference_hits: AtomicU64::new(0),
            reference_misses: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
        }
    }

    /// The disk tier, when one is configured.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Entries currently resident in the (prepared, artifact) layers.
    #[must_use]
    pub fn resident(&self) -> (usize, usize) {
        (self.prepared.len(), self.artifacts.len())
    }

    /// Estimated bytes resident in the (prepared, artifact) layers.
    #[must_use]
    pub fn resident_bytes(&self) -> (u64, u64) {
        (self.prepared.bytes(), self.artifacts.bytes())
    }

    /// Parse and optimize `source`, or return the cached result.
    ///
    /// The boolean is `true` when this call was served from cache.
    ///
    /// # Errors
    ///
    /// Returns the (cached) front-end error for unparsable sources.
    pub fn prepared(&self, source: &str) -> Result<(Arc<PreparedSource>, bool), CompileError> {
        let hash = content_hash(source.as_bytes());
        let cell = self.prepared.slot(hash);
        let mut fresh = false;
        let result = cell.get_or_init(|| {
            fresh = true;
            prepare(source, hash)
        });
        count(fresh, &self.prepared_hits, &self.prepared_misses);
        if fresh {
            self.prepared.record_bytes(&hash, prepared_bytes(result));
        }
        result.clone().map(|p| (p, !fresh))
    }

    /// The profiling run over `prep.opt_ir`, computed at most once per
    /// source.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Profile`] if the profiling run traps.
    pub fn profile<'a>(
        &self,
        prep: &'a PreparedSource,
    ) -> Result<(&'a ExecStats, Duration, bool), CompileError> {
        let mut fresh = false;
        let (result, time) = prep.profile.get_or_init(|| {
            fresh = true;
            let start = Instant::now();
            (profile_ir(&prep.opt_ir), start.elapsed())
        });
        count(fresh, &self.profile_hits, &self.profile_misses);
        match result {
            Ok(stats) => Ok((stats, *time, !fresh)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The reference interpreter's final global values for `prep.ir`,
    /// computed at most once per source.
    ///
    /// # Errors
    ///
    /// Returns the (cached) [`InterpError`] if the reference run traps.
    pub fn reference<'a>(
        &self,
        prep: &'a PreparedSource,
    ) -> Result<(&'a ReferenceGlobals, Duration, bool), InterpError> {
        let mut fresh = false;
        let (result, time) = prep.reference.get_or_init(|| {
            fresh = true;
            let start = Instant::now();
            (runner::reference_globals(&prep.ir), start.elapsed())
        });
        count(fresh, &self.reference_hits, &self.reference_misses);
        match result {
            Ok(globals) => Ok((globals, *time, !fresh)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Compile `prep.opt_ir` under `strategy`, or return the cached
    /// artifact. `profile` must be supplied for the profile-driven
    /// strategies (fetch it via [`ArtifactCache::profile`]).
    ///
    /// The first boolean is `true` when this call was served from the
    /// in-memory layer. The second reports the disk tier: `None` when
    /// no store is configured or the in-memory layer hit (disk not
    /// consulted), `Some(true)` when the artifact was rehydrated from
    /// disk, `Some(false)` when the disk was consulted, missed, and
    /// the artifact was compiled (then published back).
    ///
    /// # Errors
    ///
    /// Returns the (cached) back-end error.
    pub fn artifact(
        &self,
        prep: &PreparedSource,
        strategy: Strategy,
        config: CompileConfig,
        profile: Option<&ExecStats>,
    ) -> Result<(Arc<CompiledArtifact>, bool, Option<bool>), CompileError> {
        let key = ArtifactKey {
            source: prep.source_hash,
            config: config_key(config),
            strategy: strategy_index(strategy),
        };
        let cell = self.artifacts.slot(key);
        let mut fresh = false;
        let mut disk = None;
        let result = cell.get_or_init(|| {
            fresh = true;
            if let Some(store) = &self.store {
                if let Some(artifact) = store.load(&key) {
                    disk = Some(true);
                    return Ok(artifact);
                }
                disk = Some(false);
            }
            let compiled = compile_optimized(&prep.opt_ir, strategy, config, profile)
                .map(|(output, timings)| Arc::new(CompiledArtifact::from_output(output, timings)));
            if let (Some(store), Ok(artifact)) = (&self.store, &compiled) {
                // Write-behind: failures are counted in the store and
                // never surface — errors (disk full, torn writes) only
                // cost future warm starts, not this job.
                store.publish(&key, artifact);
            }
            compiled
        });
        count(fresh, &self.artifact_hits, &self.artifact_misses);
        if fresh {
            self.artifacts.record_bytes(&key, artifact_bytes(result));
        }
        result.clone().map(|a| (a, !fresh, disk))
    }

    /// Snapshot the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            prepared_hits: self.prepared_hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            reference_hits: self.reference_hits.load(Ordering::Relaxed),
            reference_misses: self.reference_misses.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            prepared_evictions: self.prepared.evictions.load(Ordering::Relaxed),
            artifact_evictions: self.artifacts.evictions.load(Ordering::Relaxed),
            prepared_bytes: self.prepared.bytes(),
            artifact_bytes: self.artifacts.bytes(),
            prepared_evicted_bytes: self.prepared.evicted_bytes.load(Ordering::Relaxed),
            artifact_evicted_bytes: self.artifacts.evicted_bytes.load(Ordering::Relaxed),
            disk: self.store.as_ref().map(|s| s.stats()),
        }
    }
}

/// Estimated heap footprint of an IR program: the dominant vectors
/// (ops, globals' init words) at fixed per-element costs; names and
/// small per-item vecs ride in the constants.
fn program_bytes(p: &Program) -> u64 {
    const OP_BYTES: u64 = 48;
    const GLOBAL_BYTES: u64 = 64;
    const FUNC_BYTES: u64 = 192;
    let ops: u64 = p.funcs.iter().map(|f| f.op_count() as u64).sum();
    let init: u64 = p.globals.iter().map(|g| g.init.len() as u64).sum();
    ops * OP_BYTES
        + init * std::mem::size_of::<Word>() as u64
        + p.globals.len() as u64 * GLOBAL_BYTES
        + p.funcs.len() as u64 * FUNC_BYTES
}

/// Cached errors occupy a nominal footprint: the message, not a program.
const ERROR_BYTES: u64 = 64;

fn prepared_bytes(entry: &Result<Arc<PreparedSource>, CompileError>) -> u64 {
    match entry {
        // Both IR copies; the lazily filled profile/reference slots are
        // small next to them and ride in the constant.
        Ok(p) => program_bytes(&p.ir) + program_bytes(&p.opt_ir) + 256,
        Err(_) => ERROR_BYTES,
    }
}

fn artifact_bytes(entry: &Result<Arc<CompiledArtifact>, CompileError>) -> u64 {
    match entry {
        Ok(a) => {
            // Per-symbol/function/label metadata at a fixed cost; the
            // instruction and data vectors dominate.
            const SYMBOL_BYTES: u64 = 96;
            let prog = &a.program;
            let insts = prog.insts.len() as u64 * std::mem::size_of::<VliwInst>() as u64;
            let data = (prog.x_image.init.len() + prog.y_image.init.len()) as u64
                * std::mem::size_of::<Word>() as u64;
            let meta = (prog.symbols.len() + prog.functions.len() + prog.labels.len()) as u64
                * SYMBOL_BYTES;
            insts + data + meta + 512
        }
        Err(_) => ERROR_BYTES,
    }
}

fn prepare(source: &str, hash: u64) -> Result<Arc<PreparedSource>, CompileError> {
    let parse_start = Instant::now();
    let ir = dsp_frontend::compile_str(source)?;
    let parse_time = parse_start.elapsed();
    let mut opt_ir = ir.clone();
    let opt_start = Instant::now();
    let opt_passes = dsp_backend::opt::optimize_timed(&mut opt_ir);
    let opt_time = opt_start.elapsed();
    Ok(Arc::new(PreparedSource {
        source_hash: hash,
        ir,
        opt_ir,
        parse_time,
        opt_time,
        opt_passes,
        profile: OnceLock::new(),
        reference: OnceLock::new(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int out; void main() { out = 7; }";

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn prepared_is_cached_by_content() {
        let cache = ArtifactCache::new();
        let (a, hit_a) = cache.prepared(SRC).unwrap();
        let (b, hit_b) = cache.prepared(SRC).unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.prepared_misses, stats.prepared_hits), (1, 1));
    }

    #[test]
    fn artifact_key_separates_config_and_strategy() {
        let dup = CompileConfig {
            interrupt_safe_dup: true,
            ..CompileConfig::default()
        };
        let fm = CompileConfig {
            partitioner: dsp_backend::PartitionerKind::Fm,
            ..CompileConfig::default()
        };
        let k1 = ArtifactKey::new(SRC, CompileConfig::default(), Strategy::CbPartition);
        let k2 = ArtifactKey::new(SRC, dup, Strategy::CbPartition);
        let k3 = ArtifactKey::new(SRC, CompileConfig::default(), Strategy::Baseline);
        let k5 = ArtifactKey::new(SRC, fm, Strategy::CbPartition);
        assert_ne!(k1, k5, "partitioner is part of the cache key");
        assert_ne!(k2, k5, "partitioner and dup-safety bits do not collide");
        let k4 = ArtifactKey::new(
            "int out; void main() { out = 8; }",
            CompileConfig::default(),
            Strategy::CbPartition,
        );
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        assert_eq!(
            k1,
            ArtifactKey::new(SRC, CompileConfig::default(), Strategy::CbPartition)
        );
    }

    #[test]
    fn bounded_cache_evicts_lru_entries() {
        let cache = ArtifactCache::bounded(NonZeroUsize::new(2).unwrap());
        let src_b = "int out; void main() { out = 8; }";
        let src_c = "int out; void main() { out = 9; }";
        cache.prepared(SRC).unwrap(); // {A}
        cache.prepared(src_b).unwrap(); // {A, B}
        cache.prepared(SRC).unwrap(); // touch A: B is now LRU
        cache.prepared(src_c).unwrap(); // {A, C} — evicts B
        assert_eq!(cache.resident().0, 2);
        let (_, hit) = cache.prepared(SRC).unwrap();
        assert!(hit, "recently-used entry must survive eviction");
        let (_, hit) = cache.prepared(src_b).unwrap(); // recompute; evicts C
        assert!(!hit, "LRU entry must have been evicted");
        let stats = cache.stats();
        assert_eq!(stats.prepared_evictions, 2);
        assert_eq!(stats.evictions(), 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ArtifactCache::new();
        for i in 0..16 {
            cache
                .prepared(&format!("int out; void main() {{ out = {i}; }}"))
                .unwrap();
        }
        assert_eq!(cache.resident().0, 16);
        assert_eq!(cache.stats().evictions(), 0);
    }

    #[test]
    fn bounded_cache_evicts_artifacts_independently() {
        let cache = ArtifactCache::bounded(NonZeroUsize::new(1).unwrap());
        let (prep, _) = cache.prepared(SRC).unwrap();
        let cfg = CompileConfig::default();
        cache
            .artifact(&prep, Strategy::Baseline, cfg, None)
            .unwrap();
        cache
            .artifact(&prep, Strategy::CbPartition, cfg, None)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(cache.resident().1, 1);
        assert_eq!(stats.artifact_evictions, 1);
        // The prepared layer only ever held one entry — no evictions.
        assert_eq!(stats.prepared_evictions, 0);
    }

    #[test]
    fn byte_budget_evicts_down_to_one_entry() {
        // A 1-byte budget can never hold two entries; each new source
        // must push out the previous one, but the newest always stays.
        let cache = ArtifactCache::with_limits(None, Some(1));
        cache.prepared(SRC).unwrap();
        let (first_bytes, _) = cache.resident_bytes();
        assert!(first_bytes > 1, "estimate must exceed the tiny budget");
        assert_eq!(cache.stats().prepared_evictions, 0, "sole entry stays");

        cache.prepared("int out; void main() { out = 8; }").unwrap();
        let stats = cache.stats();
        assert_eq!(cache.resident().0, 1, "budget holds one entry at most");
        assert_eq!(stats.prepared_evictions, 1);
        assert_eq!(stats.prepared_evicted_bytes, first_bytes);
        let (_, hit) = cache.prepared(SRC).unwrap();
        assert!(!hit, "evicted source must recompute");
    }

    #[test]
    fn byte_budget_bounds_artifacts_independently() {
        let cache = ArtifactCache::with_limits(None, Some(1));
        let (prep, _) = cache.prepared(SRC).unwrap();
        let cfg = CompileConfig::default();
        cache
            .artifact(&prep, Strategy::Baseline, cfg, None)
            .unwrap();
        cache
            .artifact(&prep, Strategy::CbPartition, cfg, None)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(cache.resident().1, 1);
        assert_eq!(stats.artifact_evictions, 1);
        assert!(stats.artifact_evicted_bytes > 0);
        assert!(stats.artifact_bytes > 0);
    }

    #[test]
    fn unbounded_cache_accounts_bytes_without_evicting() {
        let cache = ArtifactCache::new();
        cache.prepared(SRC).unwrap();
        let stats = cache.stats();
        assert!(stats.prepared_bytes > 0);
        assert_eq!(stats.evicted_bytes(), 0);
        assert_eq!(stats.resident_bytes(), stats.prepared_bytes);
    }

    #[test]
    fn front_end_errors_are_cached_too() {
        let cache = ArtifactCache::new();
        assert!(cache.prepared("not a program").is_err());
        assert!(cache.prepared("not a program").is_err());
        let stats = cache.stats();
        assert_eq!((stats.prepared_misses, stats.prepared_hits), (1, 1));
    }
}
