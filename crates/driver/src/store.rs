//! Crash-safe on-disk artifact store — the cache's durable fourth tier.
//!
//! A [`DiskStore`] persists compiled artifacts ([`CompiledArtifact`])
//! keyed by [`ArtifactKey`] so a restarted process (a fresh CLI sweep
//! or a rebooted `dsp-serve`) warms from previous work instead of
//! recompiling. Because every artifact is a pure function of its
//! content-hashed key, entries never go stale — they are only ever
//! missing, valid, or corrupt.
//!
//! # Entry format
//!
//! One file per artifact, named `{source:016x}-{config:016x}-{strategy:02x}.art`
//! inside the store directory. Each file is:
//!
//! | bytes | field |
//! |-------|-------|
//! | 4     | magic `b"DSPB"` |
//! | 4     | format version (little-endian u32, currently 1) |
//! | 8+8+8 | key: source hash, config bits, strategy index (as u64) |
//! | 8     | payload length in bytes |
//! | 4     | CRC32 (IEEE) of the payload |
//! | …     | payload (instruction stream via [`dsp_machine::encode_stream`], data images, symbols, report scalars, stage times) |
//!
//! # Crash safety
//!
//! * **Atomic publish** — entries are written to `tmp/` inside the
//!   store directory, fsynced, then renamed into place. Readers only
//!   ever see absent or complete files; a process killed mid-write
//!   leaves at most a stray temp file, removed by the next startup
//!   sweep.
//! * **Corruption quarantine** — a load that fails validation (bad
//!   magic, version, key echo, length, CRC, or payload decode) moves
//!   the file into `quarantine/` and counts it; it is never served and
//!   never fatal.
//! * **Startup sweep** — [`DiskStore::open`] scans the directory,
//!   validates every entry, quarantines the bad ones, removes stray
//!   temp files, and reports the result as a [`DiskSweep`]. `open`
//!   itself is infallible: an unusable directory yields an empty store
//!   whose sweep carries the error and whose operations degrade to
//!   counted no-ops.
//!
//! # Graceful degradation
//!
//! Every operation after `open` is fail-soft: IO errors bump
//! [`DiskStats::errors`] and the caller proceeds as if the disk tier
//! did not exist. The engine therefore never fails, blocks, or panics
//! because of the disk — it only loses warm starts. This is proven by
//! the fault-injection suite: [`FaultIo`] wraps the real IO layer and
//! fails, short-writes, or corrupts the Nth operation of a chosen kind
//! deterministically.
//!
//! # Bounding
//!
//! An optional byte budget evicts least-recently-*used* entries, where
//! "used" is the file mtime: loads touch the file, so warm entries
//! survive and cold ones are dropped first. Like the in-memory layers,
//! the store never evicts below one entry.

use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use dsp_backend::{CompileTimings, Strategy};
use dsp_machine::{
    decode_stream, encode_stream, Bank, DataImage, DataSymbol, InstAddr, Label, VliwFunction,
    VliwProgram, Word,
};

use crate::cache::{ArtifactKey, CompiledArtifact};

/// File magic of a store entry.
pub const MAGIC: [u8; 4] = *b"DSPB";
/// Entry format version; bump on any layout change (old entries are
/// quarantined, not misread).
pub const FORMAT_VERSION: u32 = 2;
/// Fixed header length in bytes (magic + version + key + length + CRC).
pub const HEADER_LEN: usize = 4 + 4 + 24 + 8 + 4;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, no dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte string — the entry payload checksum.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Injectable IO layer
// ---------------------------------------------------------------------

/// Metadata for one file returned by [`StoreIo::list`].
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Full path.
    pub path: PathBuf,
    /// Length in bytes.
    pub len: u64,
    /// Last-modified time (the store's LRU recency signal).
    pub modified: SystemTime,
}

/// The filesystem operations a [`DiskStore`] performs, as a trait so
/// tests can inject deterministic faults (see [`FaultIo`]). The store
/// treats every method as fallible and absorbs failures.
pub trait StoreIo: Send + Sync {
    /// Create a directory and its parents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Read a whole file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create `path` and write `bytes` durably (create + write + fsync).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error from any step.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to` (same filesystem).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// List the plain files directly inside `dir` (subdirectories are
    /// skipped).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn list(&self, dir: &Path) -> io::Result<Vec<FileInfo>>;

    /// Set the file's modified time (LRU touch on a disk hit).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn touch(&self, path: &Path, to: SystemTime) -> io::Result<()>;
}

/// The real filesystem implementation of [`StoreIo`].
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl StoreIo for StdIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<FileInfo>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            out.push(FileInfo {
                path: entry.path(),
                len: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }

    fn touch(&self, path: &Path, to: SystemTime) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.set_times(std::fs::FileTimes::new().set_modified(to))
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/// The injectable fault sites, one per kind of IO operation the store
/// performs. A [`StoreIo::write`] counts one [`FaultOp::Open`], one
/// [`FaultOp::Write`], and one [`FaultOp::Sync`] in that order,
/// mirroring create + `write_all` + `sync_all`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// File creation at the start of a durable write.
    Open,
    /// Whole-file read.
    Read,
    /// The body of a durable write.
    Write,
    /// The fsync at the end of a durable write.
    Sync,
    /// Atomic rename.
    Rename,
    /// File removal.
    Remove,
    /// Directory listing.
    List,
}

impl FaultOp {
    /// Every fault site, for suites that iterate them all.
    pub const ALL: [FaultOp; 7] = [
        FaultOp::Open,
        FaultOp::Read,
        FaultOp::Write,
        FaultOp::Sync,
        FaultOp::Rename,
        FaultOp::Remove,
        FaultOp::List,
    ];

    fn index(self) -> usize {
        match self {
            FaultOp::Open => 0,
            FaultOp::Read => 1,
            FaultOp::Write => 2,
            FaultOp::Sync => 3,
            FaultOp::Rename => 4,
            FaultOp::Remove => 5,
            FaultOp::List => 6,
        }
    }
}

/// What the injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an IO error having taken no effect.
    Fail,
    /// A write persists only the first half of its bytes, then fails —
    /// a torn write, as left by a crash or a full disk.
    ShortWrite,
    /// A write silently flips one payload byte and reports success —
    /// bit rot, caught later by the CRC.
    Corrupt,
}

/// A deterministic fault plan: the `at`-th occurrence (1-based) of
/// `op` misbehaves per `kind`; every other operation passes through.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Which operation misbehaves.
    pub op: FaultOp,
    /// How it misbehaves.
    pub kind: FaultKind,
    /// 1-based occurrence count at which the fault fires (fires once).
    pub at: u64,
}

/// A [`StoreIo`] wrapper around [`StdIo`] that injects one
/// deterministic fault per [`FaultPlan`]. Purely for tests — it lets
/// the suite prove that every IO failure degrades the store to a
/// counted no-op instead of a panic or a served corruption.
pub struct FaultIo {
    inner: StdIo,
    plan: FaultPlan,
    counts: [AtomicU64; 7],
    injected: AtomicU64,
}

impl FaultIo {
    /// Wrap the real filesystem with one planned fault.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo {
            inner: StdIo,
            plan,
            counts: Default::default(),
            injected: AtomicU64::new(0),
        }
    }

    /// How many times the planned fault actually fired (0 or 1) —
    /// suites assert this to prove the fault site was exercised.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Count one occurrence of `op`; true when the planned fault fires.
    fn fires(&self, op: FaultOp) -> bool {
        let n = self.counts[op.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.op == op && self.plan.at == n {
            self.injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn fault_err() -> io::Error {
        io::Error::other("injected fault")
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.fires(FaultOp::Read) {
            return Err(FaultIo::fault_err());
        }
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.fires(FaultOp::Open) {
            return Err(FaultIo::fault_err());
        }
        let mut corrupted = None;
        if self.fires(FaultOp::Write) {
            match self.plan.kind {
                FaultKind::Fail => return Err(FaultIo::fault_err()),
                FaultKind::ShortWrite => {
                    // Persist a torn prefix, then fail — what a crash
                    // mid-write leaves behind.
                    let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                    return Err(FaultIo::fault_err());
                }
                FaultKind::Corrupt => {
                    let mut b = bytes.to_vec();
                    if !b.is_empty() {
                        let mid = b.len() * 3 / 4;
                        b[mid] ^= 0x40;
                    }
                    corrupted = Some(b);
                }
            }
        }
        self.inner
            .write(path, corrupted.as_deref().unwrap_or(bytes))?;
        if self.fires(FaultOp::Sync) {
            return Err(FaultIo::fault_err());
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.fires(FaultOp::Rename) {
            return Err(FaultIo::fault_err());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.fires(FaultOp::Remove) {
            return Err(FaultIo::fault_err());
        }
        self.inner.remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<FileInfo>> {
        if self.fires(FaultOp::List) {
            return Err(FaultIo::fault_err());
        }
        self.inner.list(dir)
    }

    fn touch(&self, path: &Path, to: SystemTime) -> io::Result<()> {
        // Recency touches are best-effort metadata, not a fault site.
        self.inner.touch(path, to)
    }
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn words(&mut self, words: &[u32]) {
        self.u32(words.len() as u32);
        for &w in words {
            self.u32(w);
        }
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err(format!("truncated at byte {}", self.pos));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }

    fn words(&mut self) -> Result<Vec<u32>, String> {
        let len = self.u32()? as usize;
        // Cap before allocating: a corrupt length must not OOM.
        if len > self.bytes.len() / 4 + 1 {
            return Err("word count exceeds payload".to_string());
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.bytes.len() - self.pos))
        }
    }
}

fn encode_bank(bank: Bank) -> u8 {
    match bank {
        Bank::X => 0,
        Bank::Y => 1,
    }
}

fn decode_bank(v: u8) -> Result<Bank, String> {
    match v {
        0 => Ok(Bank::X),
        1 => Ok(Bank::Y),
        other => Err(format!("bad bank tag {other}")),
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn encode_payload(artifact: &CompiledArtifact) -> Vec<u8> {
    let p = &artifact.program;
    let mut w = ByteWriter::new();
    w.words(&encode_stream(&p.insts));
    w.u32(p.entry.0);
    w.words(&p.x_image.init.iter().map(|x| x.0).collect::<Vec<u32>>());
    w.words(&p.y_image.init.iter().map(|x| x.0).collect::<Vec<u32>>());
    w.u32(p.x_static_words);
    w.u32(p.y_static_words);
    w.u32(p.x_stack_base);
    w.u32(p.y_stack_base);
    w.u32(p.stack_words);
    w.u32(p.symbols.len() as u32);
    for s in &p.symbols {
        w.str(&s.name);
        w.u32(s.addr);
        w.u32(s.size);
        w.u8(encode_bank(s.home));
        w.u8(u8::from(s.duplicated));
    }
    w.u32(p.functions.len() as u32);
    for f in &p.functions {
        w.str(&f.name);
        w.u32(f.start.0);
        w.u32(f.len);
    }
    w.u32(p.labels.len() as u32);
    for l in &p.labels {
        w.str(&l.name);
        w.u32(l.addr.0);
    }
    w.u64(artifact.partition_cost);
    w.u64(artifact.duplicated_vars as u64);
    w.u64(artifact.duplicated_words);
    w.u64(artifact.partition_passes);
    w.u64(artifact.partition_moves);
    // Back-half stage times as nanoseconds; the shared-stage fields
    // (opt, opt_passes, profile) are per-source, reported from the
    // prepared layer, and deliberately not persisted per artifact.
    w.u64(duration_nanos(artifact.timings.trial_compaction));
    w.u64(duration_nanos(artifact.timings.partition));
    w.u64(duration_nanos(artifact.timings.regalloc));
    w.u64(duration_nanos(artifact.timings.lower));
    w.u64(duration_nanos(artifact.timings.final_pack));
    w.u64(duration_nanos(artifact.timings.link));
    w.buf
}

fn decode_payload(key: &ArtifactKey, bytes: &[u8]) -> Result<CompiledArtifact, String> {
    let mut r = ByteReader::new(bytes);
    let insts = decode_stream(&r.words()?).map_err(|e| e.to_string())?;
    let entry = InstAddr(r.u32()?);
    let x_image = DataImage {
        init: r.words()?.into_iter().map(Word).collect(),
    };
    let y_image = DataImage {
        init: r.words()?.into_iter().map(Word).collect(),
    };
    let x_static_words = r.u32()?;
    let y_static_words = r.u32()?;
    let x_stack_base = r.u32()?;
    let y_stack_base = r.u32()?;
    let stack_words = r.u32()?;
    let n_symbols = r.u32()? as usize;
    let mut symbols = Vec::with_capacity(n_symbols.min(bytes.len()));
    for _ in 0..n_symbols {
        symbols.push(DataSymbol {
            name: r.str()?,
            addr: r.u32()?,
            size: r.u32()?,
            home: decode_bank(r.u8()?)?,
            duplicated: r.u8()? != 0,
        });
    }
    let n_functions = r.u32()? as usize;
    let mut functions = Vec::with_capacity(n_functions.min(bytes.len()));
    for _ in 0..n_functions {
        functions.push(VliwFunction {
            name: r.str()?,
            start: InstAddr(r.u32()?),
            len: r.u32()?,
        });
    }
    let n_labels = r.u32()? as usize;
    let mut labels = Vec::with_capacity(n_labels.min(bytes.len()));
    for _ in 0..n_labels {
        labels.push(Label {
            name: r.str()?,
            addr: InstAddr(r.u32()?),
        });
    }
    let partition_cost = r.u64()?;
    let duplicated_vars = r.u64()? as usize;
    let duplicated_words = r.u64()?;
    let partition_passes = r.u64()?;
    let partition_moves = r.u64()?;
    let timings = CompileTimings {
        trial_compaction: Duration::from_nanos(r.u64()?),
        partition: Duration::from_nanos(r.u64()?),
        regalloc: Duration::from_nanos(r.u64()?),
        lower: Duration::from_nanos(r.u64()?),
        final_pack: Duration::from_nanos(r.u64()?),
        link: Duration::from_nanos(r.u64()?),
        ..CompileTimings::default()
    };
    r.done()?;
    let strategy = *Strategy::ALL
        .get(key.strategy as usize)
        .ok_or_else(|| format!("bad strategy index {}", key.strategy))?;
    Ok(CompiledArtifact {
        program: VliwProgram {
            insts,
            entry,
            x_image,
            y_image,
            x_static_words,
            y_static_words,
            x_stack_base,
            y_stack_base,
            stack_words,
            symbols,
            functions,
            labels,
        },
        strategy,
        partition_cost,
        duplicated_vars,
        duplicated_words,
        partition_passes,
        partition_moves,
        timings,
    })
}

/// Serialize a complete store entry (header + payload) for `key`.
#[must_use]
pub fn encode_entry(key: &ArtifactKey, artifact: &CompiledArtifact) -> Vec<u8> {
    let payload = encode_payload(artifact);
    let mut w = ByteWriter::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(key.source);
    w.u64(key.config);
    w.u64(u64::from(key.strategy));
    w.u64(payload.len() as u64);
    w.u32(crc32(&payload));
    w.buf.extend_from_slice(&payload);
    w.buf
}

/// Validate and deserialize a store entry that should hold `key`'s
/// artifact.
///
/// # Errors
///
/// Returns a description of the first validation failure: wrong magic,
/// version, key echo, length, checksum, or payload decode error.
pub fn decode_entry(key: &ArtifactKey, bytes: &[u8]) -> Result<CompiledArtifact, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("entry too short ({} bytes)", bytes.len()));
    }
    let mut r = ByteReader::new(&bytes[..HEADER_LEN]);
    let magic = r.take(4).expect("header sliced");
    if magic != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = r.u32().expect("header sliced");
    if version != FORMAT_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let source = r.u64().expect("header sliced");
    let config = r.u64().expect("header sliced");
    let strategy = r.u64().expect("header sliced");
    if source != key.source || config != key.config || strategy != u64::from(key.strategy) {
        return Err("key mismatch".to_string());
    }
    let payload_len = r.u64().expect("header sliced");
    let want_crc = r.u32().expect("header sliced");
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(format!(
            "payload length mismatch: header {payload_len}, file {}",
            payload.len()
        ));
    }
    if crc32(payload) != want_crc {
        return Err("checksum mismatch".to_string());
    }
    decode_payload(key, payload)
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// Cumulative disk-tier counters plus resident gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Loads served from a valid on-disk entry.
    pub hits: u64,
    /// Loads that found no entry on disk.
    pub misses: u64,
    /// IO operations that failed (open/read/write/rename/fsync/list);
    /// each one degraded gracefully to in-memory operation.
    pub errors: u64,
    /// Entries quarantined as corrupt (at startup or on load).
    pub quarantined: u64,
    /// Entries dropped by the byte-budget LRU eviction.
    pub evictions: u64,
    /// Bytes dropped by eviction.
    pub evicted_bytes: u64,
    /// Bytes currently resident (sum of indexed entry files).
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// What [`DiskStore::open`]'s startup sweep found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskSweep {
    /// Valid entries recovered into the index.
    pub recovered: u64,
    /// Corrupt entries moved to `quarantine/`.
    pub quarantined: u64,
    /// Stray temp files removed (left by a crash mid-publish).
    pub tmp_cleaned: u64,
    /// Bytes across recovered entries.
    pub bytes: u64,
    /// Why the store is degraded to a no-op, when it is (directory
    /// could not be created or listed).
    pub error: Option<String>,
}

struct IndexEntry {
    bytes: u64,
    modified: SystemTime,
}

/// The content-addressed on-disk artifact store. See the module docs
/// for format and crash-safety guarantees. All methods are infallible
/// at the type level: IO failures are counted in [`DiskStats`] and
/// degrade to cache misses.
pub struct DiskStore {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    tmp_dir: PathBuf,
    quarantine_dir: PathBuf,
    max_bytes: Option<u64>,
    index: Mutex<HashMap<ArtifactKey, IndexEntry>>,
    sweep: DiskSweep,
    /// Uniquifies temp-file names within the process.
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    quarantined: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

/// File name of `key`'s entry: `{source:016x}-{config:016x}-{strategy:02x}.art`.
#[must_use]
pub fn entry_file_name(key: &ArtifactKey) -> String {
    format!(
        "{:016x}-{:016x}-{:02x}.art",
        key.source, key.config, key.strategy
    )
}

/// Parse an entry file name back into its [`ArtifactKey`].
#[must_use]
pub fn parse_entry_file_name(name: &str) -> Option<ArtifactKey> {
    let stem = name.strip_suffix(".art")?;
    let mut parts = stem.split('-');
    let source = u64::from_str_radix(parts.next()?, 16).ok()?;
    let config = u64::from_str_radix(parts.next()?, 16).ok()?;
    let strategy = u8::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(ArtifactKey {
        source,
        config,
        strategy,
    })
}

impl DiskStore {
    /// Open (or create) a store at `dir` over the real filesystem.
    #[must_use]
    pub fn open_default(dir: &Path, max_bytes: Option<u64>) -> DiskStore {
        DiskStore::open(Arc::new(StdIo), dir, max_bytes)
    }

    /// Open (or create) a store at `dir` over an injectable IO layer.
    ///
    /// Never fails: if the directory cannot be created or listed, the
    /// result is an empty store whose [`DiskStore::sweep`] carries the
    /// error and whose operations degrade to counted no-ops. Otherwise
    /// the startup sweep removes stray temp files, validates every
    /// `.art` entry (quarantining corrupt ones), and indexes the rest.
    #[must_use]
    pub fn open(io: Arc<dyn StoreIo>, dir: &Path, max_bytes: Option<u64>) -> DiskStore {
        let mut store = DiskStore {
            io,
            dir: dir.to_path_buf(),
            tmp_dir: dir.join("tmp"),
            quarantine_dir: dir.join("quarantine"),
            max_bytes,
            index: Mutex::new(HashMap::new()),
            sweep: DiskSweep::default(),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        };
        store.sweep = store.run_sweep();
        store
            .quarantined
            .store(store.sweep.quarantined, Ordering::Relaxed);
        store.enforce_budget();
        store
    }

    fn run_sweep(&self) -> DiskSweep {
        let mut sweep = DiskSweep::default();
        for d in [&self.dir, &self.tmp_dir, &self.quarantine_dir] {
            if let Err(e) = self.io.create_dir_all(d) {
                self.errors.fetch_add(1, Ordering::Relaxed);
                sweep.error = Some(format!("create {}: {e}", d.display()));
                return sweep;
            }
        }
        // A crash mid-publish leaves its partial entry in tmp/; it was
        // never renamed into place, so dropping it loses nothing.
        match self.io.list(&self.tmp_dir) {
            Ok(files) => {
                for f in files {
                    match self.io.remove_file(&f.path) {
                        Ok(()) => sweep.tmp_cleaned += 1,
                        Err(_) => {
                            self.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        let files = match self.io.list(&self.dir) {
            Ok(files) => files,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                sweep.error = Some(format!("list {}: {e}", self.dir.display()));
                return sweep;
            }
        };
        let mut index = self.index.lock().expect("store index poisoned");
        for f in files {
            let Some(name) = f.path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(key) = parse_entry_file_name(name) else {
                // Not one of ours; leave foreign files alone.
                continue;
            };
            let valid = match self.io.read(&f.path) {
                Ok(bytes) => decode_entry(&key, &bytes).is_ok(),
                Err(_) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if valid {
                sweep.recovered += 1;
                sweep.bytes += f.len;
                index.insert(
                    key,
                    IndexEntry {
                        bytes: f.len,
                        modified: f.modified,
                    },
                );
            } else {
                drop(index);
                self.quarantine(&f.path, name);
                sweep.quarantined += 1;
                index = self.index.lock().expect("store index poisoned");
            }
        }
        sweep
    }

    /// The startup sweep's report.
    #[must_use]
    pub fn sweep(&self) -> &DiskSweep {
        &self.sweep
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(entry_file_name(key))
    }

    /// Move a corrupt entry into `quarantine/` (fall back to deletion,
    /// then to leaving it — a later load will re-detect it; nothing is
    /// ever served from it either way).
    fn quarantine(&self, path: &Path, name: &str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let dest = self.quarantine_dir.join(format!("{name}.{seq}"));
        if self.io.rename(path, &dest).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            if self.io.remove_file(path).is_err() {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Load `key`'s artifact from disk, if a valid entry exists.
    /// Returns `None` on miss, IO error (counted), or corruption
    /// (quarantined and counted). Never fails, never panics.
    #[must_use]
    pub fn load(&self, key: &ArtifactKey) -> Option<Arc<CompiledArtifact>> {
        let path = self.entry_path(key);
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() == io::ErrorKind::NotFound {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        match decode_entry(key, &bytes) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // LRU recency: a hit refreshes the file mtime so warm
                // entries outlive cold ones under the byte budget.
                // Best-effort metadata only — not a counted fault site.
                let now = SystemTime::now();
                let _ = self.io.touch(&path, now);
                let mut index = self.index.lock().expect("store index poisoned");
                index
                    .entry(*key)
                    .and_modify(|e| e.modified = now)
                    .or_insert(IndexEntry {
                        bytes: bytes.len() as u64,
                        modified: now,
                    });
                Some(Arc::new(artifact))
            }
            Err(_) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                let name = entry_file_name(key);
                self.quarantine(&path, &name);
                self.index.lock().expect("store index poisoned").remove(key);
                None
            }
        }
    }

    /// Durably publish `key`'s artifact: write to `tmp/`, fsync, then
    /// rename into place. Failures at any step are counted and the
    /// temp file is removed (best-effort); the caller's artifact is
    /// unaffected — a failed publish only costs a future warm start.
    pub fn publish(&self, key: &ArtifactKey, artifact: &CompiledArtifact) {
        let body = encode_entry(key, artifact);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .tmp_dir
            .join(format!("{}.{seq}.tmp", entry_file_name(key)));
        if self.io.write(&tmp, &body).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            let _ = self.io.remove_file(&tmp);
            return;
        }
        let dest = self.entry_path(key);
        if self.io.rename(&tmp, &dest).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            let _ = self.io.remove_file(&tmp);
            return;
        }
        self.index.lock().expect("store index poisoned").insert(
            *key,
            IndexEntry {
                bytes: body.len() as u64,
                modified: SystemTime::now(),
            },
        );
        self.enforce_budget();
    }

    /// Evict least-recently-used entries (by mtime) until the byte
    /// budget holds, but never below one entry.
    fn enforce_budget(&self) {
        let Some(max) = self.max_bytes else { return };
        let mut index = self.index.lock().expect("store index poisoned");
        loop {
            let total: u64 = index.values().map(|e| e.bytes).sum();
            if total <= max || index.len() <= 1 {
                return;
            }
            // Oldest mtime loses; tie-break on the key fields so the
            // victim is deterministic under equal timestamps.
            let Some(victim) = index
                .iter()
                .min_by_key(|(k, e)| (e.modified, k.source, k.config, k.strategy))
                .map(|(k, _)| *k)
            else {
                return;
            };
            let Some(entry) = index.remove(&victim) else {
                return;
            };
            match self.io.remove_file(&self.entry_path(&victim)) {
                Ok(()) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.evicted_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
                }
                Err(_) => {
                    // Can't delete it; drop it from the index (so the
                    // budget math stops seeing it) and stop evicting —
                    // a broken disk must not spin this loop.
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Snapshot the counters and resident gauges.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        let (bytes, entries) = {
            let index = self.index.lock().expect("store index poisoned");
            (index.values().map(|e| e.bytes).sum(), index.len() as u64)
        };
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ArtifactCache;
    use dsp_backend::CompileConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsp-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> (ArtifactKey, Arc<CompiledArtifact>) {
        let cache = ArtifactCache::new();
        let src =
            "int out[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) out[i] = i * 3; }";
        let (prep, _) = cache.prepared(src).unwrap();
        let cfg = CompileConfig::default();
        let (artifact, _, _) = cache
            .artifact(&prep, Strategy::CbPartition, cfg, None)
            .unwrap();
        (ArtifactKey::new(src, cfg, Strategy::CbPartition), artifact)
    }

    #[test]
    fn crc32_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn entry_roundtrips() {
        let (key, artifact) = sample_artifact();
        let bytes = encode_entry(&key, &artifact);
        assert_eq!(&bytes[..4], &MAGIC);
        let back = decode_entry(&key, &bytes).expect("roundtrip");
        assert_eq!(back.program, artifact.program);
        assert_eq!(back.strategy, artifact.strategy);
        assert_eq!(back.partition_cost, artifact.partition_cost);
        assert_eq!(back.duplicated_vars, artifact.duplicated_vars);
        assert_eq!(back.duplicated_words, artifact.duplicated_words);
        assert_eq!(back.partition_passes, artifact.partition_passes);
        assert_eq!(back.partition_moves, artifact.partition_moves);
        assert_eq!(
            back.timings.trial_compaction,
            artifact.timings.trial_compaction
        );
        assert_eq!(back.timings.link, artifact.timings.link);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let (key, artifact) = sample_artifact();
        let bytes = encode_entry(&key, &artifact);
        for len in 0..bytes.len() {
            assert!(
                decode_entry(&key, &bytes[..len]).is_err(),
                "truncation to {len} bytes must fail validation"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let (key, artifact) = sample_artifact();
        let clean = encode_entry(&key, &artifact);
        // Flip one bit in every byte; validation must reject each
        // (header fields by the field checks, payload by the CRC).
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(
                decode_entry(&key, &bytes).is_err(),
                "bit flip at byte {i} must fail validation"
            );
        }
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let (key, artifact) = sample_artifact();
        let bytes = encode_entry(&key, &artifact);
        let other = ArtifactKey {
            source: key.source ^ 1,
            ..key
        };
        assert!(decode_entry(&other, &bytes).is_err());
    }

    #[test]
    fn file_name_roundtrips() {
        let key = ArtifactKey {
            source: 0x0123_4567_89ab_cdef,
            config: 1,
            strategy: 6,
        };
        let name = entry_file_name(&key);
        assert_eq!(name, "0123456789abcdef-0000000000000001-06.art");
        assert_eq!(parse_entry_file_name(&name), Some(key));
        assert_eq!(parse_entry_file_name("nope.art"), None);
        assert_eq!(parse_entry_file_name("0-1-2"), None);
    }

    #[test]
    fn publish_load_and_warm_reopen() {
        let dir = temp_dir("roundtrip");
        let (key, artifact) = sample_artifact();
        let store = DiskStore::open_default(&dir, None);
        assert_eq!(store.sweep().recovered, 0);
        assert!(store.load(&key).is_none(), "empty store misses");
        store.publish(&key, &artifact);
        let loaded = store.load(&key).expect("published entry loads");
        assert_eq!(loaded.program, artifact.program);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.errors), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > HEADER_LEN as u64);

        // A fresh process over the same directory warms from the sweep.
        let store2 = DiskStore::open_default(&dir, None);
        assert_eq!(store2.sweep().recovered, 1);
        assert_eq!(store2.sweep().quarantined, 0);
        assert!(store2.load(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_on_load() {
        let dir = temp_dir("quarantine");
        let (key, artifact) = sample_artifact();
        let store = DiskStore::open_default(&dir, None);
        store.publish(&key, &artifact);
        // Flip a payload byte on disk.
        let path = dir.join(entry_file_name(&key));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key).is_none(), "corrupt entry never served");
        assert_eq!(store.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry moved aside");
        let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 1);
        // And it stays gone: the next load is a clean miss.
        assert!(store.load(&key).is_none());
        assert_eq!(store.stats().quarantined, 1, "no double-count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_quarantines_corrupt_and_cleans_tmp() {
        let dir = temp_dir("sweep");
        let (key, artifact) = sample_artifact();
        {
            let store = DiskStore::open_default(&dir, None);
            store.publish(&key, &artifact);
        }
        // Simulate a crash: a stray temp file and a torn entry.
        std::fs::write(dir.join("tmp").join("junk.tmp"), b"partial").unwrap();
        let torn_key = ArtifactKey {
            source: key.source ^ 7,
            ..key
        };
        let full = encode_entry(&torn_key, &artifact);
        std::fs::write(
            dir.join(entry_file_name(&torn_key)),
            &full[..full.len() / 2],
        )
        .unwrap();

        let store = DiskStore::open_default(&dir, None);
        let sweep = store.sweep();
        assert_eq!(sweep.recovered, 1);
        assert_eq!(sweep.quarantined, 1);
        assert_eq!(sweep.tmp_cleaned, 1);
        assert!(sweep.error.is_none());
        assert!(store.load(&key).is_some(), "good entry survived");
        assert!(store.load(&torn_key).is_none(), "torn entry gone");
        assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_lru_but_never_last_entry() {
        let dir = temp_dir("evict");
        let (key, artifact) = sample_artifact();
        // Budget of 1 byte: every publish over one entry must evict,
        // but the newest entry always survives.
        let store = DiskStore::open_default(&dir, Some(1));
        store.publish(&key, &artifact);
        assert_eq!(store.stats().entries, 1, "sole entry survives budget");
        let key2 = ArtifactKey {
            config: key.config ^ 1,
            ..key
        };
        store.publish(&key2, &artifact_for(&key2, &artifact));
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.evicted_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Re-key an artifact for tests that need distinct entries (the
    /// stored strategy must match the key's index for decode to work).
    fn artifact_for(key: &ArtifactKey, base: &CompiledArtifact) -> CompiledArtifact {
        CompiledArtifact {
            program: base.program.clone(),
            strategy: Strategy::ALL[key.strategy as usize],
            partition_cost: base.partition_cost,
            duplicated_vars: base.duplicated_vars,
            duplicated_words: base.duplicated_words,
            partition_passes: base.partition_passes,
            partition_moves: base.partition_moves,
            timings: base.timings.clone(),
        }
    }

    #[test]
    fn unusable_directory_degrades_to_noop() {
        // A file where the directory should be: create_dir_all fails.
        let path =
            std::env::temp_dir().join(format!("dsp-store-unit-blocked-{}", std::process::id()));
        std::fs::write(&path, b"in the way").unwrap();
        let (key, artifact) = sample_artifact();
        let store = DiskStore::open_default(&path, None);
        assert!(store.sweep().error.is_some(), "sweep reports the failure");
        store.publish(&key, &artifact);
        assert!(store.load(&key).is_none());
        let stats = store.stats();
        assert!(stats.errors > 0, "degradation is counted");
        assert_eq!(stats.hits, 0);
        let _ = std::fs::remove_file(&path);
    }
}
