//! Structured run reports: per-job measurements and stage times,
//! rendered as JSON (schema `dualbank-run-report/v1`, documented in
//! `docs/run_report_schema.md`) or as human-readable tables.

use std::time::Duration;

use dsp_backend::Strategy;
use dsp_workloads::runner::Measurement;
use dsp_workloads::Kind;

use crate::cache::CacheStats;
use crate::json::{escape as json_string, number as json_f64, Value};

/// Which cache layers served this job (`None` = layer not consulted).
/// Schedule-dependent under parallelism — the per-layer totals in
/// [`CacheStats`] are the deterministic view.
#[derive(Debug, Clone, Copy)]
pub struct CacheFlags {
    /// Parse+optimize served from cache.
    pub prepared: bool,
    /// Profiling run served from cache (profile-driven strategies only).
    pub profile: Option<bool>,
    /// Reference run served from cache (verifying jobs only).
    pub reference: Option<bool>,
    /// Compiled artifact served from cache.
    pub artifact: bool,
    /// Disk tier's verdict on an in-memory artifact miss: `None` when
    /// no disk store is configured or the memory layer hit (disk not
    /// consulted), `Some(true)` when the artifact was rehydrated from
    /// disk, `Some(false)` when disk missed and the job compiled.
    pub artifact_disk: Option<bool>,
}

/// Wall time of every pipeline stage for one job. Stages shared across
/// strategies (`parse`, `opt`, `profile`, `reference`) report the time
/// recorded when the shared work was done, so jobs of one source repeat
/// the same value — sum them per-source, not per-job.
#[derive(Debug, Clone)]
pub struct StageTimes {
    /// Front end (lex, parse, IR construction).
    pub parse: Duration,
    /// Machine-independent optimization pipeline.
    pub opt: Duration,
    /// Per-pass breakdown of `opt`, in first-run order.
    pub opt_passes: Vec<(String, Duration)>,
    /// Profiling interpreter run (profile-driven strategies only).
    pub profile: Duration,
    /// Interference-graph construction via trial compaction.
    pub trial_compaction: Duration,
    /// X/Y graph partitioning.
    pub partition: Duration,
    /// Register allocation.
    pub regalloc: Duration,
    /// LIR lowering.
    pub lower: Duration,
    /// Final VLIW compaction.
    pub final_pack: Duration,
    /// Link and layout.
    pub link: Duration,
    /// Reference interpreter run (verification baseline).
    pub reference: Duration,
    /// Cycle-accurate simulation.
    pub simulate: Duration,
    /// Word-for-word comparison against the reference.
    pub verify: Duration,
}

/// The outcome of one (benchmark, strategy) job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Benchmark name.
    pub bench: String,
    /// Kernel or application.
    pub kind: Kind,
    /// Strategy used.
    pub strategy: Strategy,
    /// Cycles, memory cost, and simulator statistics.
    pub measurement: Measurement,
    /// The partitioner's objective value (estimated serialized accesses).
    pub partition_cost: u64,
    /// Data words spent on duplicated copies.
    pub duplicated_words: u64,
    /// Partitioning algorithm label (`"greedy"`, `"refined"`, `"fm"`).
    pub partitioner: &'static str,
    /// Partitioner passes run when the artifact was built.
    pub partition_passes: u64,
    /// Partitioner moves retained in the final bank assignment.
    pub partition_moves: u64,
    /// Which cache layers served this job.
    pub cached: CacheFlags,
    /// Per-stage wall times.
    pub stages: StageTimes,
}

/// The full result of an [`Engine::run_matrix`](crate::Engine::run_matrix)
/// call.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategies swept, in column order.
    pub strategies: Vec<Strategy>,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the matrix.
    pub wall_time: Duration,
    /// Cache counters at completion (cumulative over the engine's life).
    pub cache: CacheStats,
    /// Per-job reports, bench-major in matrix order.
    pub jobs: Vec<JobReport>,
}

impl RunReport {
    /// The report for one (benchmark, strategy) pair.
    #[must_use]
    pub fn job(&self, bench: &str, strategy: Strategy) -> Option<&JobReport> {
        self.jobs
            .iter()
            .find(|j| j.bench == bench && j.strategy == strategy)
    }

    /// Benchmark names in first-appearance order.
    #[must_use]
    pub fn bench_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for j in &self.jobs {
            if names.last() != Some(&j.bench.as_str()) && !names.contains(&j.bench.as_str()) {
                names.push(&j.bench);
            }
        }
        names
    }

    /// Cycle counts as a benchmark × strategy table.
    #[must_use]
    pub fn cycles_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<14} {:>12}", "benchmark", "kind"));
        for s in &self.strategies {
            out.push_str(&format!(" {:>9}", s.label()));
        }
        out.push('\n');
        for name in self.bench_names() {
            let kind = self
                .jobs
                .iter()
                .find(|j| j.bench == name)
                .map_or(String::new(), |j| j.kind.to_string());
            out.push_str(&format!("{name:<14} {kind:>12}"));
            for &s in &self.strategies {
                match self.job(name, s) {
                    Some(j) => out.push_str(&format!(" {:>9}", j.measurement.cycles)),
                    None => out.push_str(&format!(" {:>9}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Aggregate per-stage wall times over the whole matrix, counting
    /// shared stages once per source rather than once per job.
    #[must_use]
    pub fn stage_totals(&self) -> Vec<(&'static str, Duration)> {
        let mut totals: Vec<(&'static str, Duration)> = vec![
            ("parse", Duration::ZERO),
            ("opt", Duration::ZERO),
            ("profile", Duration::ZERO),
            ("trial_compaction", Duration::ZERO),
            ("partition", Duration::ZERO),
            ("regalloc", Duration::ZERO),
            ("lower", Duration::ZERO),
            ("final_pack", Duration::ZERO),
            ("link", Duration::ZERO),
            ("reference", Duration::ZERO),
            ("simulate", Duration::ZERO),
            ("verify", Duration::ZERO),
        ];
        let mut add = |name: &str, d: Duration| {
            if let Some(t) = totals.iter_mut().find(|(n, _)| *n == name) {
                t.1 += d;
            }
        };
        for j in &self.jobs {
            // Shared stages: count only for the job that paid them.
            if !j.cached.prepared {
                add("parse", j.stages.parse);
                add("opt", j.stages.opt);
            }
            if j.cached.profile == Some(false) {
                add("profile", j.stages.profile);
            }
            if j.cached.reference == Some(false) {
                add("reference", j.stages.reference);
            }
            if !j.cached.artifact {
                add("trial_compaction", j.stages.trial_compaction);
                add("partition", j.stages.partition);
                add("regalloc", j.stages.regalloc);
                add("lower", j.stages.lower);
                add("final_pack", j.stages.final_pack);
                add("link", j.stages.link);
            }
            // Per-job stages always count.
            add("simulate", j.stages.simulate);
            add("verify", j.stages.verify);
        }
        totals
    }

    /// Human-readable stage summary (aggregate times + cache line).
    #[must_use]
    pub fn stage_table(&self) -> String {
        let totals = self.stage_totals();
        let grand: Duration = totals.iter().map(|(_, d)| *d).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>7}\n",
            "stage", "total ms", "share"
        ));
        for (name, d) in &totals {
            let share = if grand.is_zero() {
                0.0
            } else {
                d.as_secs_f64() / grand.as_secs_f64() * 100.0
            };
            out.push_str(&format!(
                "{:<18} {:>10.3} {:>6.1}%\n",
                name,
                d.as_secs_f64() * 1e3,
                share
            ));
        }
        out.push_str(&format!(
            "\njobs: {}   workers: {}   wall: {:.3}s   cpu (staged): {:.3}s\n",
            self.jobs.len(),
            self.workers,
            self.wall_time.as_secs_f64(),
            grand.as_secs_f64(),
        ));
        let c = &self.cache;
        out.push_str(&format!(
            "cache: {} hits / {} misses ({:.0}% hit rate; prepared {}/{}, profile {}/{}, reference {}/{}, artifact {}/{})\n",
            c.hits(),
            c.misses(),
            c.hit_rate() * 100.0,
            c.prepared_hits,
            c.prepared_hits + c.prepared_misses,
            c.profile_hits,
            c.profile_hits + c.profile_misses,
            c.reference_hits,
            c.reference_hits + c.reference_misses,
            c.artifact_hits,
            c.artifact_hits + c.artifact_misses,
        ));
        out
    }

    /// Serialize to JSON (schema `dualbank-run-report/v1`).
    ///
    /// Assembled from exactly the pieces a streamed response is made
    /// of — [`sweep_json_prefix`], one [`JobReport::to_json`] chunk per
    /// job, [`sweep_json_tail`] — so a chunked `/sweep` stream
    /// reassembles byte-identically to this buffered form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let jobs: Vec<String> = self.jobs.iter().map(JobReport::to_json).collect();
        format!(
            "{}{}{}",
            sweep_json_prefix(self.workers, &self.strategies),
            jobs.join(",\n"),
            sweep_json_tail(self.wall_time, &self.cache, false),
        )
    }

    /// The report's **deterministic projection**: every per-job result
    /// field (cycles, memory cost, partition cost, simulator counters)
    /// with all schedule- and environment-dependent fields removed —
    /// wall times, stage times, worker count, cache flags and
    /// counters. Two runs of the same matrix — cold, warmed from disk,
    /// or degraded by injected disk faults — must produce
    /// byte-identical projections; the crash-safety and
    /// fault-injection suites assert exactly that.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let strats = self
            .strategies
            .iter()
            .map(|s| json_string(s.label()))
            .collect::<Vec<_>>()
            .join(", ");
        let jobs: Vec<String> = self.jobs.iter().map(job_core_json).collect();
        format!(
            "{{\n  \"schema\": \"dualbank-run-report-deterministic/v1\",\n  \
             \"strategies\": [{strats}],\n  \"jobs\": [\n{}\n  ]\n}}\n",
            jobs.join(",\n"),
        )
    }
}

/// Rebuild the deterministic projection from a serialized
/// `dualbank-run-report/v1` document — byte-identical to what
/// [`RunReport::deterministic_json`] would emit for the run that
/// produced it. Possible because every field of the projection is an
/// integer or a string: nothing is lost or reformatted by the JSON
/// round-trip. This is how a routed multi-replica sweep is compared
/// against a single-node `--deterministic` report.
///
/// # Errors
///
/// Returns a description of the first structural problem: not a
/// run-report document, or a job object missing/mistyping a
/// deterministic field.
pub fn project_deterministic_json(doc: &str) -> Result<String, String> {
    let value = crate::json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = value.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "dualbank-run-report/v1" {
        return Err(format!(
            "expected a dualbank-run-report/v1 document, got schema {schema:?}"
        ));
    }
    let strategies = value
        .get("strategies")
        .and_then(Value::as_array)
        .ok_or("document has no `strategies` array")?;
    let strats = strategies
        .iter()
        .map(|s| {
            s.as_str()
                .map(json_string)
                .ok_or("`strategies` must contain only strings")
        })
        .collect::<Result<Vec<_>, _>>()?
        .join(", ");
    let jobs = value
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or("document has no `jobs` array")?;
    let cores = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| job_core_from_value(j).map_err(|e| format!("job {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(format!(
        "{{\n  \"schema\": \"dualbank-run-report-deterministic/v1\",\n  \
         \"strategies\": [{strats}],\n  \"jobs\": [\n{}\n  ]\n}}\n",
        cores.join(",\n"),
    ))
}

/// One parsed job object re-rendered as its [`job_core_json`] line.
fn job_core_from_value(j: &Value) -> Result<String, String> {
    let string = |k: &str| {
        j.get(k)
            .and_then(Value::as_str)
            .map(json_string)
            .ok_or_else(|| format!("missing string field `{k}`"))
    };
    let int = |k: &str| {
        j.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field `{k}`"))
    };
    let nested = |outer: &str, k: &str| {
        j.get(outer)
            .and_then(|o| o.get(k))
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field `{outer}.{k}`"))
    };
    Ok(format!(
        "    {{\"benchmark\": {}, \"kind\": {}, \"strategy\": {}, \
         \"cycles\": {}, \"memory_cost\": {}, \
         \"static_words\": {{\"x\": {}, \"y\": {}}}, \"stack_words\": {}, \"inst_words\": {}, \
         \"partition_cost\": {}, \"duplicated_vars\": {}, \"duplicated_words\": {}, \
         \"sim\": {{\"ops\": {}, \"loads\": {}, \"stores\": {}, \"dual_mem_cycles\": {}, \"bank_conflict_cycles\": {}}}}}",
        string("benchmark")?,
        string("kind")?,
        string("strategy")?,
        int("cycles")?,
        int("memory_cost")?,
        nested("static_words", "x")?,
        nested("static_words", "y")?,
        int("stack_words")?,
        int("inst_words")?,
        int("partition_cost")?,
        int("duplicated_vars")?,
        int("duplicated_words")?,
        nested("sim", "ops")?,
        nested("sim", "loads")?,
        nested("sim", "stores")?,
        nested("sim", "dual_mem_cycles")?,
        nested("sim", "bank_conflict_cycles")?,
    ))
}

/// The head of a `dualbank-run-report/v1` document: everything known
/// at submission time (schema, workers, strategies) up to and
/// including the opening of the `jobs` array. A streamed `/sweep`
/// response sends this as its first chunk.
#[must_use]
pub fn sweep_json_prefix(workers: usize, strategies: &[Strategy]) -> String {
    let strats = strategies
        .iter()
        .map(|s| json_string(s.label()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"schema\": \"dualbank-run-report/v1\",\n  \"workers\": {workers},\n  \
         \"strategies\": [{strats}],\n  \"jobs\": [\n"
    )
}

/// The tail of a `dualbank-run-report/v1` document: everything only
/// known at completion time (wall time, cache counters, whether the
/// job list was truncated by a deadline). A streamed `/sweep` response
/// sends this as its final chunk.
#[must_use]
pub fn sweep_json_tail(wall_time: Duration, cache: &CacheStats, truncated: bool) -> String {
    format!(
        "\n  ],\n  \"wall_time_ms\": {},\n  \"cache\": {},\n  \"truncated\": {truncated}\n}}\n",
        json_f64(ms(wall_time)),
        cache_json(cache),
    )
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// FNV-1a over `bytes` — the end-to-end checksum behind the
/// `"digest"` field on streamed sweep-cell jobs (the same constants
/// the router's hash ring and the chaos scheduler use).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append the end-to-end `"digest"` checksum field to a serialized
/// job object: FNV-1a over the object's own bytes (surrounding
/// whitespace trimmed, the digest field itself excluded), rendered as
/// 16-digit hex. Appended after every serving-layer field so the
/// deterministic projection — which cuts each job line at `"cached"`
/// — is unaffected.
///
/// # Panics
///
/// Panics if `job` is not a serialized JSON object (no trailing `}`).
#[must_use]
pub fn with_job_digest(job: &str) -> String {
    let digest = fnv1a(job.trim().as_bytes());
    format!(
        "{}, \"digest\": \"{digest:016x}\"}}",
        job.strip_suffix('}').expect("job json is an object"),
    )
}

/// Verify a wire job object's `"digest"` field: recompute FNV-1a over
/// the object with the digest field removed and compare. A job with a
/// missing or malformed digest is an error too — every streamed sweep
/// job carries one, so its absence means the bytes were damaged.
///
/// # Errors
///
/// Describes the first problem found (missing field, malformed hex,
/// or checksum mismatch).
pub fn verify_job_digest(job: &str) -> Result<(), String> {
    let job = job.trim();
    const MARKER: &str = ", \"digest\": \"";
    let at = job
        .rfind(MARKER)
        .ok_or_else(|| "job carries no digest field".to_string())?;
    let hex = job[at + MARKER.len()..]
        .strip_suffix("\"}")
        .ok_or_else(|| "digest is not the final field of the job object".to_string())?;
    let claimed = (hex.len() == 16)
        .then(|| u64::from_str_radix(hex, 16).ok())
        .flatten()
        .ok_or_else(|| "digest is not 16-digit hex".to_string())?;
    let payload = format!("{}}}", &job[..at]);
    let actual = fnv1a(payload.as_bytes());
    if actual == claimed {
        Ok(())
    } else {
        Err(format!(
            "digest mismatch: job claims {claimed:016x}, payload hashes to {actual:016x}"
        ))
    }
}

fn cache_json(c: &CacheStats) -> String {
    let layer = |h: u64, m: u64| format!("{{\"hits\": {h}, \"misses\": {m}}}");
    let evicting = |h: u64, m: u64, e: u64, b: u64, eb: u64| {
        format!(
            "{{\"hits\": {h}, \"misses\": {m}, \"evictions\": {e}, \
             \"bytes\": {b}, \"evicted_bytes\": {eb}}}"
        )
    };
    let disk = match &c.disk {
        None => "null".to_string(),
        Some(d) => format!(
            "{{\"hits\": {}, \"misses\": {}, \"errors\": {}, \"quarantined\": {}, \
             \"evictions\": {}, \"evicted_bytes\": {}, \"bytes\": {}, \"entries\": {}}}",
            d.hits,
            d.misses,
            d.errors,
            d.quarantined,
            d.evictions,
            d.evicted_bytes,
            d.bytes,
            d.entries
        ),
    };
    format!(
        "{{\"prepared\": {}, \"profile\": {}, \"reference\": {}, \"artifact\": {}, \"disk\": {disk}, \"hit_rate\": {}}}",
        evicting(
            c.prepared_hits,
            c.prepared_misses,
            c.prepared_evictions,
            c.prepared_bytes,
            c.prepared_evicted_bytes
        ),
        layer(c.profile_hits, c.profile_misses),
        layer(c.reference_hits, c.reference_misses),
        evicting(
            c.artifact_hits,
            c.artifact_misses,
            c.artifact_evictions,
            c.artifact_bytes,
            c.artifact_evicted_bytes
        ),
        json_f64(c.hit_rate()),
    )
}

impl JobReport {
    /// Serialize this job as one JSON object (the element shape of the
    /// `jobs` array in `dualbank-run-report/v1`; also the core of the
    /// `dsp-serve` `/compile` response).
    #[must_use]
    pub fn to_json(&self) -> String {
        job_json(self)
    }

    /// [`JobReport::to_json`] with a serving-layer `"request_id"`
    /// field appended (after the schedule-dependent `cached` block, so
    /// deterministic-projection consumers that cut the line at
    /// `"cached"` are unaffected). `None` renders identically to
    /// [`JobReport::to_json`].
    #[must_use]
    pub fn to_json_tagged(&self, request_id: Option<&str>) -> String {
        let json = self.to_json();
        match request_id {
            None => json,
            Some(id) => format!(
                "{}, \"request_id\": {}}}",
                json.strip_suffix('}').expect("job json is an object"),
                json_string(id)
            ),
        }
    }

    /// [`JobReport::to_json_tagged`] plus the trailing end-to-end
    /// `"digest"` checksum ([`with_job_digest`]) — the form `/sweep`
    /// streams, so a flipped byte anywhere between a replica's
    /// serializer and a reader is detectable.
    #[must_use]
    pub fn to_json_digested(&self, request_id: Option<&str>) -> String {
        with_job_digest(&self.to_json_tagged(request_id))
    }
}

fn job_json(j: &JobReport) -> String {
    let s = &j.stages;
    let stage_fields = [
        ("parse", s.parse),
        ("opt", s.opt),
        ("profile", s.profile),
        ("trial_compaction", s.trial_compaction),
        ("partition", s.partition),
        ("regalloc", s.regalloc),
        ("lower", s.lower),
        ("final_pack", s.final_pack),
        ("link", s.link),
        ("reference", s.reference),
        ("simulate", s.simulate),
        ("verify", s.verify),
    ];
    let stages = stage_fields
        .iter()
        .map(|(n, d)| format!("{}: {}", json_string(n), json_f64(ms(*d))))
        .collect::<Vec<_>>()
        .join(", ");
    let passes = s
        .opt_passes
        .iter()
        .map(|(n, d)| format!("{}: {}", json_string(n), json_f64(ms(*d))))
        .collect::<Vec<_>>()
        .join(", ");
    let opt_bool = |b: Option<bool>| match b {
        None => "null".to_string(),
        Some(v) => v.to_string(),
    };
    // The partitioner block rides in the schedule-dependent tail (after
    // `cached`), not the deterministic core: pass counts differ between
    // algorithms, and the deterministic projection must stay
    // byte-comparable across partitioners when the results agree.
    format!(
        "{}, \
         \"cached\": {{\"prepared\": {}, \"profile\": {}, \"reference\": {}, \"artifact\": {}, \"artifact_disk\": {}}}, \
         \"stage_ms\": {{{stages}}}, \"opt_pass_ms\": {{{passes}}}, \
         \"partitioner\": {{\"algorithm\": {}, \"passes\": {}, \"moves\": {}}}}}",
        job_core_json(j).strip_suffix('}').expect("core is an object"),
        j.cached.prepared,
        opt_bool(j.cached.profile),
        opt_bool(j.cached.reference),
        j.cached.artifact,
        opt_bool(j.cached.artifact_disk),
        json_string(j.partitioner),
        j.partition_passes,
        j.partition_moves,
    )
}

/// The deterministic core of one job's JSON object: every result field,
/// none of the schedule-dependent ones. [`job_json`] extends this with
/// `cached`/`stage_ms`/`opt_pass_ms`;
/// [`RunReport::deterministic_json`] emits it verbatim.
fn job_core_json(j: &JobReport) -> String {
    let m = &j.measurement;
    format!(
        "    {{\"benchmark\": {}, \"kind\": {}, \"strategy\": {}, \
         \"cycles\": {}, \"memory_cost\": {}, \
         \"static_words\": {{\"x\": {}, \"y\": {}}}, \"stack_words\": {}, \"inst_words\": {}, \
         \"partition_cost\": {}, \"duplicated_vars\": {}, \"duplicated_words\": {}, \
         \"sim\": {{\"ops\": {}, \"loads\": {}, \"stores\": {}, \"dual_mem_cycles\": {}, \"bank_conflict_cycles\": {}}}}}",
        json_string(&j.bench),
        json_string(&j.kind.to_string()),
        json_string(j.strategy.label()),
        m.cycles,
        m.memory_cost,
        m.static_words.0,
        m.static_words.1,
        m.stack_words,
        m.inst_words,
        j.partition_cost,
        m.duplicated_vars,
        j.duplicated_words,
        m.stats.ops,
        m.stats.loads,
        m.stats.stores,
        m.stats.dual_mem_cycles,
        m.stats.bank_conflict_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_report() -> RunReport {
        let engine = crate::Engine::new(crate::EngineOptions {
            jobs: 1,
            ..crate::EngineOptions::default()
        });
        let bench = dsp_workloads::kernels::fir(8, 4);
        engine
            .run_matrix(&[bench], &[Strategy::Baseline, Strategy::CbPartition])
            .expect("fir sweep")
    }

    #[test]
    fn tagged_job_json_appends_request_id_after_cached() {
        let report = sample_report();
        let job = &report.jobs[0];
        assert_eq!(job.to_json_tagged(None), job.to_json());
        let tagged = job.to_json_tagged(Some("req-42"));
        let doc = json::parse(&tagged).expect("tagged job JSON parses");
        assert_eq!(
            doc.get("request_id").and_then(|v| v.as_str()),
            Some("req-42")
        );
        // The tag lands after the schedule-dependent block: consumers
        // that cut the line at `"cached"` (the deterministic identity
        // check in dsp-serve-load) see an unchanged prefix.
        assert_eq!(
            tagged.split(", \"cached\": ").next(),
            job.to_json().split(", \"cached\": ").next(),
        );
        // Quotes in a hostile client-supplied ID stay escaped.
        assert!(job
            .to_json_tagged(Some("a\"b"))
            .contains("\"request_id\": \"a\\\"b\""));
    }

    #[test]
    fn projection_from_json_matches_deterministic_json() {
        // The property the routed sweep comparison rests on: a
        // run-report document round-tripped through JSON text projects
        // to the byte-identical deterministic report, request-id tags
        // and all schedule-dependent fields dropped on the floor.
        let report = sample_report();
        let projected =
            project_deterministic_json(&report.to_json()).expect("report JSON projects");
        assert_eq!(projected, report.deterministic_json());
        // Tagged job objects (what a routed sweep carries) project the
        // same: the extra `request_id` field is simply not selected.
        let tagged = format!(
            "{}{}{}",
            sweep_json_prefix(report.workers, &report.strategies),
            report
                .jobs
                .iter()
                .map(|j| j.to_json_tagged(Some("via-router")))
                .collect::<Vec<_>>()
                .join(",\n"),
            sweep_json_tail(report.wall_time, &report.cache, true),
        );
        assert_eq!(
            project_deterministic_json(&tagged).expect("tagged JSON projects"),
            report.deterministic_json()
        );
    }

    #[test]
    fn projection_rejects_foreign_documents() {
        assert!(project_deterministic_json("not json").is_err());
        assert!(project_deterministic_json("{\"schema\": \"other/v1\"}").is_err());
        let missing_field = "{\"schema\": \"dualbank-run-report/v1\", \"strategies\": [\"cb\"], \
                             \"jobs\": [{\"benchmark\": \"x\"}]}";
        let err = project_deterministic_json(missing_field).unwrap_err();
        assert!(err.contains("job 0"), "{err}");
    }

    #[test]
    fn buffered_json_is_prefix_plus_jobs_plus_tail() {
        // The invariant the chunked /sweep stream rests on: the
        // buffered document is literally the concatenation of the
        // pieces the server streams.
        let report = sample_report();
        let mut assembled = sweep_json_prefix(report.workers, &report.strategies);
        for (i, job) in report.jobs.iter().enumerate() {
            if i > 0 {
                assembled.push_str(",\n");
            }
            assembled.push_str(&job.to_json());
        }
        assembled.push_str(&sweep_json_tail(report.wall_time, &report.cache, false));
        assert_eq!(report.to_json(), assembled);
    }

    #[test]
    fn report_json_parses_and_carries_the_new_fields() {
        let report = sample_report();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("dualbank-run-report/v1")
        );
        assert_eq!(
            doc.get("truncated").and_then(json::Value::as_bool),
            Some(false)
        );
        let cache = doc.get("cache").expect("cache object");
        for layer in ["prepared", "artifact"] {
            let l = cache.get(layer).expect("bounded layer");
            assert!(l.get("bytes").and_then(json::Value::as_u64).is_some());
            assert!(l
                .get("evicted_bytes")
                .and_then(json::Value::as_u64)
                .is_some());
        }
        assert_eq!(
            doc.get("jobs")
                .and_then(json::Value::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn truncated_tail_marks_the_document() {
        let tail = sweep_json_tail(Duration::from_millis(5), &CacheStats::default(), true);
        assert!(tail.contains("\"truncated\": true"));
        assert!(tail.ends_with("}\n"));
    }

    #[test]
    fn job_digest_round_trips_and_catches_a_flipped_byte() {
        let report = sample_report();
        let wire = report.jobs[0].to_json_digested(Some("req-1"));
        assert!(wire.contains(", \"digest\": \""), "{wire}");
        verify_job_digest(&wire).expect("fresh digest verifies");
        // The digest rides after `cached`, so the deterministic
        // projection is unaffected by its presence.
        let doc = format!(
            "{}{}{}",
            sweep_json_prefix(report.workers, &report.strategies),
            wire,
            sweep_json_tail(report.wall_time, &report.cache, false),
        );
        assert!(project_deterministic_json(&doc).is_ok());
        // Any single flipped payload byte is caught — the chaos
        // proxy's corrupt fault XORs 0x20 into one byte.
        let mut bytes = wire.clone().into_bytes();
        let at = wire.find("\"cycles\"").expect("payload field") + 2;
        bytes[at] ^= 0x20;
        let corrupt = String::from_utf8(bytes).expect("still UTF-8");
        assert!(verify_job_digest(&corrupt).is_err());
    }

    #[test]
    fn digest_verification_rejects_missing_and_malformed_fields() {
        let report = sample_report();
        let undigested = report.jobs[0].to_json_tagged(None);
        assert!(verify_job_digest(&undigested)
            .unwrap_err()
            .contains("no digest"));
        let wire = report.jobs[0].to_json_digested(None);
        // Damage inside the digest hex itself is also caught.
        let short = wire.replace(", \"digest\": \"", ", \"digest\": \"ff");
        assert!(verify_job_digest(&short).is_err());
        // Leading indentation (how jobs sit inside a document) and a
        // surrounding newline do not perturb verification.
        verify_job_digest(&format!("  {wire}\n")).expect("trim-insensitive");
    }
}
