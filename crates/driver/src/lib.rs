#![warn(missing_docs)]
//! `dsp-driver` — parallel batch compile-and-simulate engine.
//!
//! The paper's evaluation is a matrix: 23 benchmarks × 7 strategies,
//! each cell a compile + simulate + verify job. This crate submits
//! that matrix, one task per cell, to the shared [`dsp_exec`] work
//! queue (a private pool per engine by default, or a process-wide one
//! via [`Engine::with_executor`]), with three guarantees:
//!
//! 1. **Bit-identical results.** A parallel run produces exactly the
//!    measurements of the serial path (`runner::measure_ir` per cell):
//!    jobs only share work at strategy-independent seams (parse,
//!    optimize, profile, reference run), and each of those stages is a
//!    deterministic function of the source.
//! 2. **Exactly-once work.** The [`cache::ArtifactCache`] keys every
//!    stage on the content hash of its inputs; concurrent workers
//!    asking for the same key block on one computation.
//! 3. **Telemetry.** Every job reports per-stage wall times (parse →
//!    … → simulate → verify) and counters (cycles, dual-memory cycles,
//!    bank conflicts, duplication footprint) in a [`RunReport`] that
//!    renders as JSON or as human tables.
//!
//! ```text
//!  benches × strategies          workers (std::thread)
//!  ┌───────────────────┐   ┌──────────────────────────────┐
//!  │ job queue (atomic │──▶│ prepare ─ profile ─ compile  │
//!  │  claim counter)   │   │    │         │        │      │
//!  └───────────────────┘   │    ▼         ▼        ▼      │
//!                          │  ArtifactCache (content-hash │
//!                          │   keyed, OnceLock slots)     │
//!                          │          │                   │
//!                          │          ▼                   │
//!                          │  simulate ─ verify           │
//!                          └──────────────┬───────────────┘
//!                                         ▼
//!                          RunReport (per-job slots, read
//!                          back in matrix order → JSON/table)
//! ```
//!
//! # Example
//!
//! ```
//! use dsp_backend::Strategy;
//! use dsp_driver::{Engine, EngineOptions};
//!
//! let engine = Engine::new(EngineOptions { jobs: 2, ..EngineOptions::default() });
//! let bench = dsp_workloads::kernels::fir(8, 4);
//! let report = engine.run_matrix(&[bench], &Strategy::ALL)?;
//! assert_eq!(report.jobs.len(), 7);
//! assert!(report.to_json().contains("dualbank-run-report/v1"));
//! # Ok::<(), dsp_driver::EngineError>(())
//! ```

pub mod cache;
pub mod engine;
pub mod json;
pub mod report;
pub mod store;

pub use cache::{ArtifactCache, ArtifactKey, CacheStats, CompiledArtifact};
pub use engine::{
    parse_byte_budget, parse_cache_dir, parse_entry_budget, parse_worker_count, Engine,
    EngineError, EngineOptions, MatrixRun,
};
pub use report::{
    fnv1a, project_deterministic_json, sweep_json_prefix, sweep_json_tail, verify_job_digest,
    with_job_digest, CacheFlags, JobReport, RunReport, StageTimes,
};
pub use store::{
    DiskStats, DiskStore, DiskSweep, FaultIo, FaultKind, FaultOp, FaultPlan, StdIo, StoreIo,
};
// The shared scheduler's vocabulary, re-exported so engine callers
// need not depend on `dsp-exec` directly.
pub use dsp_exec::{CancelToken, Executor, ExecutorStats, JobHandle, Priority, WaitOutcome};
// Likewise the tracing vocabulary: engine callers parent their spans
// and read back histograms through these.
pub use dsp_trace::{SpanCtx, Tracer};
