//! Engine-level behavior of the persistent artifact store: warm starts
//! across engine instances, disk re-hits after in-memory eviction, and
//! graceful degradation when the cache directory is unusable. The
//! load-bearing property throughout is that a disk-rehydrated artifact
//! simulates byte-identically to a freshly compiled one — checked via
//! the deterministic report projection.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dsp_backend::Strategy;
use dsp_driver::{Engine, EngineOptions};

/// A unique, empty scratch directory per call (process id + counter),
/// so parallel tests and stale runs never collide.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dualbank-disk-store-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine_with_dir(dir: &Path) -> Engine {
    Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.to_path_buf()),
        ..EngineOptions::default()
    })
}

#[test]
fn warm_start_across_engine_instances() {
    let dir = temp_dir("warm");
    let bench = dsp_workloads::kernels::fir(16, 4);
    let benches = std::slice::from_ref(&bench);

    // Ground truth: a store-less engine.
    let plain = Engine::new(EngineOptions {
        jobs: 1,
        ..EngineOptions::default()
    });
    let baseline = plain.run_matrix(benches, &Strategy::ALL).unwrap();
    assert!(baseline.cache.disk.is_none(), "no store configured");
    assert!(baseline
        .jobs
        .iter()
        .all(|j| j.cached.artifact_disk.is_none()));

    // Cold engine with a store: every compile misses disk, then
    // publishes.
    let cold = engine_with_dir(&dir);
    let first = cold.run_matrix(benches, &Strategy::ALL).unwrap();
    let disk = first.cache.disk.expect("store configured");
    assert_eq!(disk.hits, 0, "empty store cannot hit");
    assert_eq!(disk.misses, 7, "one disk miss per artifact compile");
    assert_eq!(disk.entries, 7, "every compile published");
    assert!(disk.bytes > 0);
    assert_eq!(disk.errors, 0);
    assert!(first
        .jobs
        .iter()
        .all(|j| j.cached.artifact_disk == Some(false)));
    drop(cold);

    // A new engine over the same directory warm-starts: every artifact
    // rehydrates from disk, nothing recompiles.
    let warm = engine_with_dir(&dir);
    let sweep = warm.cache().store().expect("store configured").sweep();
    assert_eq!(sweep.recovered, 7, "startup sweep indexes every entry");
    assert_eq!(sweep.quarantined, 0);
    assert!(sweep.error.is_none());
    let second = warm.run_matrix(benches, &Strategy::ALL).unwrap();
    let disk = second.cache.disk.expect("store configured");
    assert_eq!(disk.hits, 7, "every artifact served from disk");
    assert_eq!(disk.misses, 0);
    assert!(second
        .jobs
        .iter()
        .all(|j| j.cached.artifact_disk == Some(true)));

    // Rehydrated artifacts are indistinguishable from compiled ones.
    let expect = baseline.deterministic_json();
    assert_eq!(first.deterministic_json(), expect);
    assert_eq!(second.deterministic_json(), expect);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_evicted_entry_rehits_from_disk() {
    // Satellite: an artifact evicted from the in-memory tier by the
    // byte budget but still disk-resident must come back from disk,
    // not a recompile — asserted through the per-job telemetry.
    let dir = temp_dir("evict");
    let eng = Engine::new(EngineOptions {
        jobs: 1,
        // One byte: each memory layer retains at most one (over-budget)
        // entry, so the second benchmark evicts the first.
        cache_max_bytes: Some(1),
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let bench_a = dsp_workloads::kernels::fir(16, 4);
    let bench_b = dsp_workloads::kernels::iir(8, 16);
    let strategies = [Strategy::Baseline];

    let first = eng
        .run_matrix(std::slice::from_ref(&bench_a), &strategies)
        .unwrap();
    assert_eq!(first.jobs[0].cached.artifact_disk, Some(false));
    eng.run_matrix(std::slice::from_ref(&bench_b), &strategies)
        .unwrap();
    assert!(
        eng.cache().stats().artifact_evictions > 0,
        "the one-byte budget must evict bench_a's artifact from memory"
    );

    let third = eng
        .run_matrix(std::slice::from_ref(&bench_a), &strategies)
        .unwrap();
    let job = &third.jobs[0];
    assert!(!job.cached.artifact, "memory tier must miss after eviction");
    assert_eq!(
        job.cached.artifact_disk,
        Some(true),
        "the rerun must rehydrate from disk, not recompile"
    );
    let disk = third.cache.disk.expect("store configured");
    assert!(disk.hits >= 1);
    // The flag also lands in the JSON report for external consumers.
    assert!(
        third.to_json().contains("\"artifact_disk\": true"),
        "report JSON must carry the disk-hit flag"
    );
    // And the rehydrated run matches the cold one bit for bit.
    assert_eq!(first.deterministic_json(), third.deterministic_json());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_degrades_to_memory_only() {
    // Point the store at a path occupied by a regular file: the store
    // cannot create its directories, degrades to a no-op, and the
    // engine still produces the exact same results.
    let dir = temp_dir("degrade");
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    std::fs::write(&dir, b"not a directory").unwrap();

    let eng = engine_with_dir(&dir);
    let sweep = eng.cache().store().expect("store configured").sweep();
    assert!(
        sweep.error.is_some(),
        "unusable directory must surface in the sweep report"
    );
    let bench = dsp_workloads::kernels::fir(16, 4);
    let report = eng
        .run_matrix(std::slice::from_ref(&bench), &Strategy::ALL)
        .unwrap();
    let disk = report.cache.disk.expect("store still reports stats");
    assert!(disk.errors >= 1, "degradation is counted, not silent");
    assert_eq!(disk.entries, 0, "nothing is indexed in degraded mode");

    let plain = Engine::new(EngineOptions {
        jobs: 1,
        ..EngineOptions::default()
    });
    let baseline = plain.run_matrix(&[bench], &Strategy::ALL).unwrap();
    assert_eq!(report.deterministic_json(), baseline.deterministic_json());

    let _ = std::fs::remove_file(&dir);
}
