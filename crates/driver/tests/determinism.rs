//! Serial/parallel equivalence: a `jobs = 4` run of the full
//! 23-benchmark × 7-strategy matrix must be bit-identical to `jobs = 1`
//! in every deterministic field — cycle counts, partitions, memory
//! costs, simulator counters — and the cache totals must aggregate
//! order-independently.

use std::sync::Arc;

use dsp_backend::Strategy;
use dsp_driver::{Engine, EngineOptions, Executor, RunReport};
use dsp_workloads::runner;

/// Every deterministic field of a job, in matrix order. Wall times and
/// per-job cache flags are excluded by construction — they are the only
/// schedule-dependent parts of a report.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    bench: String,
    strategy: &'static str,
    cycles: u64,
    memory_cost: u64,
    static_words: (u32, u32),
    stack_words: u32,
    inst_words: u32,
    partition_cost: u64,
    duplicated_vars: usize,
    duplicated_words: u64,
    ops: u64,
    loads: u64,
    stores: u64,
    dual_mem_cycles: u64,
    bank_conflict_cycles: u64,
}

fn fingerprints(report: &RunReport) -> Vec<Fingerprint> {
    report
        .jobs
        .iter()
        .map(|j| Fingerprint {
            bench: j.bench.clone(),
            strategy: j.strategy.label(),
            cycles: j.measurement.cycles,
            memory_cost: j.measurement.memory_cost,
            static_words: j.measurement.static_words,
            stack_words: j.measurement.stack_words,
            inst_words: j.measurement.inst_words,
            partition_cost: j.partition_cost,
            duplicated_vars: j.measurement.duplicated_vars,
            duplicated_words: j.duplicated_words,
            ops: j.measurement.stats.ops,
            loads: j.measurement.stats.loads,
            stores: j.measurement.stats.stores,
            dual_mem_cycles: j.measurement.stats.dual_mem_cycles,
            bank_conflict_cycles: j.measurement.stats.bank_conflict_cycles,
        })
        .collect()
}

fn engine(jobs: usize) -> Engine {
    Engine::new(EngineOptions {
        jobs,
        ..EngineOptions::default()
    })
}

#[test]
fn full_sweep_parallel_matches_serial() {
    let serial = engine(1)
        .run_suite(&Strategy::ALL)
        .expect("serial sweep succeeds");
    let parallel = engine(4)
        .run_suite(&Strategy::ALL)
        .expect("parallel sweep succeeds");

    assert_eq!(serial.jobs.len(), 23 * Strategy::ALL.len());
    assert_eq!(serial.workers, 1);
    assert_eq!(parallel.workers, 4);

    // Bit-identical deterministic fields, in identical (matrix) order.
    assert_eq!(fingerprints(&serial), fingerprints(&parallel));

    // Cache accounting is order-independent: per-layer totals match
    // exactly even though which job hit/missed differs per schedule.
    assert_eq!(serial.cache, parallel.cache);
}

#[test]
fn sweep_through_shared_executor_matches_serial() {
    // The dsp-serve deployment shape: one machine-sized executor shared
    // by everything that computes. A sweep submitted through it must be
    // bit-identical to a private serial engine, and its per-worker
    // telemetry must show the whole pool participating.
    let serial = engine(1)
        .run_matrix(&dsp_workloads::all()[..8], &Strategy::ALL)
        .expect("serial sweep succeeds");

    let exec = Arc::new(Executor::new(4));
    let shared = Engine::with_executor(EngineOptions::default(), Arc::clone(&exec));
    let report = shared
        .run_matrix(&dsp_workloads::all()[..8], &Strategy::ALL)
        .expect("shared-executor sweep succeeds");

    assert_eq!(report.workers, 4);
    assert_eq!(fingerprints(&serial), fingerprints(&report));
    assert_eq!(serial.cache, report.cache);

    let stats = exec.stats();
    assert_eq!(stats.executed_batch, 8 * Strategy::ALL.len() as u64);
    assert!(
        stats.per_worker_executed.iter().all(|&n| n > 0),
        "every executor worker must have run jobs: {:?}",
        stats.per_worker_executed
    );
}

#[test]
fn engine_matches_legacy_serial_path() {
    // The engine's shared-stage factoring (optimize once, profile once,
    // reference once) must not change any measurement relative to the
    // pre-driver path that redid that work per strategy.
    let report = engine(2)
        .run_matrix(&dsp_workloads::all()[..4], &Strategy::ALL)
        .expect("engine sweep succeeds");
    for bench in &dsp_workloads::all()[..4] {
        let legacy = runner::measure_all(bench).expect("legacy path succeeds");
        for m in &legacy {
            let job = report
                .job(&bench.name, m.strategy)
                .expect("job present in report");
            assert_eq!(
                job.measurement.cycles, m.cycles,
                "{} {}",
                bench.name, m.strategy
            );
            assert_eq!(job.measurement.memory_cost, m.memory_cost);
            assert_eq!(job.measurement.static_words, m.static_words);
            assert_eq!(job.measurement.inst_words, m.inst_words);
            assert_eq!(job.measurement.duplicated_vars, m.duplicated_vars);
            assert_eq!(
                job.measurement.stats.dual_mem_cycles,
                m.stats.dual_mem_cycles
            );
        }
    }
}

#[test]
fn repeated_sweep_on_one_engine_is_stable_and_cached() {
    let eng = engine(3);
    let benches = dsp_workloads::all();
    let first = eng
        .run_matrix(&benches[..6], &Strategy::ALL)
        .expect("first sweep");
    let second = eng
        .run_matrix(&benches[..6], &Strategy::ALL)
        .expect("second sweep");
    assert_eq!(fingerprints(&first), fingerprints(&second));
    // The second sweep compiled nothing: artifact misses did not grow.
    assert_eq!(first.cache.artifact_misses, second.cache.artifact_misses);
    assert!(second.cache.artifact_hits >= first.cache.artifact_misses);
}
