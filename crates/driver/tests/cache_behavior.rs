//! Cache-layer behavior: hit/miss accounting, invalidation on source
//! and config changes, and isolation between strategies.

use dsp_backend::{CompileConfig, Strategy};
use dsp_driver::{ArtifactCache, Engine, EngineOptions};

const SRC_A: &str = "float A[8] = {1,2,3,4,5,6,7,8};
                     float B[8] = {8,7,6,5,4,3,2,1};
                     float out;
                     void main() {
                       int i; float acc; acc = 0.0;
                       for (i = 0; i < 8; i++) acc += A[i] * B[i];
                       out = acc;
                     }";

/// Same program with one changed initializer — different content hash.
const SRC_B: &str = "float A[8] = {1,2,3,4,5,6,7,9};
                     float B[8] = {8,7,6,5,4,3,2,1};
                     float out;
                     void main() {
                       int i; float acc; acc = 0.0;
                       for (i = 0; i < 8; i++) acc += A[i] * B[i];
                       out = acc;
                     }";

#[test]
fn sweep_compiles_each_pair_exactly_once() {
    let cache = ArtifactCache::new();
    for _round in 0..3 {
        for strategy in Strategy::ALL {
            let (prep, _) = cache.prepared(SRC_A).expect("prepare");
            let profile = match strategy {
                Strategy::ProfileWeighted | Strategy::SelectiveDup => {
                    Some(cache.profile(&prep).expect("profile").0)
                }
                _ => None,
            };
            cache
                .artifact(&prep, strategy, CompileConfig::default(), profile)
                .expect("compile");
        }
    }
    let stats = cache.stats();
    // One source, three rounds: 1 prepared miss, 20 hits.
    assert_eq!(stats.prepared_misses, 1);
    assert_eq!(stats.prepared_hits, 20);
    // One profiling run shared by Pr and SelDup across all rounds.
    assert_eq!(stats.profile_misses, 1);
    assert_eq!(stats.profile_hits, 5);
    // Seven artifacts compiled once each; rounds 2 and 3 fully cached.
    assert_eq!(stats.artifact_misses, 7);
    assert_eq!(stats.artifact_hits, 14);
    assert!(stats.hit_rate() > 0.8);
}

#[test]
fn source_change_invalidates_artifacts() {
    let cache = ArtifactCache::new();
    let (prep_a, _) = cache.prepared(SRC_A).unwrap();
    let (prep_b, _) = cache.prepared(SRC_B).unwrap();
    let (art_a, hit_a, _) = cache
        .artifact(
            &prep_a,
            Strategy::CbPartition,
            CompileConfig::default(),
            None,
        )
        .unwrap();
    let (art_b, hit_b, _) = cache
        .artifact(
            &prep_b,
            Strategy::CbPartition,
            CompileConfig::default(),
            None,
        )
        .unwrap();
    assert!(!hit_a && !hit_b, "distinct sources must both miss");
    assert_eq!(cache.stats().prepared_misses, 2);
    assert_eq!(cache.stats().artifact_misses, 2);
    // The compiled data differs where the source differs.
    assert!(
        art_a.program.x_image.init != art_b.program.x_image.init
            || art_a.program.y_image.init != art_b.program.y_image.init,
        "changed initializer must change a data image"
    );
}

#[test]
fn config_change_invalidates_artifacts() {
    let cache = ArtifactCache::new();
    let (prep, _) = cache.prepared(SRC_A).unwrap();
    let plain = CompileConfig::default();
    let safe = CompileConfig {
        interrupt_safe_dup: true,
        ..CompileConfig::default()
    };
    let (_, hit1, _) = cache
        .artifact(&prep, Strategy::PartialDup, plain, None)
        .unwrap();
    let (_, hit2, _) = cache
        .artifact(&prep, Strategy::PartialDup, safe, None)
        .unwrap();
    let (_, hit3, _) = cache
        .artifact(&prep, Strategy::PartialDup, plain, None)
        .unwrap();
    assert!(!hit1, "first config is a miss");
    assert!(!hit2, "changed config must recompile");
    assert!(hit3, "original config is still cached");
    // The shared front half is reused across configs.
    assert_eq!(cache.stats().prepared_misses, 1);
}

#[test]
fn no_cross_strategy_contamination() {
    let cache = ArtifactCache::new();
    let (prep, _) = cache.prepared(SRC_A).unwrap();
    let mut outputs = Vec::new();
    for strategy in Strategy::ALL {
        let profile = match strategy {
            Strategy::ProfileWeighted | Strategy::SelectiveDup => {
                Some(cache.profile(&prep).expect("profile").0)
            }
            _ => None,
        };
        let (art, hit, _) = cache
            .artifact(&prep, strategy, CompileConfig::default(), profile)
            .unwrap();
        assert!(!hit, "each strategy is its own cache entry");
        outputs.push(art);
    }
    for (art, strategy) in outputs.iter().zip(Strategy::ALL) {
        assert_eq!(art.strategy, strategy, "artifact carries its own strategy");
    }
    // The strategies genuinely differ in output: the baseline puts
    // everything in X; CB splits the banks.
    let base = &outputs[0].program;
    let cb = &outputs[1].program;
    assert_eq!(base.y_static_words, 0);
    assert!(cb.y_static_words > 0);
}

#[test]
fn engine_byte_budget_bounds_the_cache() {
    // First measure how big one source's footprint is, then give an
    // engine a budget that holds roughly one source and sweep two:
    // eviction must kick in, and the resident estimate must respect
    // the budget (the cache only keeps one over-budget entry).
    let probe = Engine::new(EngineOptions {
        jobs: 1,
        ..EngineOptions::default()
    });
    let bench_a = dsp_workloads::kernels::fir(16, 4);
    let bench_b = dsp_workloads::kernels::iir(8, 16);
    probe
        .run_matrix(std::slice::from_ref(&bench_a), &Strategy::ALL)
        .unwrap();
    let one_source = probe.cache().stats().resident_bytes();

    let eng = Engine::new(EngineOptions {
        jobs: 1,
        cache_max_bytes: Some(one_source / 2),
        ..EngineOptions::default()
    });
    eng.run_matrix(
        &[bench_a, bench_b],
        &[Strategy::Baseline, Strategy::CbPartition],
    )
    .unwrap();
    let stats = eng.cache().stats();
    assert!(stats.evictions() > 0, "budget must force evictions");
    assert!(stats.evicted_bytes() > 0);
    let (prepared_resident, artifact_resident) = eng.cache().resident_bytes();
    // Each layer may retain one over-budget entry; beyond that the
    // budget holds.
    assert!(
        prepared_resident <= one_source && artifact_resident <= one_source,
        "resident estimate must stay near the budget \
         ({prepared_resident} + {artifact_resident} vs {one_source})"
    );
}

#[test]
fn engine_reports_hits_on_repeated_run() {
    // Acceptance check: repeating a sweep on one engine serves every
    // compile from cache — hit rate strictly positive and higher than
    // the first pass.
    let eng = Engine::new(EngineOptions {
        jobs: 2,
        ..EngineOptions::default()
    });
    let bench = dsp_workloads::kernels::fir(16, 4);
    let first = eng
        .run_matrix(std::slice::from_ref(&bench), &Strategy::ALL)
        .unwrap();
    let rate_first = first.cache.hit_rate();
    let second = eng.run_matrix(&[bench], &Strategy::ALL).unwrap();
    let rate_second = second.cache.hit_rate();
    assert!(rate_first > 0.0, "shared stages hit within one sweep");
    assert!(
        rate_second > rate_first,
        "repeat run must raise the hit rate ({rate_first} -> {rate_second})"
    );
    assert_eq!(
        first.cache.artifact_misses, second.cache.artifact_misses,
        "repeat run compiles nothing new"
    );
}
