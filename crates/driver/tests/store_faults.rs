//! Fault-injection suite for the persistent artifact store: every IO
//! site (open, read, write, fsync, rename, remove, list) fails in turn
//! under a real engine run, and every failure must degrade to counted
//! in-memory operation — same results, no panics, `errors` bumped.
//! Torn writes and silent bit rot get dedicated scenarios.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dsp_backend::Strategy;
use dsp_driver::{
    DiskStore, Engine, EngineOptions, Executor, FaultIo, FaultKind, FaultOp, FaultPlan,
};

const STRATEGIES: [Strategy; 3] = [
    Strategy::Baseline,
    Strategy::CbPartition,
    Strategy::PartialDup,
];

/// The two strategies pre-published into the store, leaving
/// [`Strategy::PartialDup`] to compile (and publish) during the
/// faulted run — so every publish-side site gets exercised.
const SEEDED: [Strategy; 2] = [Strategy::Baseline, Strategy::CbPartition];

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dualbank-store-faults-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populate `dir` so a subsequent open exercises every sweep path:
/// two valid entries (read + index), one corrupt entry (quarantine
/// rename), and one stray temp file (cleanup remove).
fn seed(dir: &Path, bench: &dsp_workloads::Benchmark) {
    let eng = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.to_path_buf()),
        ..EngineOptions::default()
    });
    eng.run_matrix(std::slice::from_ref(bench), &SEEDED)
        .unwrap();
    std::fs::write(
        dir.join("0000000000000000-0000000000000000-00.art"),
        b"garbage that is certainly not a valid entry",
    )
    .unwrap();
    std::fs::write(dir.join("tmp").join("crashed.0.tmp"), b"torn publish").unwrap();
}

fn faulted_engine(dir: &Path, plan: FaultPlan) -> (Engine, Arc<FaultIo>, Arc<DiskStore>) {
    let io = Arc::new(FaultIo::new(plan));
    let store = Arc::new(DiskStore::open(io.clone(), dir, None));
    let eng = Engine::with_cache_store(
        EngineOptions {
            jobs: 1,
            cache_dir: Some(dir.to_path_buf()),
            ..EngineOptions::default()
        },
        Arc::new(Executor::new(1)),
        Some(store.clone()),
    );
    (eng, io, store)
}

#[test]
fn every_fault_site_degrades_to_memory_with_identical_results() {
    let bench = dsp_workloads::kernels::fir(16, 4);
    let plain = Engine::new(EngineOptions {
        jobs: 1,
        ..EngineOptions::default()
    });
    let expect = plain
        .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
        .unwrap()
        .deterministic_json();

    for op in FaultOp::ALL {
        let dir = temp_dir("fail");
        seed(&dir, &bench);
        let plan = FaultPlan {
            op,
            kind: FaultKind::Fail,
            at: 1,
        };
        let (eng, io, store) = faulted_engine(&dir, plan);
        let report = eng
            .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
            .unwrap_or_else(|e| panic!("{op:?} fault must not fail the run: {e}"));
        assert_eq!(
            io.injected(),
            1,
            "{op:?} fault site was never exercised by the scenario"
        );
        assert!(
            store.stats().errors >= 1,
            "{op:?} failure must be counted, not swallowed"
        );
        assert_eq!(
            report.deterministic_json(),
            expect,
            "{op:?} failure must not change any result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_write_loses_only_the_warm_start() {
    // A write that persists half its bytes then dies (crash / disk
    // full) must cost nothing but the entry it was publishing.
    let bench = dsp_workloads::kernels::fir(16, 4);
    let dir = temp_dir("torn");
    seed(&dir, &bench);
    let plan = FaultPlan {
        op: FaultOp::Write,
        kind: FaultKind::ShortWrite,
        at: 1,
    };
    let (eng, io, store) = faulted_engine(&dir, plan);
    let report = eng
        .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
        .unwrap();
    assert_eq!(io.injected(), 1);
    let stats = store.stats();
    assert!(stats.errors >= 1, "the torn write is counted");
    assert_eq!(
        stats.entries, 2,
        "the torn publish must not be indexed; the seeded entries stay"
    );

    // The store reopens cleanly: only the two intact entries recover,
    // and the rerun (recompiling the lost one) matches exactly.
    let reopened = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let sweep = reopened.cache().store().unwrap().sweep();
    assert_eq!(sweep.recovered, 2);
    assert!(sweep.error.is_none());
    let rerun = reopened
        .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
        .unwrap();
    assert_eq!(rerun.deterministic_json(), report.deterministic_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_rot_is_quarantined_on_the_next_open_and_never_served() {
    // A write that silently flips a byte succeeds today (the caller
    // already holds the artifact in memory) — the CRC catches it the
    // next time the file is read, and the entry is quarantined rather
    // than served.
    let bench = dsp_workloads::kernels::fir(16, 4);
    let dir = temp_dir("rot");
    seed(&dir, &bench);
    let plan = FaultPlan {
        op: FaultOp::Write,
        kind: FaultKind::Corrupt,
        at: 1,
    };
    let (eng, io, store) = faulted_engine(&dir, plan);
    let report = eng
        .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
        .unwrap();
    assert_eq!(io.injected(), 1);
    assert_eq!(
        store.stats().entries,
        3,
        "the rotted entry is indexed — the corruption is silent so far"
    );

    let reopened = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let sweep = reopened.cache().store().unwrap().sweep();
    assert_eq!(sweep.recovered, 2, "intact entries survive");
    assert_eq!(sweep.quarantined, 1, "the rotted entry is caught by CRC");
    let rerun = reopened
        .run_matrix(std::slice::from_ref(&bench), &STRATEGIES)
        .unwrap();
    assert_eq!(
        rerun.deterministic_json(),
        report.deterministic_json(),
        "recompiling the quarantined entry reproduces the result exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
