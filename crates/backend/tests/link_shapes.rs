//! Tests of the linker's code-shape decisions: entry stub, fallthrough
//! elimination, branch inversion, and call-target resolution.

use dsp_backend::{compile_source, Strategy};
use dsp_machine::{AddrOp, PcuOp};

fn compile(src: &str) -> dsp_machine::VliwProgram {
    compile_source(src, Strategy::CbPartition)
        .expect("compiles")
        .program
}

#[test]
fn entry_stub_initializes_both_stacks_then_calls_main() {
    let p = compile("void main() { int x; x = 1; }");
    // Instruction 0: both stack pointers set in parallel on the AUs.
    let i0 = &p.insts[0];
    assert!(matches!(i0.au0, Some(AddrOp::Lea { dst, .. }) if dst == dsp_machine::AReg::SP_X));
    assert!(matches!(i0.au1, Some(AddrOp::Lea { dst, .. }) if dst == dsp_machine::AReg::SP_Y));
    // Instruction 1: call main; instruction 2: halt.
    let main_start = p
        .functions
        .iter()
        .find(|f| f.name == "main")
        .expect("main exists")
        .start;
    assert_eq!(p.insts[1].pcu, Some(PcuOp::Call(main_start)));
    assert_eq!(p.insts[2].pcu, Some(PcuOp::Halt));
}

#[test]
fn straightline_code_has_no_redundant_jumps() {
    // One basic block body: nothing to jump over.
    let p = compile("int out; void main() { int a; int b; a = 2; b = 3; out = a * b; }");
    let jumps = p
        .insts
        .iter()
        .filter(|i| matches!(i.pcu, Some(PcuOp::Jump(_))))
        .count();
    assert_eq!(jumps, 0, "{}", p.disassemble());
}

#[test]
fn loop_latch_branches_backward_without_extra_jump() {
    let p = compile(
        "int out; void main() { int i; out = 0;
         for (i = 0; i < 10; i++) out += i; }",
    );
    // A rotated loop: exactly one backward conditional branch, and it
    // must target an earlier address (the loop body head).
    let mut backward = 0;
    for (pc, inst) in p.insts.iter().enumerate() {
        if let Some(PcuOp::BranchNz { target, .. } | PcuOp::BranchZ { target, .. }) = inst.pcu {
            if (target.0 as usize) <= pc {
                backward += 1;
            }
        }
    }
    assert_eq!(backward, 1, "{}", p.disassemble());
}

#[test]
fn if_else_uses_inverted_branch_for_fallthrough() {
    let p = compile(
        "int out; void main() { int x; x = 3;
         if (x > 2) out = 1; else out = 2; }",
    );
    // The diamond should produce at most one unconditional jump (the
    // join of the taken arm); the branch itself falls through into one
    // arm rather than jumping over it.
    let jumps = p
        .insts
        .iter()
        .filter(|i| matches!(i.pcu, Some(PcuOp::Jump(_))))
        .count();
    assert!(jumps <= 1, "{}", p.disassemble());
    let branches = p
        .insts
        .iter()
        .filter(|i| matches!(i.pcu, Some(PcuOp::BranchNz { .. } | PcuOp::BranchZ { .. })))
        .count();
    assert_eq!(branches, 1, "{}", p.disassemble());
}

#[test]
fn call_targets_resolve_to_function_starts() {
    let p = compile(
        "int out;
         int half(int v) { return v / 2; }
         int quarter(int v) { return half(half(v)); }
         void main() { out = quarter(20); }",
    );
    let starts: Vec<u32> = p.functions.iter().map(|f| f.start.0).collect();
    for inst in &p.insts {
        if let Some(PcuOp::Call(t)) = inst.pcu {
            assert!(
                starts.contains(&t.0),
                "call to {t} is not a function start ({starts:?})"
            );
        }
    }
    // And every branch target is inside the program (validate covers
    // this too, but assert explicitly).
    p.validate(false).expect("valid");
}

#[test]
fn function_ranges_tile_the_instruction_stream() {
    let p = compile(
        "int out;
         int id(int v) { return v; }
         void main() { out = id(7); }",
    );
    let mut cursor = 3; // after the stub
    for f in &p.functions {
        assert_eq!(f.start.0, cursor, "functions must be contiguous");
        cursor += f.len;
    }
    assert_eq!(cursor as usize, p.insts.len());
}
