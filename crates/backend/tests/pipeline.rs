//! End-to-end pipeline tests: compile DSP-C under every strategy, run
//! the result on the simulator, and check that the memory state matches
//! the reference interpreter exactly.

use dsp_backend::{compile_source, Strategy};
use dsp_ir::Interpreter;
use dsp_sim::{SimOptions, Simulator};

/// Compile and simulate under `strategy`; compare the named globals
/// against the interpreter; return the cycle count.
fn check(src: &str, strategy: Strategy, globals: &[&str]) -> u64 {
    // Reference semantics.
    let reference = dsp_frontend::compile_str(src).expect("source compiles");
    let mut interp = Interpreter::new(&reference);
    interp.run().expect("interpreter runs");

    // Compiled execution.
    let out = compile_source(src, strategy).expect("backend compiles");
    out.program
        .validate(strategy.dual_ported())
        .expect("valid program");
    let mut sim = Simulator::new(
        &out.program,
        SimOptions {
            dual_ported: strategy.dual_ported(),
            ..SimOptions::default()
        },
    );
    let stats = sim.run().unwrap_or_else(|e| {
        panic!(
            "[{strategy}] simulation failed: {e}\n{}",
            out.program.disassemble()
        )
    });

    for name in globals {
        let want = interp
            .global_mem_by_name(name)
            .unwrap_or_else(|| panic!("global {name} missing"));
        let got = sim
            .read_symbol(name)
            .unwrap_or_else(|| panic!("symbol {name} missing"));
        assert_eq!(
            want,
            &got[..],
            "[{strategy}] global `{name}` differs from the interpreter"
        );
        // Duplicated symbols must have coherent copies.
        if let Some(copy) = sim.read_symbol_copy(name) {
            assert_eq!(
                got, copy,
                "[{strategy}] `{name}`: the two bank copies diverged"
            );
        }
    }
    stats.cycles
}

fn check_all(src: &str, globals: &[&str]) {
    for strategy in Strategy::ALL {
        check(src, strategy, globals);
    }
}

#[test]
fn fir_filter() {
    check_all(
        "float A[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
         float B[16] = {1,1,2,2,3,3,4,4,5,5,6,6,7,7,8,8};
         float out;
         void main() {
             int i; float acc; acc = 0.0;
             for (i = 0; i < 16; i++) acc += A[i] * B[i];
             out = acc;
         }",
        &["out"],
    );
}

#[test]
fn autocorrelation_with_dynamic_lag() {
    check_all(
        "float s[24] = {1,2,3,4,5,6,7,8,9,10,11,12,
                        12,11,10,9,8,7,6,5,4,3,2,1};
         float R[6];
         void main() {
             int n; int m;
             for (m = 1; m < 4; m++)
                 for (n = 0; n < 6; n++)
                     R[n] += s[n] * s[n + m];
         }",
        &["R"],
    );
}

#[test]
fn store_heavy_duplication_integrity() {
    // Writes to a duplicated array must keep both copies coherent.
    check_all(
        "float s[12] = {3,1,4,1,5,9,2,6,5,3,5,8};
         float acc[4];
         void main() {
             int n; int it;
             for (it = 0; it < 3; it++) {
                 for (n = 0; n < 4; n++) {
                     acc[n] += s[n] * s[n + 2];
                     s[n] = s[n] + 1.0;
                 }
             }
         }",
        &["s", "acc"],
    );
}

#[test]
fn control_flow_and_calls() {
    check_all(
        "int out;
         int classify(int x) {
             if (x > 100) return 3;
             if (x > 10) { if (x % 2 == 0) return 2; else return 1; }
             return 0;
         }
         void main() {
             int i; out = 0;
             for (i = 0; i < 150; i += 7) out += classify(i);
         }",
        &["out"],
    );
}

#[test]
fn recursion() {
    check_all(
        "int out;
         int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
         void main() { out = fib(11); }",
        &["out"],
    );
}

#[test]
fn matrix_multiply() {
    check_all(
        "float A[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
         float B[16] = {2,0,1,3,1,1,4,2,0,5,2,2,3,1,0,1};
         float C[16];
         void main() {
             int i; int j; int k;
             for (i = 0; i < 4; i++)
                 for (j = 0; j < 4; j++) {
                     float acc; acc = 0.0;
                     for (k = 0; k < 4; k++)
                         acc += A[i * 4 + k] * B[k * 4 + j];
                     C[i * 4 + j] = acc;
                 }
         }",
        &["C"],
    );
}

#[test]
fn local_arrays_and_array_params() {
    check_all(
        "int out;
         int sum(int v[], int n) {
             int i; int s; s = 0;
             for (i = 0; i < n; i++) s += v[i];
             return s;
         }
         void main() {
             int t[8]; int i;
             for (i = 0; i < 8; i++) t[i] = i * i;
             out = sum(t, 8);
         }",
        &["out"],
    );
}

#[test]
fn histogram_pattern() {
    check_all(
        "int img[16] = {0,1,2,3,0,1,2,3,1,1,2,0,3,3,3,1};
         int hist[4];
         void main() {
             int i;
             for (i = 0; i < 16; i++) hist[img[i]] += 1;
         }",
        &["hist"],
    );
}

#[test]
fn float_int_mix_and_casts() {
    check_all(
        "float out; int counts[5];
         void main() {
             int i; float x; x = 0.25;
             for (i = 0; i < 5; i++) {
                 counts[i] = (int) (x * 8.0);
                 x = x + 0.5;
             }
             out = (float) counts[4] / 2.0;
         }",
        &["out", "counts"],
    );
}

#[test]
fn cb_beats_baseline_on_fir() {
    let src = "float A[64]; float B[64]; float out;
               void main() {
                   int i; float acc; acc = 0.0;
                   for (i = 0; i < 64; i++) acc += A[i] * B[i];
                   out = acc;
               }";
    let base = check(src, Strategy::Baseline, &["out"]);
    let cb = check(src, Strategy::CbPartition, &["out"]);
    let ideal = check(src, Strategy::Ideal, &["out"]);
    assert!(
        cb < base,
        "CB partitioning must beat the baseline: {cb} vs {base}"
    );
    assert!(ideal <= cb, "Ideal is a lower bound: {ideal} vs {cb}");
}

#[test]
fn duplication_beats_cb_on_autocorrelation() {
    let src = "float s[128]; float R[32]; float out;
               void main() {
                   int n; int m; float acc; acc = 0.0;
                   for (m = 1; m < 24; m++)
                       for (n = 0; n < 32; n++)
                           R[n] += s[n] * s[n + m];
                   for (n = 0; n < 32; n++) acc += R[n];
                   out = acc;
               }";
    let base = check(src, Strategy::Baseline, &["out"]);
    let cb = check(src, Strategy::CbPartition, &["out"]);
    let dup = check(src, Strategy::PartialDup, &["out"]);
    let ideal = check(src, Strategy::Ideal, &["out"]);
    assert!(
        dup < cb,
        "duplication must pay off here: dup {dup} vs cb {cb}"
    );
    // Partitioning alone cannot split same-array accesses — exactly the
    // paper's lpc observation (§4.1): CB gains little or nothing here.
    assert!(cb <= base, "cb {cb} vs base {base}");
    assert!(ideal <= dup, "ideal {ideal} vs dup {dup}");
}

#[test]
fn interrupt_safe_duplication_is_atomic_and_correct() {
    let src = "float s[48] = {1.0, 2.0, 3.0, 4.0};
               float acc[8];
               void main() {
                   int n; int m;
                   for (m = 1; m < 6; m++) {
                       for (n = 0; n < 8; n++) {
                           acc[n] += s[n] * s[n + m];
                           s[n] = s[n] + 0.25;
                       }
                   }
               }";
    // Without the option, the bookkeeping store may land in a different
    // cycle than its twin.
    let plain = dsp_backend::compile_source(src, Strategy::PartialDup).unwrap();
    assert!(
        plain.alloc.duplicated().len() == 1,
        "s must be duplicated for this test to mean anything"
    );
    // With the option, every duplicated store is a same-cycle pair.
    let safe = dsp_backend::compile_ir_with(
        &dsp_frontend::compile_str(src).unwrap(),
        Strategy::PartialDup,
        dsp_backend::CompileConfig {
            interrupt_safe_dup: true,
            ..dsp_backend::CompileConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        safe.program.dup_store_violations(),
        Vec::<u32>::new(),
        "atomic mode must leave no incoherence window"
    );

    // Semantics identical to the interpreter either way, and the atomic
    // mode may cost cycles but not correctness.
    let reference = dsp_frontend::compile_str(src).unwrap();
    let mut interp = Interpreter::new(&reference);
    interp.run().unwrap();
    for out in [&plain, &safe] {
        let mut sim = Simulator::new(&out.program, SimOptions::default());
        sim.run().unwrap();
        for name in ["s", "acc"] {
            let want = interp.global_mem_by_name(name).unwrap();
            let got = sim.read_symbol(name).unwrap();
            assert_eq!(want, &got[..], "{name} differs");
        }
        if let Some(copy) = sim.read_symbol_copy("s") {
            assert_eq!(sim.read_symbol("s").unwrap(), copy);
        }
    }
}

#[test]
fn interrupt_safe_mode_reports_windows_in_plain_mode() {
    // The validator must actually detect non-atomic pairs: with lots of
    // surrounding memory traffic, at least one bookkeeping store drifts
    // to a different cycle under the plain (non-atomic) mode.
    let src = "float s[40] = {1.0, 2.0};
               float a[16]; float b[16]; float acc[8];
               void main() {
                   int n; int m;
                   for (m = 1; m < 5; m++)
                       for (n = 0; n < 8; n++) {
                           acc[n] += s[n] * s[n + m];
                           a[n] = s[n] + 1.0;
                           b[n] = s[n + m] - 1.0;
                           s[n] = a[n] * 0.5 + b[n] * 0.5;
                       }
               }";
    let plain = dsp_backend::compile_source(src, Strategy::PartialDup).unwrap();
    if plain.alloc.duplicated().is_empty() {
        panic!("expected s to be duplicated");
    }
    let safe = dsp_backend::compile_ir_with(
        &dsp_frontend::compile_str(src).unwrap(),
        Strategy::PartialDup,
        dsp_backend::CompileConfig {
            interrupt_safe_dup: true,
            ..dsp_backend::CompileConfig::default()
        },
    )
    .unwrap();
    assert!(safe.program.dup_store_violations().is_empty());
    // And the atomic constraint can only lengthen the schedule.
    assert!(safe.program.inst_count() >= plain.program.inst_count());
}

#[test]
fn break_and_continue_compile_correctly() {
    check_all(
        "int out; int acc[6];
         void main() {
             int i; int j; out = 0;
             for (i = 0; i < 6; i++) {
                 acc[i] = 0;
                 for (j = 0; j < 10; j++) {
                     if (j == i) continue;
                     if (j > 7) break;
                     acc[i] += j;
                 }
                 out += acc[i];
             }
             while (1) { out += 100; break; }
         }",
        &["out", "acc"],
    );
}
