//! Linking: lay out scheduled functions into one instruction stream,
//! resolve branch and call targets, and attach the data images.
//!
//! The program starts with a three-instruction stub that initializes
//! both stack pointers (in parallel, one per address unit), calls
//! `main`, and halts.

use std::collections::HashMap;

use dsp_ir::{BlockId, FuncId, Program};
use dsp_machine::{AReg, AddrOp, InstAddr, Label, PcuOp, VliwFunction, VliwInst, VliwProgram};

use crate::layout::{DataLayout, STACK_WORDS};
use crate::schedule::{BlockTerm, ScheduledBlock};

/// One function ready for linking.
#[derive(Debug, Clone)]
pub struct LinkFunction {
    /// Source-level name.
    pub name: String,
    /// Scheduled blocks, indexed by [`BlockId`].
    pub blocks: Vec<ScheduledBlock>,
    /// The entry (prologue) block.
    pub entry: BlockId,
}

/// Link everything into an executable [`VliwProgram`].
///
/// # Panics
///
/// Panics if `program.main` is unset (the driver validates first).
#[must_use]
pub fn link(program: &Program, funcs: Vec<LinkFunction>, layout: &DataLayout) -> VliwProgram {
    let main = program.main.expect("program has a main function");

    // Per-function block order: entry first, then the rest in id order.
    let block_order: Vec<Vec<usize>> = funcs
        .iter()
        .map(|f| {
            let mut order = vec![f.entry.index()];
            order.extend((0..f.blocks.len()).filter(|&b| b != f.entry.index()));
            order
        })
        .collect();

    // Pass 1: finalize the shape of every block (fallthrough decisions),
    // producing per-block instruction vectors plus patch directives.
    #[derive(Debug)]
    enum Patch {
        None,
        JumpLast(BlockId),
        BranchLast(BlockId),
        BranchLastPlusJump(BlockId, BlockId),
    }
    // (instructions, terminator patch, call fixups) per block.
    type FinalBlock = (Vec<VliwInst>, Patch, Vec<(usize, FuncId)>);
    let mut final_blocks: Vec<Vec<FinalBlock>> = Vec::new();
    for (fi, f) in funcs.iter().enumerate() {
        let order = &block_order[fi];
        let mut out = Vec::with_capacity(order.len());
        for (pos, &bi) in order.iter().enumerate() {
            let next: Option<BlockId> = order.get(pos + 1).map(|&b| BlockId(b as u32));
            let sb = &f.blocks[bi];
            let mut insts = sb.insts.clone();
            let patch = match &sb.term {
                BlockTerm::Jump(t) => {
                    if Some(*t) == next {
                        // Fallthrough: drop the jump.
                        if let Some(last) = insts.last_mut() {
                            last.pcu = None;
                            if last.is_empty() {
                                insts.pop();
                            }
                        }
                        Patch::None
                    } else {
                        Patch::JumpLast(*t)
                    }
                }
                BlockTerm::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if Some(*else_bb) == next {
                        Patch::BranchLast(*then_bb)
                    } else if Some(*then_bb) == next {
                        // Invert: branch-if-zero to the else target.
                        let last = insts.last_mut().expect("branch block non-empty");
                        last.pcu = Some(PcuOp::BranchZ {
                            cond: *cond,
                            target: InstAddr(u32::MAX),
                        });
                        Patch::BranchLast(*else_bb)
                    } else {
                        insts.push(VliwInst::new());
                        Patch::BranchLastPlusJump(*then_bb, *else_bb)
                    }
                }
                BlockTerm::Ret => Patch::None,
            };
            out.push((insts, patch, sb.call_fixups.clone()));
        }
        final_blocks.push(out);
    }

    // Pass 2: assign addresses.
    const STUB_LEN: u32 = 3;
    let mut func_addr: Vec<u32> = Vec::with_capacity(funcs.len());
    let mut block_addr: Vec<HashMap<usize, u32>> = Vec::with_capacity(funcs.len());
    let mut cursor = STUB_LEN;
    for (fi, blocks) in final_blocks.iter().enumerate() {
        func_addr.push(cursor);
        let mut map = HashMap::new();
        for (pos, &bi) in block_order[fi].iter().enumerate() {
            map.insert(bi, cursor);
            cursor += blocks[pos].0.len() as u32;
        }
        block_addr.push(map);
    }

    // Pass 3: emit with patches applied.
    let (x_stack_base, y_stack_base) = layout.stack_bases();
    let mut insts = Vec::with_capacity(cursor as usize);
    let mut stub0 = VliwInst::new();
    stub0.au0 = Some(AddrOp::Lea {
        dst: AReg::SP_X,
        addr: x_stack_base,
    });
    stub0.au1 = Some(AddrOp::Lea {
        dst: AReg::SP_Y,
        addr: y_stack_base,
    });
    let mut stub1 = VliwInst::new();
    stub1.pcu = Some(PcuOp::Call(InstAddr(func_addr[main.index()])));
    let mut stub2 = VliwInst::new();
    stub2.pcu = Some(PcuOp::Halt);
    insts.push(stub0);
    insts.push(stub1);
    insts.push(stub2);

    let mut labels = vec![Label {
        name: "_start".into(),
        addr: InstAddr(0),
    }];
    let mut functions = Vec::with_capacity(funcs.len());
    for (fi, blocks) in final_blocks.into_iter().enumerate() {
        let start = InstAddr(func_addr[fi]);
        labels.push(Label {
            name: funcs[fi].name.clone(),
            addr: start,
        });
        let mut len = 0u32;
        for (mut block_insts, patch, call_fixups) in blocks {
            let addr_of = |b: BlockId| InstAddr(block_addr[fi][&b.index()]);
            for (idx, callee) in call_fixups {
                let inst = &mut block_insts[idx];
                inst.pcu = Some(PcuOp::Call(InstAddr(func_addr[callee.index()])));
            }
            match patch {
                Patch::None => {}
                Patch::JumpLast(t) => {
                    let last = block_insts.last_mut().expect("jump block non-empty");
                    last.pcu = Some(PcuOp::Jump(addr_of(t)));
                }
                Patch::BranchLast(t) => {
                    let last = block_insts.last_mut().expect("branch block non-empty");
                    match last.pcu {
                        Some(PcuOp::BranchNz { cond, .. }) => {
                            last.pcu = Some(PcuOp::BranchNz {
                                cond,
                                target: addr_of(t),
                            });
                        }
                        Some(PcuOp::BranchZ { cond, .. }) => {
                            last.pcu = Some(PcuOp::BranchZ {
                                cond,
                                target: addr_of(t),
                            });
                        }
                        ref other => unreachable!("expected branch, found {other:?}"),
                    }
                }
                Patch::BranchLastPlusJump(then_bb, else_bb) => {
                    let n = block_insts.len();
                    match block_insts[n - 2].pcu {
                        Some(PcuOp::BranchNz { cond, .. }) => {
                            block_insts[n - 2].pcu = Some(PcuOp::BranchNz {
                                cond,
                                target: addr_of(then_bb),
                            });
                        }
                        ref other => unreachable!("expected branch, found {other:?}"),
                    }
                    block_insts[n - 1].pcu = Some(PcuOp::Jump(addr_of(else_bb)));
                }
            }
            len += block_insts.len() as u32;
            insts.extend(block_insts);
        }
        functions.push(VliwFunction {
            name: funcs[fi].name.clone(),
            start,
            len,
        });
    }

    VliwProgram {
        insts,
        entry: InstAddr(0),
        x_image: layout.x_image.clone(),
        y_image: layout.y_image.clone(),
        x_static_words: layout.x_static,
        y_static_words: layout.y_static,
        x_stack_base,
        y_stack_base,
        stack_words: STACK_WORDS,
        symbols: layout.symbols.clone(),
        functions,
        labels,
    }
}
