//! Final operation compaction: pack each LIR block into VLIW
//! instructions using the bank assignments of the data-allocation pass.
//!
//! Memory operations claim the memory unit of their bank — or either
//! unit when the data is duplicated ([`MemClaim::Either`]) or the
//! *Ideal* dual-ported configuration is being compiled. After the list
//! scheduler assigns units, `Either` operations are retargeted to the
//! bank of the unit they landed on.

use dsp_ir::depgraph::{DepEdge, DepKind};
use dsp_ir::BlockId;
use dsp_machine::{Bank, FuncUnit, MemOp, PcuOp, Reg, UnitClass, VliwInst};
use dsp_sched::{compact, priorities_from_edges, CompactError, CompactInput, MemClaim, OpClaim};

use crate::lir::LirOp;

/// The terminator shape of a scheduled block, resolved by the linker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockTerm {
    /// Falls through or jumps to a block.
    Jump(BlockId),
    /// Conditional branch.
    Br {
        /// Condition register.
        cond: dsp_machine::IReg,
        /// Taken target.
        then_bb: BlockId,
        /// Not-taken target.
        else_bb: BlockId,
    },
    /// Function return (already a concrete [`PcuOp::Ret`] in the
    /// instruction stream).
    Ret,
}

/// One block compacted into VLIW instructions.
#[derive(Debug, Clone)]
pub struct ScheduledBlock {
    /// The instructions; the terminator's PCU op (if any) sits in the
    /// last one as a placeholder and is finalized by the linker.
    pub insts: Vec<VliwInst>,
    /// The block terminator to resolve.
    pub term: BlockTerm,
    /// `(instruction index, callee)` pairs whose `call` target the
    /// linker must patch.
    pub call_fixups: Vec<(usize, dsp_ir::FuncId)>,
}

/// Build the dependence edges of one LIR block.
#[must_use]
pub fn build_deps(ops: &[LirOp]) -> Vec<DepEdge> {
    let n = ops.len();
    let mut edges = Vec::new();
    let reads: Vec<Vec<Reg>> = ops.iter().map(LirOp::reads).collect();
    let writes: Vec<Vec<Reg>> = ops.iter().map(LirOp::writes).collect();
    let mut add = |from: usize, to: usize, kind: DepKind| {
        edges.push(DepEdge { from, to, kind });
    };
    for j in 0..n {
        for i in 0..j {
            // Register dependences.
            if writes[i].iter().any(|r| reads[j].contains(r)) {
                add(i, j, DepKind::Flow);
            }
            if reads[i].iter().any(|r| writes[j].contains(r)) {
                // A call "reads" its argument registers during the many
                // cycles the callee executes, so a later write may not
                // share its issue cycle: the usual same-cycle tolerance
                // of anti dependences does not apply.
                let kind = if matches!(ops[i], LirOp::Call { .. }) {
                    DepKind::Output
                } else {
                    DepKind::Anti
                };
                add(i, j, kind);
            }
            if writes[i].iter().any(|r| writes[j].contains(r)) {
                add(i, j, DepKind::Output);
            }
            // Memory dependences: only within a bank (the two banks are
            // physically distinct memories), only when the accesses may
            // overlap.
            if let (Some((store_a, claim_a, alias_a)), Some((store_b, claim_b, alias_b))) =
                (mem_info(&ops[i]), mem_info(&ops[j]))
            {
                let banks_meet = match (claim_a, claim_b) {
                    (Some(a), Some(b)) => claims_intersect(a, b),
                    _ => true, // a dup pair touches both banks
                };
                if banks_meet && alias_a.may_overlap(&alias_b) {
                    match (store_a, store_b) {
                        (true, false) => add(i, j, DepKind::Flow),
                        (false, true) => add(i, j, DepKind::Anti),
                        (true, true) => add(i, j, DepKind::Output),
                        (false, false) => {}
                    }
                }
            }
            // Calls are barriers for memory and for each other.
            let call_i = matches!(ops[i], LirOp::Call { .. });
            let call_j = matches!(ops[j], LirOp::Call { .. });
            let mem_i = mem_info(&ops[i]).is_some();
            let mem_j = mem_info(&ops[j]).is_some();
            if (call_i && (mem_j || call_j)) || (call_j && mem_i) {
                add(i, j, DepKind::Flow);
            }
            // Everything issues no later than the terminator.
            if ops[j].is_terminator() {
                add(i, j, DepKind::Control);
            }
        }
    }
    edges
}

fn claims_intersect(a: MemClaim, b: MemClaim) -> bool {
    match (a, b) {
        (MemClaim::Fixed(x), MemClaim::Fixed(y)) => x == y,
        _ => true,
    }
}

/// `(is_store, bank claim, alias)` of a memory-touching operation;
/// `None` claim means both banks (the dup store pair).
fn mem_info(op: &LirOp) -> Option<(bool, Option<MemClaim>, crate::lir::AliasKey)> {
    match op {
        LirOp::Mem { op, meta } => Some((op.is_store(), Some(meta.claim), meta.alias)),
        LirOp::DupStorePair { alias, .. } => Some((true, None, *alias)),
        _ => None,
    }
}

/// Resource claims of a block's operations. With `ideal`, memory
/// operations may use either unit (the paper's dual-ported memory).
#[must_use]
pub fn build_claims(ops: &[LirOp], ideal: bool) -> Vec<OpClaim> {
    ops.iter()
        .map(|op| match op {
            LirOp::Int(_) => OpClaim::Class(UnitClass::Int),
            LirOp::Fp(_) => OpClaim::Class(UnitClass::Fp),
            LirOp::Addr(_) => OpClaim::Class(UnitClass::Addr),
            LirOp::Mem { meta, .. } => {
                OpClaim::Mem(if ideal { MemClaim::Either } else { meta.claim })
            }
            LirOp::DupStorePair { .. } => OpClaim::MemPair,
            LirOp::Jump(_) | LirOp::Br { .. } | LirOp::Call { .. } | LirOp::Ret { .. } => {
                OpClaim::Unit(FuncUnit::Pcu)
            }
        })
        .collect()
}

/// Compact one LIR block.
///
/// # Errors
///
/// Propagates [`CompactError`] (a dependence cycle, which well-formed
/// LIR cannot produce).
pub fn schedule_block(ops: &[LirOp], ideal: bool) -> Result<ScheduledBlock, CompactError> {
    let edges = build_deps(ops);
    let claims = build_claims(ops, ideal);
    let priorities = priorities_from_edges(ops.len(), &edges);
    let input = CompactInput {
        edges: &edges,
        claims: &claims,
        priorities: &priorities,
    };
    let sched = compact(&input, None)?;
    debug_assert!(sched.check(&edges).is_ok(), "schedule violates deps");

    let mut insts = vec![VliwInst::new(); sched.len()];
    let mut term = BlockTerm::Ret;
    let mut have_term = false;
    let mut call_fixups = Vec::new();
    for (idx, op) in ops.iter().enumerate() {
        let cycle = sched.op_cycle[idx];
        let unit = sched.op_unit[idx];
        let inst = &mut insts[cycle];
        match op {
            LirOp::Int(o) => match unit {
                FuncUnit::Du0 => inst.du0 = Some(*o),
                FuncUnit::Du1 => inst.du1 = Some(*o),
                u => unreachable!("int op on {u}"),
            },
            LirOp::Fp(o) => match unit {
                FuncUnit::Fpu0 => inst.fpu0 = Some(*o),
                FuncUnit::Fpu1 => inst.fpu1 = Some(*o),
                u => unreachable!("fp op on {u}"),
            },
            LirOp::Addr(o) => match unit {
                FuncUnit::Au0 => inst.au0 = Some(*o),
                FuncUnit::Au1 => inst.au1 = Some(*o),
                u => unreachable!("addr op on {u}"),
            },
            LirOp::DupStorePair { x, y, .. } => {
                debug_assert_eq!(unit, FuncUnit::Mu0, "pair anchors on MU0");
                inst.mu0 = Some(*x);
                inst.mu1 = Some(*y);
            }
            LirOp::Mem { op: o, .. } => {
                // A duplicated datum has a copy in each bank, so an
                // `Either` operation is retargeted to the bank of the
                // unit it landed on. Under the Ideal (dual-ported)
                // configuration the data has a single home: the bank
                // stays put and only the *unit* assignment is free.
                let emitted = if ideal { *o } else { retarget(o, unit) };
                match unit {
                    FuncUnit::Mu0 => inst.mu0 = Some(emitted),
                    FuncUnit::Mu1 => inst.mu1 = Some(emitted),
                    u => unreachable!("mem op on {u}"),
                }
            }
            LirOp::Jump(t) => {
                // Placeholder; resolved by the linker (and possibly
                // dropped for fallthrough).
                inst.pcu = Some(PcuOp::Jump(dsp_machine::InstAddr(u32::MAX)));
                term = BlockTerm::Jump(*t);
                have_term = true;
            }
            LirOp::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                inst.pcu = Some(PcuOp::BranchNz {
                    cond: *cond,
                    target: dsp_machine::InstAddr(u32::MAX),
                });
                term = BlockTerm::Br {
                    cond: *cond,
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                };
                have_term = true;
            }
            LirOp::Call { callee, .. } => {
                inst.pcu = Some(PcuOp::Call(dsp_machine::InstAddr(u32::MAX)));
                call_fixups.push((cycle, *callee));
            }
            LirOp::Ret { .. } => {
                inst.pcu = Some(PcuOp::Ret);
                term = BlockTerm::Ret;
                have_term = true;
            }
        }
    }
    debug_assert!(have_term || ops.is_empty(), "block lacks a terminator");
    Ok(ScheduledBlock {
        insts,
        term,
        call_fixups,
    })
}

fn retarget(op: &MemOp, unit: FuncUnit) -> MemOp {
    let bank = match unit {
        FuncUnit::Mu0 => Bank::X,
        FuncUnit::Mu1 => Bank::Y,
        u => unreachable!("mem op on {u}"),
    };
    match *op {
        MemOp::Load { dst, addr, .. } => MemOp::Load { dst, addr, bank },
        MemOp::Store { src, addr, .. } => MemOp::Store { src, addr, bank },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{AliasKey, MemMeta};
    use dsp_bankalloc::Var;
    use dsp_ir::ops::{MemBase, MemRef};
    use dsp_ir::GlobalId;
    use dsp_machine::{IReg, IntOp, MemAddr};

    fn load(g: u32, bank: Bank, claim: MemClaim, dst: u8) -> LirOp {
        LirOp::Mem {
            op: MemOp::Load {
                dst: Reg::Int(IReg(dst)),
                addr: MemAddr::Absolute(0),
                bank,
            },
            meta: MemMeta {
                alias: AliasKey::Class(
                    Var::Global(GlobalId(g)),
                    MemRef::direct(MemBase::Global(GlobalId(g)), 0),
                ),
                claim,
            },
        }
    }

    fn jump() -> LirOp {
        LirOp::Jump(BlockId(0))
    }

    #[test]
    fn cross_bank_loads_pack() {
        let ops = vec![
            load(0, Bank::X, MemClaim::Fixed(Bank::X), 9),
            load(1, Bank::Y, MemClaim::Fixed(Bank::Y), 10),
            jump(),
        ];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(s.insts.len(), 1);
        assert!(s.insts[0].mu0.is_some() && s.insts[0].mu1.is_some());
    }

    #[test]
    fn same_bank_loads_serialize_unless_ideal() {
        let ops = vec![
            load(0, Bank::X, MemClaim::Fixed(Bank::X), 9),
            load(1, Bank::X, MemClaim::Fixed(Bank::X), 10),
            jump(),
        ];
        let normal = schedule_block(&ops, false).unwrap();
        assert_eq!(normal.insts.len(), 2);
        let ideal = schedule_block(&ops, true).unwrap();
        assert_eq!(ideal.insts.len(), 1);
    }

    #[test]
    fn either_claim_load_retargets_bank() {
        // Two loads of a duplicated array: both claim Either; one must
        // land on MU1 and be rewritten to bank Y.
        let ops = vec![
            load(0, Bank::X, MemClaim::Either, 9),
            load(0, Bank::X, MemClaim::Either, 10),
            jump(),
        ];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(s.insts.len(), 1);
        let mu1 = s.insts[0].mu1.expect("second load on MU1");
        assert_eq!(mu1.bank(), Bank::Y, "retargeted to the Y copy");
        assert!(s.insts[0].check_bank_discipline(false).is_ok());
    }

    #[test]
    fn dup_store_pair_shares_cycle() {
        // Store to both copies of a duplicated variable: X and Y stores
        // are independent (different memories) and pack together.
        let st = |bank: Bank| LirOp::Mem {
            op: MemOp::Store {
                src: Reg::Int(IReg(9)),
                addr: MemAddr::Absolute(4),
                bank,
            },
            meta: MemMeta {
                alias: AliasKey::Class(
                    Var::Global(GlobalId(0)),
                    MemRef::direct(MemBase::Global(GlobalId(0)), 4),
                ),
                claim: MemClaim::Fixed(bank),
            },
        };
        let ops = vec![st(Bank::X), st(Bank::Y), jump()];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(s.insts.len(), 1, "bookkeeping store packs for free here");
    }

    #[test]
    fn flow_dependent_chain_spans_cycles() {
        let ops = vec![
            LirOp::Int(IntOp::MovImm {
                dst: IReg(9),
                imm: 1,
            }),
            LirOp::Int(IntOp::Mov {
                dst: IReg(10),
                src: IReg(9),
            }),
            jump(),
        ];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(s.insts.len(), 2);
    }

    #[test]
    fn call_fixup_recorded() {
        let ops = vec![
            LirOp::Call {
                callee: dsp_ir::FuncId(3),
                reads: vec![],
                ret: None,
            },
            jump(),
        ];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(s.call_fixups, vec![(0, dsp_ir::FuncId(3))]);
    }

    #[test]
    fn branch_recorded_as_term() {
        let ops = vec![LirOp::Br {
            cond: IReg(9),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        }];
        let s = schedule_block(&ops, false).unwrap();
        assert_eq!(
            s.term,
            BlockTerm::Br {
                cond: IReg(9),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
        );
    }
}
