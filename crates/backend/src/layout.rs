//! Static data layout and stack-frame layout.
//!
//! Globals are placed in their allocated banks; duplicated globals are
//! placed *first*, at the same address in both banks, so a single base
//! address serves either copy (paper §3.2: "To avoid fragmenting
//! memory, we first allocate duplicated variables to both banks before
//! other variables"). Each function's frame has a per-bank region:
//! callee-saved register slots (alternating banks), then local arrays
//! (in their allocated banks), then spill slots (alternating banks).

use dsp_bankalloc::BankAllocation;
use dsp_ir::{FuncId, GlobalId, Program};
use dsp_machine::{Bank, DataImage, DataSymbol};

/// Default stack budget per bank, in words.
pub const STACK_WORDS: u32 = 16_384;

/// Placement of every global plus the initial bank images.
#[derive(Debug, Clone)]
pub struct DataLayout {
    /// Word address of each global (in its home bank — and, if
    /// duplicated, at the same address in the other bank).
    pub global_addr: Vec<u32>,
    /// Static data words in bank X.
    pub x_static: u32,
    /// Static data words in bank Y.
    pub y_static: u32,
    /// Initial image of bank X.
    pub x_image: DataImage,
    /// Initial image of bank Y.
    pub y_image: DataImage,
    /// Symbol table for the linked program.
    pub symbols: Vec<DataSymbol>,
}

impl DataLayout {
    /// Compute the layout of `program` under `alloc`.
    #[must_use]
    pub fn compute(program: &Program, alloc: &BankAllocation) -> DataLayout {
        let mut global_addr = vec![0u32; program.globals.len()];
        let mut x_cursor = 0u32;
        let mut y_cursor = 0u32;
        let mut x_image = DataImage::default();
        let mut y_image = DataImage::default();
        let mut symbols = Vec::new();

        let place = |gi: usize,
                     x_cursor: &mut u32,
                     y_cursor: &mut u32,
                     x_image: &mut DataImage,
                     y_image: &mut DataImage,
                     symbols: &mut Vec<DataSymbol>,
                     global_addr: &mut Vec<u32>| {
            let g = &program.globals[gi];
            let id = GlobalId(gi as u32);
            let dup = alloc.is_duplicated_global(id);
            let home = alloc.bank_of_global(id);
            let addr = if dup {
                // Synchronize the cursors so both copies share an address.
                let a = (*x_cursor).max(*y_cursor);
                *x_cursor = a + g.size;
                *y_cursor = a + g.size;
                a
            } else {
                match home {
                    Bank::X => {
                        let a = *x_cursor;
                        *x_cursor += g.size;
                        a
                    }
                    Bank::Y => {
                        let a = *y_cursor;
                        *y_cursor += g.size;
                        a
                    }
                }
            };
            global_addr[gi] = addr;
            for (k, w) in g.init.iter().enumerate() {
                if dup || home == Bank::X {
                    x_image.poke(addr + k as u32, *w);
                }
                if dup || home == Bank::Y {
                    y_image.poke(addr + k as u32, *w);
                }
            }
            // Zero-extend images over the whole object so symbol reads
            // are always in range.
            let end = (addr + g.size) as usize;
            if (dup || home == Bank::X) && x_image.init.len() < end {
                x_image.init.resize(end, dsp_machine::Word::ZERO);
            }
            if (dup || home == Bank::Y) && y_image.init.len() < end {
                y_image.init.resize(end, dsp_machine::Word::ZERO);
            }
            symbols.push(DataSymbol {
                name: g.name.clone(),
                addr,
                size: g.size,
                home,
                duplicated: dup,
            });
        };

        // Duplicated first, then the rest.
        for gi in 0..program.globals.len() {
            if alloc.is_duplicated_global(GlobalId(gi as u32)) {
                place(
                    gi,
                    &mut x_cursor,
                    &mut y_cursor,
                    &mut x_image,
                    &mut y_image,
                    &mut symbols,
                    &mut global_addr,
                );
            }
        }
        for gi in 0..program.globals.len() {
            if !alloc.is_duplicated_global(GlobalId(gi as u32)) {
                place(
                    gi,
                    &mut x_cursor,
                    &mut y_cursor,
                    &mut x_image,
                    &mut y_image,
                    &mut symbols,
                    &mut global_addr,
                );
            }
        }

        DataLayout {
            global_addr,
            x_static: x_cursor,
            y_static: y_cursor,
            x_image,
            y_image,
            symbols,
        }
    }

    /// Stack base of each bank (stacks sit right after static data; both
    /// stacks start at the same address so the cost model's single `S`
    /// term applies).
    #[must_use]
    pub fn stack_bases(&self) -> (u32, u32) {
        let base = self.x_static.max(self.y_static);
        (base, base)
    }
}

/// Frame layout of one function: everything is addressed relative to
/// the frame base (the stack pointer value at entry).
#[derive(Debug, Clone, Default)]
pub struct FrameLayout {
    /// Offset of each local array within its bank's frame region,
    /// indexed by `LocalId`; the bank comes with it.
    pub local_off: Vec<(Bank, u32)>,
    /// Save-area slots: one `(bank, offset)` per callee-saved register,
    /// alternating banks in save order.
    pub save_off: Vec<(Bank, u32)>,
    /// Spill-slot placements, indexed by spill-slot number.
    pub spill_off: Vec<(Bank, u32)>,
    /// Frame words in bank X.
    pub frame_x: u32,
    /// Frame words in bank Y.
    pub frame_y: u32,
}

impl FrameLayout {
    /// Build a frame for `func`: `save_count` callee-saved registers,
    /// local arrays placed per `alloc`, `spill_slots` spill slots.
    #[must_use]
    pub fn compute(
        program: &Program,
        alloc: &BankAllocation,
        func: FuncId,
        save_count: usize,
        spill_slots: u32,
    ) -> FrameLayout {
        let f = program.func(func);
        let mut x = 0u32;
        let mut y = 0u32;
        let mut save_off = Vec::with_capacity(save_count);
        for i in 0..save_count {
            // Alternating banks (paper §3.1).
            if i % 2 == 0 {
                save_off.push((Bank::X, x));
                x += 1;
            } else {
                save_off.push((Bank::Y, y));
                y += 1;
            }
        }
        let mut local_off = Vec::with_capacity(f.locals.len());
        for (li, l) in f.locals.iter().enumerate() {
            let bank = alloc.bank_of_base(func, dsp_ir::MemBase::Local(dsp_ir::LocalId(li as u32)));
            match bank {
                Bank::X => {
                    local_off.push((Bank::X, x));
                    x += l.size;
                }
                Bank::Y => {
                    local_off.push((Bank::Y, y));
                    y += l.size;
                }
            }
        }
        let mut spill_off = Vec::with_capacity(spill_slots as usize);
        for s in 0..spill_slots {
            if s % 2 == 0 {
                spill_off.push((Bank::X, x));
                x += 1;
            } else {
                spill_off.push((Bank::Y, y));
                y += 1;
            }
        }
        FrameLayout {
            local_off,
            save_off,
            spill_off,
            frame_x: x,
            frame_y: y,
        }
    }

    /// Frame size in the given bank.
    #[must_use]
    pub fn frame_words(&self, bank: Bank) -> u32 {
        match bank {
            Bank::X => self.frame_x,
            Bank::Y => self.frame_y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_bankalloc::{AllocOptions, DuplicationMode};
    use dsp_frontend::compile_str;

    #[test]
    fn partitioned_globals_get_disjoint_banks_and_packed_addresses() {
        let src = "float A[8]; float B[8]; float out;
                   void main() {
                     int i; float acc; acc = 0.0;
                     for (i = 0; i < 8; i++) acc += A[i] * B[i];
                     out = acc;
                   }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        let layout = DataLayout::compute(&p, &alloc);
        let a = p.global_by_name("A").unwrap();
        let b = p.global_by_name("B").unwrap();
        assert_ne!(alloc.bank_of_global(a), alloc.bank_of_global(b));
        // Each bank is packed from 0 upward.
        assert!(layout.global_addr[a.index()] < 16);
        assert!(layout.global_addr[b.index()] < 16);
        assert_eq!(layout.symbols.len(), 3);
    }

    #[test]
    fn duplicated_globals_share_address_in_both_banks() {
        let src = "float s[16]; float R[8]; float q[4];
                   void main() {
                     int n;
                     for (n = 0; n < 8; n++) R[n] += s[n] * s[n + 2];
                     q[0] = R[0];
                   }";
        let p = compile_str(src).unwrap();
        let opts = AllocOptions {
            duplication: DuplicationMode::Partial,
            ..AllocOptions::default()
        };
        let alloc = BankAllocation::compute(&p, &opts, None);
        let layout = DataLayout::compute(&p, &alloc);
        let s = p.global_by_name("s").unwrap();
        assert!(alloc.is_duplicated_global(s));
        // The duplicated array comes first: address 0 in both banks.
        assert_eq!(layout.global_addr[s.index()], 0);
        let sym = layout.symbols.iter().find(|x| x.name == "s").unwrap();
        assert!(sym.duplicated);
        // Static sizes include the copy.
        assert!(layout.x_static >= 16);
        assert!(layout.y_static >= 16);
    }

    #[test]
    fn initializers_land_in_the_right_images() {
        let src = "int A[2] = {7, 8}; int B[2] = {9, 10}; int out;
                   void main() { out = A[0] + B[0]; }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        let layout = DataLayout::compute(&p, &alloc);
        let a = p.global_by_name("A").unwrap();
        let addr = layout.global_addr[a.index()];
        let img = match alloc.bank_of_global(a) {
            Bank::X => &layout.x_image,
            Bank::Y => &layout.y_image,
        };
        assert_eq!(img.init[addr as usize].as_i32(), 7);
        assert_eq!(img.init[addr as usize + 1].as_i32(), 8);
    }

    #[test]
    fn frame_alternates_save_banks() {
        let src = "void main() { int x; x = 1; }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::all_in_x(&p);
        let frame = FrameLayout::compute(&p, &alloc, p.main.unwrap(), 5, 0);
        let banks: Vec<Bank> = frame.save_off.iter().map(|(b, _)| *b).collect();
        assert_eq!(banks, vec![Bank::X, Bank::Y, Bank::X, Bank::Y, Bank::X]);
        assert_eq!(frame.frame_x, 3);
        assert_eq!(frame.frame_y, 2);
    }

    #[test]
    fn locals_follow_their_banks_and_spills_alternate() {
        let src = "void f(int t[]) { t[0] = 1; }
                   void main() { int a[4]; int b[4]; a[0] = 1; b[0] = a[0]; f(a); }";
        let p = compile_str(src).unwrap();
        let alloc = BankAllocation::all_in_x(&p);
        let frame = FrameLayout::compute(&p, &alloc, p.main.unwrap(), 2, 3);
        // Saves: X, Y. Locals (both X under all_in_x): offsets 1, 5.
        assert_eq!(frame.local_off, vec![(Bank::X, 1), (Bank::X, 5)]);
        // Spills alternate starting at X.
        assert_eq!(frame.spill_off[0].0, Bank::X);
        assert_eq!(frame.spill_off[1].0, Bank::Y);
        assert_eq!(frame.spill_off[2].0, Bank::X);
        assert_eq!(frame.frame_words(Bank::X), 1 + 8 + 2);
        assert_eq!(frame.frame_words(Bank::Y), 1 + 1);
    }
}
