#![warn(missing_docs)]
//! Back-end of the dual-bank VLIW DSP compiler: optimizations, register
//! allocation, bank-aware code generation, final operation compaction,
//! and linking.
//!
//! The [`compile_ir`] / [`compile_source`] drivers reproduce the
//! compiler of the paper (Saghir, Chow & Lee, ASPLOS 1996): a front-end
//! produces unpacked machine operations, a **data allocation pass**
//! assigns every variable to one of the two data-memory banks (and
//! optionally duplicates some), and an **operation compaction pass**
//! packs operations into VLIW instructions using those assignments.
//! The [`Strategy`] enum selects the paper's configurations:
//!
//! | Strategy | Paper label | Meaning |
//! |---|---|---|
//! | [`Strategy::Baseline`] | "unoptimized" | all data in bank X, no partitioning |
//! | [`Strategy::CbPartition`] | `CB` | compaction-based partitioning, loop-depth weights |
//! | [`Strategy::ProfileWeighted`] | `Pr` | CB with profile-driven edge weights |
//! | [`Strategy::PartialDup`] | `Dup` | CB plus partial data duplication |
//! | [`Strategy::SelectiveDup`] | (§5 refinement) | duplicate only when profiled savings exceed cost |
//! | [`Strategy::FullDup`] | full duplication | every (global) variable duplicated |
//! | [`Strategy::Ideal`] | `Ideal` | dual-ported memory: either unit reaches either bank |
//!
//! # Example
//!
//! ```
//! use dsp_backend::{compile_source, Strategy};
//!
//! let out = compile_source(
//!     "float A[16]; float B[16]; float out;
//!      void main() {
//!          int i; float acc; acc = 0.0;
//!          for (i = 0; i < 16; i++) acc += A[i] * B[i];
//!          out = acc;
//!      }",
//!     Strategy::CbPartition,
//! )?;
//! assert!(out.program.validate(false).is_ok());
//! # Ok::<(), dsp_backend::CompileError>(())
//! ```

pub mod conv;
pub mod layout;
pub mod link;
pub mod lir;
pub mod lirgen;
pub mod opt;
pub mod regalloc;
pub mod schedule;

pub use dsp_bankalloc::PartitionerKind;
use dsp_bankalloc::{AllocOptions, BankAllocation, DuplicationMode, WeightKind};
use dsp_ir::{ExecStats, FuncId, InterpError, Interpreter, Program};
use dsp_machine::VliwProgram;

/// The compilation configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// All data in one bank; no memory parallelism (the paper's
    /// normalization base).
    Baseline,
    /// Compaction-based data partitioning (paper `CB`).
    CbPartition,
    /// CB partitioning with profile-driven edge weights (paper `Pr`).
    ProfileWeighted,
    /// CB partitioning plus partial data duplication (paper `Dup`).
    PartialDup,
    /// CB partitioning plus *selective* duplication: the paper's §5
    /// refinement, duplicating only candidates whose profiled cycle
    /// savings exceed their bookkeeping cost.
    SelectiveDup,
    /// Duplicate every (global) variable — the costly straw man of
    /// Table 3.
    FullDup,
    /// Dual-ported memory (paper `Ideal`): run the simulator with
    /// [`Strategy::dual_ported`] set.
    Ideal,
}

impl Strategy {
    /// All strategies, in presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Baseline,
        Strategy::CbPartition,
        Strategy::ProfileWeighted,
        Strategy::PartialDup,
        Strategy::SelectiveDup,
        Strategy::FullDup,
        Strategy::Ideal,
    ];

    /// True if the produced program must run on a dual-ported memory
    /// (pass this to the simulator options).
    #[must_use]
    pub fn dual_ported(self) -> bool {
        matches!(self, Strategy::Ideal)
    }

    /// Short label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Baseline => "Base",
            Strategy::CbPartition => "CB",
            Strategy::ProfileWeighted => "Pr",
            Strategy::PartialDup => "Dup",
            Strategy::SelectiveDup => "SelDup",
            Strategy::FullDup => "FullDup",
            Strategy::Ideal => "Ideal",
        }
    }

    /// Parse a strategy name as accepted by every user-facing surface
    /// (CLI flags, serve request bodies): the paper label
    /// (case-insensitive) or its common aliases.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(name: &str) -> Result<Strategy, String> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "base" | "baseline" => Strategy::Baseline,
            "cb" => Strategy::CbPartition,
            "pr" | "profile" => Strategy::ProfileWeighted,
            "dup" | "partial" => Strategy::PartialDup,
            "seldup" | "selective" => Strategy::SelectiveDup,
            "fulldup" | "full" => Strategy::FullDup,
            "ideal" => Strategy::Ideal,
            other => {
                return Err(format!(
                "unknown strategy `{other}` (expected one of: base cb pr dup seldup fulldup ideal)"
            ))
            }
        })
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Everything the driver produces for one (program, strategy) pair.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The linked executable.
    pub program: VliwProgram,
    /// The data allocation that was applied.
    pub alloc: BankAllocation,
    /// The optimized IR the executable was generated from (useful for
    /// inspection and as the profiling subject).
    pub ir: Program,
    /// The strategy used.
    pub strategy: Strategy,
}

/// Compilation errors.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The program has no `main`.
    NoMain,
    /// Front-end failure (only from [`compile_source`]).
    Frontend(dsp_frontend::FrontendError),
    /// Code generation failure.
    LirGen(lirgen::LirGenError),
    /// Scheduling failure (dependence cycle — indicates an internal
    /// bug).
    Schedule(dsp_sched::CompactError),
    /// The profiling run for [`Strategy::ProfileWeighted`] failed.
    Profile(InterpError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoMain => write!(f, "program has no main function"),
            CompileError::Frontend(e) => write!(f, "{e}"),
            CompileError::LirGen(e) => write!(f, "{e}"),
            CompileError::Schedule(e) => write!(f, "{e}"),
            CompileError::Profile(e) => write!(f, "profiling run failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<dsp_frontend::FrontendError> for CompileError {
    fn from(e: dsp_frontend::FrontendError) -> CompileError {
        CompileError::Frontend(e)
    }
}

impl From<lirgen::LirGenError> for CompileError {
    fn from(e: lirgen::LirGenError) -> CompileError {
        CompileError::LirGen(e)
    }
}

impl From<dsp_sched::CompactError> for CompileError {
    fn from(e: dsp_sched::CompactError) -> CompileError {
        CompileError::Schedule(e)
    }
}

/// Compile DSP-C source text.
///
/// # Errors
///
/// Returns a [`CompileError`] for front-end, allocation, code
/// generation, or scheduling failures.
pub fn compile_source(src: &str, strategy: Strategy) -> Result<CompileOutput, CompileError> {
    let program = dsp_frontend::compile_str(src)?;
    compile_ir(&program, strategy)
}

/// Driver-level configuration beyond the [`Strategy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileConfig {
    /// Emit duplicated-data stores atomically (both copies in one
    /// cycle) so interrupt handlers can never observe the copies out of
    /// sync — the hardware-free answer to the paper's
    /// store-lock/store-unlock discussion (§3.2).
    pub interrupt_safe_dup: bool,
    /// Bank-partitioning algorithm, orthogonal to the [`Strategy`] axis
    /// (every partitioning strategy runs it; `Baseline`/`Ideal` skip
    /// partitioning entirely).
    pub partitioner: PartitionerKind,
}

/// Compile an IR program.
///
/// # Errors
///
/// Returns a [`CompileError`] for allocation, code generation, or
/// scheduling failures, or if the program lacks `main`.
pub fn compile_ir(program: &Program, strategy: Strategy) -> Result<CompileOutput, CompileError> {
    compile_ir_with(program, strategy, CompileConfig::default())
}

/// [`compile_ir`] with an explicit [`CompileConfig`].
///
/// # Errors
///
/// Returns a [`CompileError`] for allocation, code generation, or
/// scheduling failures, or if the program lacks `main`.
pub fn compile_ir_with(
    program: &Program,
    strategy: Strategy,
    config: CompileConfig,
) -> Result<CompileOutput, CompileError> {
    compile_ir_timed(program, strategy, config).map(|(out, _)| out)
}

/// Per-stage wall times for one compilation, in pipeline order. The
/// shared-stage fields (`opt`, `profile`) are zero when the caller
/// supplied a pre-optimized IR or cached profile — `dsp-driver` reports
/// those stages once per source instead of once per strategy.
#[derive(Debug, Clone, Default)]
pub struct CompileTimings {
    /// Machine-independent optimization (whole pipeline).
    pub opt: std::time::Duration,
    /// Per-pass breakdown of `opt`, in first-run order.
    pub opt_passes: Vec<opt::PassTime>,
    /// Profiling interpreter run (Pr/SelDup only).
    pub profile: std::time::Duration,
    /// Trial compaction: interference-graph construction.
    pub trial_compaction: std::time::Duration,
    /// X/Y graph partitioning.
    pub partition: std::time::Duration,
    /// Register allocation, summed over functions.
    pub regalloc: std::time::Duration,
    /// LIR lowering (instruction selection, frames), summed over
    /// functions.
    pub lower: std::time::Duration,
    /// Final operation compaction into VLIW instructions.
    pub final_pack: std::time::Duration,
    /// Linking and layout.
    pub link: std::time::Duration,
}

impl CompileTimings {
    /// Total wall time across all recorded stages.
    #[must_use]
    pub fn total(&self) -> std::time::Duration {
        self.opt
            + self.profile
            + self.trial_compaction
            + self.partition
            + self.regalloc
            + self.lower
            + self.final_pack
            + self.link
    }
}

/// Run the profiling interpreter over an (optimized) IR program,
/// producing the execution statistics that drive the `Pr` and `SelDup`
/// allocation strategies.
///
/// # Errors
///
/// Returns [`CompileError::Profile`] if the program traps.
pub fn profile_ir(ir: &Program) -> Result<ExecStats, CompileError> {
    let mut interp = Interpreter::new(ir);
    let (_, stats) = interp.run().map_err(CompileError::Profile)?;
    Ok(stats)
}

/// [`compile_ir_with`] reporting per-stage wall times.
///
/// # Errors
///
/// Returns a [`CompileError`] for allocation, code generation, or
/// scheduling failures, or if the program lacks `main`.
pub fn compile_ir_timed(
    program: &Program,
    strategy: Strategy,
    config: CompileConfig,
) -> Result<(CompileOutput, CompileTimings), CompileError> {
    if program.main.is_none() {
        return Err(CompileError::NoMain);
    }
    let mut ir = program.clone();
    let opt_start = std::time::Instant::now();
    let opt_passes = opt::optimize_timed(&mut ir);
    let mut timings = CompileTimings {
        opt: opt_start.elapsed(),
        opt_passes,
        ..CompileTimings::default()
    };
    let profile = match strategy {
        Strategy::ProfileWeighted | Strategy::SelectiveDup => {
            let profile_start = std::time::Instant::now();
            let stats = profile_ir(&ir)?;
            timings.profile = profile_start.elapsed();
            Some(stats)
        }
        _ => None,
    };
    let (out, back) = compile_optimized(&ir, strategy, config, profile.as_ref())?;
    timings.trial_compaction = back.trial_compaction;
    timings.partition = back.partition;
    timings.regalloc = back.regalloc;
    timings.lower = back.lower;
    timings.final_pack = back.final_pack;
    timings.link = back.link;
    Ok((out, timings))
}

/// Compile an **already optimized** IR program under one strategy.
///
/// This is the back half of [`compile_ir_timed`]: callers that sweep
/// several strategies over one program (notably `dsp-driver`) optimize
/// and profile once, then call this per strategy — the results are
/// bit-identical to running [`compile_ir`] per strategy, because the
/// optimizer and profiler are deterministic and strategy-independent.
///
/// `profile` is required by [`Strategy::ProfileWeighted`] and
/// [`Strategy::SelectiveDup`] and is computed on the fly (and timed)
/// when absent; other strategies ignore it.
///
/// # Errors
///
/// Returns a [`CompileError`] for allocation, code generation, or
/// scheduling failures, or if the program lacks `main`.
pub fn compile_optimized(
    ir: &Program,
    strategy: Strategy,
    config: CompileConfig,
    profile: Option<&ExecStats>,
) -> Result<(CompileOutput, CompileTimings), CompileError> {
    if ir.main.is_none() {
        return Err(CompileError::NoMain);
    }
    let mut timings = CompileTimings::default();
    let local_profile;
    let profile = match strategy {
        Strategy::ProfileWeighted | Strategy::SelectiveDup => match profile {
            Some(stats) => Some(stats),
            None => {
                let profile_start = std::time::Instant::now();
                local_profile = profile_ir(ir)?;
                timings.profile = profile_start.elapsed();
                Some(&local_profile)
            }
        },
        _ => None,
    };

    let alloc_opts = |weights, duplication| AllocOptions {
        weights,
        duplication,
        partitioner: config.partitioner,
    };
    let alloc = match strategy {
        Strategy::Baseline | Strategy::Ideal => BankAllocation::all_in_x(ir),
        Strategy::CbPartition => BankAllocation::compute(
            ir,
            &alloc_opts(WeightKind::LoopDepth, DuplicationMode::None),
            None,
        ),
        Strategy::ProfileWeighted => BankAllocation::compute(
            ir,
            &alloc_opts(WeightKind::Profile, DuplicationMode::None),
            profile,
        ),
        Strategy::PartialDup => BankAllocation::compute(
            ir,
            &alloc_opts(WeightKind::LoopDepth, DuplicationMode::Partial),
            None,
        ),
        Strategy::SelectiveDup => BankAllocation::compute(
            ir,
            &alloc_opts(WeightKind::Profile, DuplicationMode::Selective),
            profile,
        ),
        Strategy::FullDup => BankAllocation::compute(
            ir,
            &alloc_opts(WeightKind::LoopDepth, DuplicationMode::Full),
            None,
        ),
    };
    timings.trial_compaction = alloc.timings.trial_compaction;
    timings.partition = alloc.timings.partition;

    let data_layout = layout::DataLayout::compute(ir, &alloc);
    let ideal = strategy.dual_ported();
    let mut linked_funcs = Vec::with_capacity(ir.funcs.len());
    let lir_opts = lirgen::LirGenOptions {
        interrupt_safe_dup: config.interrupt_safe_dup,
    };
    for fi in 0..ir.funcs.len() {
        let func = FuncId(fi as u32);
        let (lir, lir_times) =
            lirgen::lower_function_timed(ir, func, &alloc, &data_layout, lir_opts)?;
        timings.regalloc += lir_times.regalloc;
        timings.lower += lir_times.lower;
        let pack_start = std::time::Instant::now();
        let mut blocks = Vec::with_capacity(lir.blocks.len());
        for ops in &lir.blocks {
            blocks.push(schedule::schedule_block(ops, ideal)?);
        }
        timings.final_pack += pack_start.elapsed();
        linked_funcs.push(link::LinkFunction {
            name: lir.name.clone(),
            blocks,
            entry: lir.entry,
        });
    }
    let link_start = std::time::Instant::now();
    let program = link::link(ir, linked_funcs, &data_layout);
    timings.link = link_start.elapsed();
    debug_assert_eq!(program.validate(ideal), Ok(()), "linker emitted bad code");
    Ok((
        CompileOutput {
            program,
            alloc,
            ir: ir.clone(),
            strategy,
        },
        timings,
    ))
}
