//! Register conventions of the compiler runtime model.
//!
//! The architecture places no restrictions on register usage (paper §2),
//! so the conventions below are pure software choices:
//!
//! * return values travel in `r0` / `f0`;
//! * scalar arguments in `r1..r6` and `f1..f6`, array base addresses in
//!   `a1..a6`;
//! * `r7, r8, f7, f8` are reserved as spill scratch registers;
//! * `r9..r31` and `f9..f31` are allocatable; array parameters get
//!   dedicated homes `a9..a14`;
//! * `a31`/`a30` are the stack pointers of the bank-X and bank-Y stacks.
//!
//! Every allocatable register a function writes is callee-saved in its
//! prologue, split across the two stacks in alternation — the paper's
//! "assign successive save/restore operations to alternating memory
//! banks" (§3.1).

use dsp_machine::{AReg, FReg, IReg};

/// Number of scalar/array arguments supported per kind.
pub const MAX_ARGS: usize = 6;

/// Integer return register.
pub const RET_I: IReg = IReg(0);
/// Floating-point return register.
pub const RET_F: FReg = FReg(0);

/// Integer argument registers.
#[must_use]
pub fn arg_i(i: usize) -> IReg {
    assert!(i < MAX_ARGS, "too many integer arguments");
    IReg(1 + i as u8)
}

/// Floating-point argument registers.
#[must_use]
pub fn arg_f(i: usize) -> FReg {
    assert!(i < MAX_ARGS, "too many float arguments");
    FReg(1 + i as u8)
}

/// Array-argument (base address) registers.
#[must_use]
pub fn arg_a(i: usize) -> AReg {
    assert!(i < MAX_ARGS, "too many array arguments");
    AReg(1 + i as u8)
}

/// Spill scratch registers (two per file, enough for any single
/// operation's reads).
pub const SCRATCH_I: [IReg; 2] = [IReg(7), IReg(8)];
/// Floating-point spill scratch registers.
pub const SCRATCH_F: [FReg; 2] = [FReg(7), FReg(8)];

/// First allocatable register index in the integer and float files.
pub const FIRST_ALLOC: u8 = 9;
/// Number of allocatable registers per (int/float) file.
pub const NUM_ALLOC: usize = 32 - FIRST_ALLOC as usize;

/// Home address register of array parameter `i`.
#[must_use]
pub fn param_home(i: usize) -> AReg {
    assert!(i < MAX_ARGS, "too many array parameters");
    AReg(9 + i as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions_do_not_collide() {
        // Arg regs, scratch and allocatable ranges are disjoint.
        for i in 0..MAX_ARGS {
            assert!(arg_i(i).0 < SCRATCH_I[0].0);
            assert!(arg_f(i).0 < SCRATCH_F[0].0);
            assert!(param_home(i).0 >= 9);
            assert!(param_home(i).0 < AReg::SP_Y.0);
        }
        assert!(SCRATCH_I[1].0 < FIRST_ALLOC);
        assert_eq!(NUM_ALLOC, 23);
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn arg_limit_enforced() {
        let _ = arg_i(MAX_ARGS);
    }
}
