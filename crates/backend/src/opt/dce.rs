//! Dead-code elimination and unreachable-block removal.

use std::collections::HashSet;

use dsp_ir::ops::Op;
use dsp_ir::{BlockId, Cfg, Function, VReg};

/// Remove pure operations whose results are never used, iterating to a
/// fixed point.
pub fn run(f: &mut Function) {
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for block in &f.blocks {
            for op in &block.ops {
                used.extend(op.uses());
            }
        }
        let mut removed = false;
        for block in &mut f.blocks {
            block.ops.retain(|op| {
                let dead = match op.def() {
                    Some(d) => !used.contains(&d) && is_pure(op),
                    None => false,
                };
                if dead {
                    removed = true;
                }
                !dead
            });
        }
        if !removed {
            break;
        }
    }
}

/// True if removing the operation (given its result is unused) cannot
/// change observable behaviour. Loads are pure here because DSP-C has
/// no volatile memory and the simulator traps out-of-bounds accesses
/// only for addresses the program actually issues.
fn is_pure(op: &Op) -> bool {
    !matches!(
        op,
        Op::Store { .. } | Op::Call { .. } | Op::Br { .. } | Op::Jmp(_) | Op::Ret(_)
    )
}

/// Faint-variable dead-definition elimination.
///
/// Standard liveness keeps a loop's `v = v + 1` alive forever: the use
/// of `v` feeds its own definition around the back edge. Faint-variable
/// analysis breaks the cycle — a *pure* operation's uses only become
/// live when its own definition is live. Side-effecting operations
/// (stores, calls, branches) are the roots. Catches derived
/// induction-variable updates whose value is only consumed before the
/// loop, which use-count DCE cannot see.
pub fn run_liveness(f: &mut Function) {
    let n = f.blocks.len();
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| {
            b.terminator()
                .map(|t| t.successors().iter().map(|s| s.index()).collect())
                .unwrap_or_default()
        })
        .collect();
    // Backward transfer over a block given live-out.
    let transfer = |block: &dsp_ir::Block, live_out: &HashSet<VReg>| -> HashSet<VReg> {
        let mut live = live_out.clone();
        for op in block.ops.iter().rev() {
            match op.def() {
                Some(d) if is_pure(op) => {
                    if live.remove(&d) {
                        live.extend(op.uses());
                    }
                }
                Some(d) => {
                    live.remove(&d);
                    live.extend(op.uses());
                }
                None => live.extend(op.uses()),
            }
        }
        live
    };
    // Fixpoint of live-in sets.
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out: HashSet<VReg> = HashSet::new();
            for &s in &succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let inn = transfer(&f.blocks[b], &out);
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    // Sweep.
    for (b, block_succs) in succs.iter().enumerate() {
        let mut live: HashSet<VReg> = HashSet::new();
        for &s in block_succs {
            live.extend(live_in[s].iter().copied());
        }
        let block = &mut f.blocks[b];
        let mut keep: Vec<bool> = vec![true; block.ops.len()];
        for (oi, op) in block.ops.iter().enumerate().rev() {
            match op.def() {
                Some(d) if is_pure(op) => {
                    if live.remove(&d) {
                        live.extend(op.uses());
                    } else {
                        keep[oi] = false;
                    }
                }
                Some(d) => {
                    live.remove(&d);
                    live.extend(op.uses());
                }
                None => live.extend(op.uses()),
            }
        }
        let mut it = keep.iter();
        block.ops.retain(|_| *it.next().expect("keep aligns"));
    }
}

/// Delete blocks unreachable from the entry and renumber the rest.
pub fn remove_unreachable(f: &mut Function) {
    let cfg = Cfg::build(f);
    let reachable: Vec<bool> = (0..f.blocks.len())
        .map(|i| cfg.is_reachable(BlockId(i as u32)))
        .collect();
    if reachable.iter().all(|&r| r) {
        return;
    }
    // Build the renumbering map.
    let mut remap: Vec<Option<BlockId>> = Vec::with_capacity(f.blocks.len());
    let mut next = 0u32;
    for &r in &reachable {
        if r {
            remap.push(Some(BlockId(next)));
            next += 1;
        } else {
            remap.push(None);
        }
    }
    let map = |b: BlockId| remap[b.index()].expect("reachable target");
    let mut new_blocks = Vec::with_capacity(next as usize);
    for (i, block) in f.blocks.drain(..).enumerate() {
        if reachable[i] {
            new_blocks.push(block);
        }
    }
    for block in &mut new_blocks {
        if let Some(op) = block.ops.last_mut() {
            match op {
                Op::Br {
                    then_bb, else_bb, ..
                } => {
                    *then_bb = map(*then_bb);
                    *else_bb = map(*else_bb);
                }
                Op::Jmp(b) => *b = map(*b),
                _ => {}
            }
        }
    }
    f.entry = map(f.entry);
    f.blocks = new_blocks;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::ops::IOperand;
    use dsp_ir::Type;

    #[test]
    fn removes_dead_chain() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let e = f.entry;
        // a = 1; b = a + a; (both dead) ; ret
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::IBin {
            kind: dsp_machine::IntBinKind::Add,
            dst: b,
            lhs: a,
            rhs: IOperand::Reg(a),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(f.blocks[0].ops.len(), 1);
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let e = f.entry;
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::Store {
            src: a,
            addr: dsp_ir::MemRef::direct(dsp_ir::MemBase::Global(dsp_ir::GlobalId(0)), 0),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(f.blocks[0].ops.len(), 3);
    }

    #[test]
    fn unreachable_blocks_removed_and_renumbered() {
        let mut f = Function::new("t");
        let dead = f.new_block();
        let live = f.new_block();
        let e = f.entry;
        f.block_mut(e).push(Op::Jmp(live));
        f.block_mut(dead).push(Op::Ret(None));
        f.block_mut(live).push(Op::Ret(None));
        remove_unreachable(&mut f);
        assert_eq!(f.blocks.len(), 2);
        // live was bb2; now bb1, and the jump must follow.
        assert_eq!(f.blocks[0].ops[0], Op::Jmp(BlockId(1)));
    }

    #[test]
    fn dead_load_removed() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let e = f.entry;
        f.block_mut(e).push(Op::Load {
            dst: a,
            addr: dsp_ir::MemRef::direct(dsp_ir::MemBase::Global(dsp_ir::GlobalId(0)), 0),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(f.blocks[0].ops.len(), 1, "unused load should die");
    }
}
