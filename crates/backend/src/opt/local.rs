//! Per-block constant folding, constant/copy propagation, and algebraic
//! simplification.

use std::collections::HashMap;

use dsp_ir::interp::{eval_fbin, eval_fcmp, eval_ibin, eval_icmp};
use dsp_ir::ops::{FOperand, IOperand, Op};
use dsp_ir::{Function, VReg};
use dsp_machine::IntBinKind;

/// Facts known about a virtual register at a program point.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fact {
    ConstI(i32),
    ConstF(f32),
    Copy(VReg),
}

/// Run local optimization on every block of `f`.
pub fn run(f: &mut Function) {
    let vreg_types = f.vregs.clone();
    for block in &mut f.blocks {
        run_block(&mut block.ops, &vreg_types);
    }
}

/// A canonical key for a pure computation, for local CSE. Commutative
/// operations order their register operands so `a+b` and `b+a` unify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    IBin(IntBinKind, VReg, IKeyOperand),
    ICmp(dsp_machine::CmpKind, VReg, IKeyOperand),
    INeg(VReg),
    INot(VReg),
    FBin(dsp_machine::FpBinKind, VReg, VReg),
    FCmp(dsp_machine::CmpKind, VReg, VReg),
    FNeg(VReg),
    ItoF(VReg),
    FtoI(VReg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum IKeyOperand {
    Reg(VReg),
    Imm(i32),
}

impl ExprKey {
    fn of(op: &Op) -> Option<ExprKey> {
        let ik = |o: &IOperand| match o {
            IOperand::Reg(r) => IKeyOperand::Reg(*r),
            IOperand::Imm(c) => IKeyOperand::Imm(*c),
        };
        Some(match op {
            Op::IBin { kind, lhs, rhs, .. } => {
                // Canonicalize commutative forms.
                let commutative = matches!(
                    kind,
                    IntBinKind::Add
                        | IntBinKind::Mul
                        | IntBinKind::And
                        | IntBinKind::Or
                        | IntBinKind::Xor
                );
                match (commutative, rhs) {
                    (true, IOperand::Reg(r)) if r.0 < lhs.0 => {
                        ExprKey::IBin(*kind, *r, IKeyOperand::Reg(*lhs))
                    }
                    _ => ExprKey::IBin(*kind, *lhs, ik(rhs)),
                }
            }
            Op::ICmp { kind, lhs, rhs, .. } => ExprKey::ICmp(*kind, *lhs, ik(rhs)),
            Op::INeg { src, .. } => ExprKey::INeg(*src),
            Op::INot { src, .. } => ExprKey::INot(*src),
            Op::FBin { kind, lhs, rhs, .. } => {
                let commutative = matches!(
                    kind,
                    dsp_machine::FpBinKind::Add | dsp_machine::FpBinKind::Mul
                );
                if commutative && rhs.0 < lhs.0 {
                    ExprKey::FBin(*kind, *rhs, *lhs)
                } else {
                    ExprKey::FBin(*kind, *lhs, *rhs)
                }
            }
            Op::FCmp { kind, lhs, rhs, .. } => ExprKey::FCmp(*kind, *lhs, *rhs),
            Op::FNeg { src, .. } => ExprKey::FNeg(*src),
            Op::ItoF { src, .. } => ExprKey::ItoF(*src),
            Op::FtoI { src, .. } => ExprKey::FtoI(*src),
            _ => return None,
        })
    }

    fn mentions(&self, v: VReg) -> bool {
        match *self {
            ExprKey::IBin(_, a, b) | ExprKey::ICmp(_, a, b) => a == v || b == IKeyOperand::Reg(v),
            ExprKey::FBin(_, a, b) | ExprKey::FCmp(_, a, b) => a == v || b == v,
            ExprKey::INeg(a)
            | ExprKey::INot(a)
            | ExprKey::FNeg(a)
            | ExprKey::ItoF(a)
            | ExprKey::FtoI(a) => a == v,
        }
    }
}

fn run_block(ops: &mut Vec<Op>, vreg_types: &[dsp_ir::Type]) {
    let mut facts: HashMap<VReg, Fact> = HashMap::new();
    // Available pure computations for local CSE.
    let mut exprs: HashMap<ExprKey, VReg> = HashMap::new();
    // Available memory values: exact reference -> register known to hold
    // its current contents (redundant-load elimination and
    // store-to-load forwarding). An entry dies when its reference's
    // index register or its value register is redefined, when an
    // overlapping store lands, or at a call.
    let mut avail: Vec<(dsp_ir::MemRef, VReg)> = Vec::new();
    let resolve = |facts: &HashMap<VReg, Fact>, mut v: VReg| -> VReg {
        // Chase copy chains (bounded: facts form a DAG by construction).
        let mut hops = 0;
        while let Some(Fact::Copy(s)) = facts.get(&v) {
            v = *s;
            hops += 1;
            if hops > ops_chain_limit() {
                break;
            }
        }
        v
    };
    for op in ops.iter_mut() {
        // 1. Rewrite register uses through copies.
        op.map_uses(|v| resolve(&facts, v));
        // 2. Substitute known constants into immediate-capable operands.
        substitute_consts(op, &facts);
        // 3. Fold and simplify.
        fold(op, &facts);
        // 3a'. Common-subexpression elimination: replace a recomputed
        //      pure expression with a copy of the previous result.
        if let (Some(key), Some(d)) = (ExprKey::of(op), op.def()) {
            if let Some(&prev) = exprs.get(&key) {
                if prev != d {
                    *op = match vreg_types[d.index()] {
                        dsp_ir::Type::Int => Op::MovI {
                            dst: d,
                            src: IOperand::Reg(prev),
                        },
                        dsp_ir::Type::Float => Op::MovF {
                            dst: d,
                            src: FOperand::Reg(prev),
                        },
                    };
                }
            }
        }
        // 3b. Memory value numbering: look up loads against the
        //     available values *before* this op's own definition
        //     invalidates anything.
        if let Op::Load { dst, addr } = op {
            if let Some((_, v)) = avail.iter().find(|(r, _)| r == addr) {
                // Redundant load: turn into a register copy.
                *op = match vreg_types[dst.index()] {
                    dsp_ir::Type::Int => Op::MovI {
                        dst: *dst,
                        src: IOperand::Reg(*v),
                    },
                    dsp_ir::Type::Float => Op::MovF {
                        dst: *dst,
                        src: FOperand::Reg(*v),
                    },
                };
            }
        }
        // Invalidate entries whose value or index register this op
        // redefines, entries an overlapping store clobbers, and
        // everything at a call.
        if let Some(d) = op.def() {
            avail.retain(|(r, v)| *v != d && r.index != Some(d));
        }
        match op {
            Op::Load { dst, addr }
                if addr.index != Some(*dst) && !avail.iter().any(|(r, _)| r == addr) =>
            {
                avail.push((*addr, *dst));
            }
            Op::Store { src, addr } => {
                avail.retain(|(r, _)| !dsp_ir::depgraph::refs_may_overlap(r, addr));
                avail.push((*addr, *src));
            }
            Op::Call { .. } => avail.clear(),
            _ => {}
        }
        // 4. Update facts: a def kills everything about dst and every
        //    copy pointing at dst, then records the new fact.
        if let Some(d) = op.def() {
            exprs.retain(|k, v| *v != d && !k.mentions(d));
            // Self-referential updates (`d = d + 1`) must not be
            // recorded: the key's operand would denote the *new* value.
            if let Some(key) = ExprKey::of(op) {
                if !op.uses().contains(&d) {
                    exprs.insert(key, d);
                }
            }
            facts.remove(&d);
            facts.retain(|_, f| !matches!(f, Fact::Copy(s) if *s == d));
            match op {
                Op::MovI {
                    src: IOperand::Imm(c),
                    ..
                } => {
                    facts.insert(d, Fact::ConstI(*c));
                }
                Op::MovF {
                    src: FOperand::Imm(c),
                    ..
                } => {
                    facts.insert(d, Fact::ConstF(*c));
                }
                Op::MovI {
                    src: IOperand::Reg(s),
                    ..
                }
                | Op::MovF {
                    src: FOperand::Reg(s),
                    ..
                } if *s != d => {
                    facts.insert(d, Fact::Copy(*s));
                }
                _ => {}
            }
        }
    }
    let _ = ops;
}

fn ops_chain_limit() -> usize {
    64
}

fn substitute_consts(op: &mut Op, facts: &HashMap<VReg, Fact>) {
    let const_i = |v: VReg| -> Option<i32> {
        match facts.get(&v) {
            Some(Fact::ConstI(c)) => Some(*c),
            _ => None,
        }
    };
    match op {
        Op::MovI { src, .. } => {
            if let IOperand::Reg(r) = src {
                if let Some(c) = const_i(*r) {
                    *src = IOperand::Imm(c);
                }
            }
        }
        Op::MovF { src, .. } => {
            if let FOperand::Reg(r) = src {
                if let Some(Fact::ConstF(c)) = facts.get(r) {
                    *src = FOperand::Imm(*c);
                }
            }
        }
        Op::IBin { rhs, .. } | Op::ICmp { rhs, .. } => {
            if let IOperand::Reg(r) = rhs {
                if let Some(c) = const_i(*r) {
                    *rhs = IOperand::Imm(c);
                }
            }
        }
        _ => {}
    }
}

fn fold(op: &mut Op, facts: &HashMap<VReg, Fact>) {
    let const_i = |v: VReg| -> Option<i32> {
        match facts.get(&v) {
            Some(Fact::ConstI(c)) => Some(*c),
            _ => None,
        }
    };
    let const_f = |v: VReg| -> Option<f32> {
        match facts.get(&v) {
            Some(Fact::ConstF(c)) => Some(*c),
            _ => None,
        }
    };
    let new = match op {
        Op::IBin {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            let rc = match rhs {
                IOperand::Imm(c) => Some(*c),
                IOperand::Reg(r) => const_i(*r),
            };
            match (const_i(*lhs), rc) {
                (Some(a), Some(b)) => Some(Op::MovI {
                    dst: *dst,
                    src: IOperand::Imm(eval_ibin(*kind, a, b)),
                }),
                (None, Some(b)) => simplify_ibin(*kind, *dst, *lhs, b),
                _ => None,
            }
        }
        Op::ICmp {
            kind,
            dst,
            lhs,
            rhs,
        } => {
            let rc = match rhs {
                IOperand::Imm(c) => Some(*c),
                IOperand::Reg(r) => const_i(*r),
            };
            match (const_i(*lhs), rc) {
                (Some(a), Some(b)) => Some(Op::MovI {
                    dst: *dst,
                    src: IOperand::Imm(i32::from(eval_icmp(*kind, a, b))),
                }),
                _ => None,
            }
        }
        Op::FBin {
            kind,
            dst,
            lhs,
            rhs,
        } => match (const_f(*lhs), const_f(*rhs)) {
            (Some(a), Some(b)) => Some(Op::MovF {
                dst: *dst,
                src: FOperand::Imm(eval_fbin(*kind, a, b)),
            }),
            // x * 1.0 and x + 0.0 are exact identities in IEEE-754 for
            // our purposes only when x is not a NaN/-0 edge case; leave
            // float algebra alone.
            _ => None,
        },
        Op::FCmp {
            kind,
            dst,
            lhs,
            rhs,
        } => match (const_f(*lhs), const_f(*rhs)) {
            (Some(a), Some(b)) => Some(Op::MovI {
                dst: *dst,
                src: IOperand::Imm(i32::from(eval_fcmp(*kind, a, b))),
            }),
            _ => None,
        },
        Op::INeg { dst, src } => const_i(*src).map(|c| Op::MovI {
            dst: *dst,
            src: IOperand::Imm(c.wrapping_neg()),
        }),
        Op::INot { dst, src } => const_i(*src).map(|c| Op::MovI {
            dst: *dst,
            src: IOperand::Imm(!c),
        }),
        Op::FNeg { dst, src } => const_f(*src).map(|c| Op::MovF {
            dst: *dst,
            src: FOperand::Imm(-c),
        }),
        Op::ItoF { dst, src } => const_i(*src).map(|c| Op::MovF {
            dst: *dst,
            src: FOperand::Imm(c as f32),
        }),
        Op::FtoI { dst, src } => const_f(*src).map(|c| Op::MovI {
            dst: *dst,
            src: IOperand::Imm(c as i32),
        }),
        _ => None,
    };
    if let Some(new) = new {
        *op = new;
    }
}

/// Algebraic identities on integer ops with a constant right operand.
fn simplify_ibin(kind: IntBinKind, dst: VReg, lhs: VReg, b: i32) -> Option<Op> {
    match (kind, b) {
        (IntBinKind::Add | IntBinKind::Sub | IntBinKind::Or | IntBinKind::Xor, 0)
        | (IntBinKind::Mul | IntBinKind::Div, 1)
        | (IntBinKind::Shl | IntBinKind::Shr, 0) => Some(Op::MovI {
            dst,
            src: IOperand::Reg(lhs),
        }),
        (IntBinKind::Mul | IntBinKind::And, 0) => Some(Op::MovI {
            dst,
            src: IOperand::Imm(0),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::Type;

    fn count_kind(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| pred(o))
            .count()
    }

    #[test]
    fn folds_constant_chain() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let c = f.new_vreg(Type::Int);
        let e = f.entry;
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(6),
        });
        f.block_mut(e).push(Op::MovI {
            dst: b,
            src: IOperand::Imm(7),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Mul,
            dst: c,
            lhs: a,
            rhs: IOperand::Reg(b),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::MovI {
                dst: c,
                src: IOperand::Imm(42)
            }
        );
    }

    #[test]
    fn copy_propagates_through_moves() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let c = f.new_vreg(Type::Int);
        let e = f.entry;
        // b = a; c = b + b  ==> c = a + a
        f.block_mut(e).push(Op::MovI {
            dst: b,
            src: IOperand::Reg(a),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: c,
            lhs: b,
            rhs: IOperand::Reg(b),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[1],
            Op::IBin {
                kind: IntBinKind::Add,
                dst: c,
                lhs: a,
                rhs: IOperand::Reg(a)
            }
        );
    }

    #[test]
    fn kill_on_redefinition() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let e = f.entry;
        // a = 1; a = b; (a no longer 1) ; b2 = a + 0 -> must use a, not 1.
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Reg(b),
        });
        let c = f.new_vreg(Type::Int);
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: c,
            lhs: a,
            rhs: IOperand::Imm(0),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        // a+0 simplifies to a move of b (copy-propagated).
        assert_eq!(
            f.blocks[0].ops[2],
            Op::MovI {
                dst: c,
                src: IOperand::Reg(b)
            }
        );
    }

    #[test]
    fn mul_by_zero_and_one() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let c = f.new_vreg(Type::Int);
        let e = f.entry;
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Mul,
            dst: b,
            lhs: a,
            rhs: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Mul,
            dst: c,
            lhs: a,
            rhs: IOperand::Imm(0),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[0],
            Op::MovI {
                dst: b,
                src: IOperand::Reg(a)
            }
        );
        assert_eq!(
            f.blocks[0].ops[1],
            Op::MovI {
                dst: c,
                src: IOperand::Imm(0)
            }
        );
        let _ = count_kind(&f, |o| matches!(o, Op::IBin { .. }));
    }

    #[test]
    fn common_subexpression_eliminated() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let x = f.new_vreg(Type::Int);
        let y = f.new_vreg(Type::Int);
        let e = f.entry;
        // x = a + b; y = b + a;  (commutative: y becomes a copy of x)
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: x,
            lhs: a,
            rhs: IOperand::Reg(b),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: y,
            lhs: b,
            rhs: IOperand::Reg(a),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[1],
            Op::MovI {
                dst: y,
                src: IOperand::Reg(x)
            }
        );
    }

    #[test]
    fn cse_killed_by_operand_redefinition() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let x = f.new_vreg(Type::Int);
        let y = f.new_vreg(Type::Int);
        let e = f.entry;
        // x = a * 3; a = 9; y = a * 3  (must NOT reuse x)
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Mul,
            dst: x,
            lhs: a,
            rhs: IOperand::Imm(3),
        });
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(9),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Mul,
            dst: y,
            lhs: a,
            rhs: IOperand::Imm(3),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        // Constant propagation turns the second into 27; either way it
        // must not be a copy of x.
        assert_ne!(
            f.blocks[0].ops[2],
            Op::MovI {
                dst: y,
                src: IOperand::Reg(x)
            }
        );
    }

    #[test]
    fn self_update_not_recorded_as_available() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let e = f.entry;
        // a = a + 1; b = a + 1;  (b must NOT become a copy of a)
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: a,
            lhs: a,
            rhs: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::IBin {
            kind: IntBinKind::Add,
            dst: b,
            lhs: a,
            rhs: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert!(
            matches!(f.blocks[0].ops[1], Op::IBin { .. }),
            "{:?}",
            f.blocks[0].ops[1]
        );
    }

    #[test]
    fn redundant_load_forwarded() {
        use dsp_ir::{GlobalId, MemBase, MemRef};
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let e = f.entry;
        let addr = MemRef::direct(MemBase::Global(GlobalId(0)), 2);
        f.block_mut(e).push(Op::Load { dst: a, addr });
        f.block_mut(e).push(Op::Load { dst: b, addr });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[1],
            Op::MovI {
                dst: b,
                src: IOperand::Reg(a)
            }
        );
    }

    #[test]
    fn store_forwards_to_following_load() {
        use dsp_ir::{GlobalId, MemBase, MemRef};
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Int);
        let b = f.new_vreg(Type::Int);
        let e = f.entry;
        let addr = MemRef::direct(MemBase::Global(GlobalId(0)), 0);
        f.block_mut(e).push(Op::MovI {
            dst: a,
            src: IOperand::Imm(5),
        });
        f.block_mut(e).push(Op::Store { src: a, addr });
        f.block_mut(e).push(Op::Load { dst: b, addr });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::MovI {
                dst: b,
                src: IOperand::Reg(a)
            }
        );
    }

    #[test]
    fn float_constants_fold() {
        let mut f = Function::new("t");
        let a = f.new_vreg(Type::Float);
        let b = f.new_vreg(Type::Float);
        let c = f.new_vreg(Type::Float);
        let e = f.entry;
        f.block_mut(e).push(Op::MovF {
            dst: a,
            src: FOperand::Imm(1.5),
        });
        f.block_mut(e).push(Op::MovF {
            dst: b,
            src: FOperand::Imm(2.0),
        });
        f.block_mut(e).push(Op::FBin {
            kind: dsp_machine::FpBinKind::Mul,
            dst: c,
            lhs: a,
            rhs: b,
        });
        f.block_mut(e).push(Op::Ret(None));
        run(&mut f);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::MovF {
                dst: c,
                src: FOperand::Imm(3.0)
            }
        );
    }
}
