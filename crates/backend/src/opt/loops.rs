//! Loop-shape utilities: preheader insertion and jump threading.

use dsp_ir::ops::Op;
use dsp_ir::{BlockId, Cfg, Function, LoopInfo};

/// Ensure every natural loop has a *preheader*: a block that is the
/// unique non-back-edge predecessor of the header and ends in an
/// unconditional jump to it. LICM and induction-variable rewriting
/// place loop-entry code there.
///
/// Returns the preheader of each loop, aligned with
/// [`LoopInfo::loops`] as recomputed on the updated function.
pub fn insert_preheaders(f: &mut Function) -> Vec<BlockId> {
    let info = LoopInfo::compute(f);
    let mut preheaders = Vec::new();
    for looop in &info.loops {
        let cfg = Cfg::build(f);
        let header = looop.header;
        let entry_preds: Vec<BlockId> = cfg.preds[header.index()]
            .iter()
            .copied()
            .filter(|p| !looop.contains(*p))
            .collect();
        // An existing preheader: single entry pred, outside the loop,
        // ending in an unconditional jump straight to the header.
        if entry_preds.len() == 1 {
            let p = entry_preds[0];
            if matches!(f.block(p).terminator(), Some(Op::Jmp(t)) if *t == header) {
                preheaders.push(p);
                continue;
            }
        }
        let pre = f.new_block();
        f.block_mut(pre).push(Op::Jmp(header));
        for p in entry_preds {
            retarget(f, p, header, pre);
        }
        // Entry fall-in: if the function entry *is* the header, the new
        // preheader becomes the entry.
        if f.entry == header {
            f.entry = pre;
        }
        preheaders.push(pre);
    }
    preheaders
}

/// Retarget every `from -> old` edge of `from`'s terminator to `new`.
fn retarget(f: &mut Function, from: BlockId, old: BlockId, new: BlockId) {
    if let Some(op) = f.block_mut(from).ops.last_mut() {
        match op {
            Op::Br {
                then_bb, else_bb, ..
            } => {
                if *then_bb == old {
                    *then_bb = new;
                }
                if *else_bb == old {
                    *else_bb = new;
                }
            }
            Op::Jmp(b) if *b == old => {
                *b = new;
            }
            _ => {}
        }
    }
}

/// Straight-line block merging: when `B` ends in `jmp C` and `C` has no
/// other predecessor (and is not the entry), splice `C`'s operations
/// into `B`. Keeps loop iterations in one basic block — essential for
/// the local compaction pass, whose scheduling scope is the block.
pub fn merge_blocks(f: &mut Function) {
    loop {
        let cfg = Cfg::build(f);
        let mut merged = false;
        for b in 0..f.blocks.len() {
            let bid = BlockId(b as u32);
            if !cfg.is_reachable(bid) {
                continue;
            }
            let Some(Op::Jmp(c)) = f.block(bid).terminator().cloned() else {
                continue;
            };
            if c == bid || c == f.entry || cfg.preds[c.index()].len() != 1 {
                continue;
            }
            // Splice: drop B's jump, append C's ops; C becomes
            // unreachable and is swept later.
            let mut tail = std::mem::take(&mut f.block_mut(c).ops);
            let b_ops = &mut f.block_mut(bid).ops;
            b_ops.pop();
            b_ops.append(&mut tail);
            // C must still terminate for the validator; it is
            // unreachable, so a self-loop jump is fine until removal.
            f.block_mut(c).push(Op::Jmp(c));
            merged = true;
            break;
        }
        if !merged {
            break;
        }
    }
    super::dce::remove_unreachable(f);
}

/// Jump threading: redirect edges that land on a block containing only
/// `jmp target` straight to `target`, shrinking the instruction count.
pub fn thread_jumps(f: &mut Function) {
    // Resolve chains of trivial jumps (with a bound against cycles).
    let n = f.blocks.len();
    let trivial_target = |f: &Function, b: BlockId| -> Option<BlockId> {
        let block = f.block(b);
        match block.ops.as_slice() {
            [Op::Jmp(t)] if *t != b => Some(*t),
            _ => None,
        }
    };
    let resolve = |f: &Function, mut b: BlockId| -> BlockId {
        for _ in 0..n {
            match trivial_target(f, b) {
                Some(t) => b = t,
                None => break,
            }
        }
        b
    };
    for i in 0..n {
        let Some(op) = f.blocks[i].ops.last() else {
            continue;
        };
        let new_op = match op {
            Op::Br {
                cond,
                then_bb,
                else_bb,
            } => Op::Br {
                cond: *cond,
                then_bb: resolve(f, *then_bb),
                else_bb: resolve(f, *else_bb),
            },
            Op::Jmp(t) => Op::Jmp(resolve(f, *t)),
            _ => continue,
        };
        *f.blocks[i].ops.last_mut().expect("checked above") = new_op;
    }
    if let Some(t) = trivial_target(f, f.entry) {
        let _ = t;
        f.entry = resolve(f, f.entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::ops::IOperand;
    use dsp_ir::Type;

    fn loop_fn() -> Function {
        // entry -> header; header -> (body | exit); body -> header.
        let mut f = Function::new("t");
        let cond = f.new_vreg(Type::Int);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let e = f.entry;
        f.block_mut(e).push(Op::MovI {
            dst: cond,
            src: IOperand::Imm(0),
        });
        f.block_mut(e).push(Op::Jmp(header));
        f.block_mut(header).push(Op::Br {
            cond,
            then_bb: body,
            else_bb: exit,
        });
        f.block_mut(body).push(Op::Jmp(header));
        f.block_mut(exit).push(Op::Ret(None));
        f
    }

    #[test]
    fn entry_jump_block_reused_as_preheader() {
        let mut f = loop_fn();
        let pre = insert_preheaders(&mut f);
        // The entry block already ends in `jmp header`: reused.
        assert_eq!(pre, vec![f.entry]);
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn preheader_created_when_entry_branches() {
        // entry branches straight to the header: a preheader must be
        // synthesized on the entry edge.
        let mut f = Function::new("t");
        let cond = f.new_vreg(Type::Int);
        let header = f.new_block();
        let exit = f.new_block();
        let e = f.entry;
        f.block_mut(e).push(Op::MovI {
            dst: cond,
            src: IOperand::Imm(1),
        });
        f.block_mut(e).push(Op::Br {
            cond,
            then_bb: header,
            else_bb: exit,
        });
        f.block_mut(header).push(Op::Br {
            cond,
            then_bb: header, // self-loop
            else_bb: exit,
        });
        f.block_mut(exit).push(Op::Ret(None));
        let pre = insert_preheaders(&mut f);
        assert_eq!(pre.len(), 1);
        let p = pre[0];
        assert_eq!(f.block(p).ops, vec![Op::Jmp(header)]);
        // The entry's branch edge now goes through the preheader, and
        // the back edge stays on the header.
        match f.block(f.entry).terminator() {
            Some(Op::Br { then_bb, .. }) => assert_eq!(*then_bb, p),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idempotent() {
        let mut f = loop_fn();
        insert_preheaders(&mut f);
        let before = f.blocks.len();
        insert_preheaders(&mut f);
        assert_eq!(f.blocks.len(), before);
    }

    #[test]
    fn jump_threading_skips_trivial_blocks() {
        let mut f = Function::new("t");
        let mid = f.new_block();
        let end = f.new_block();
        let e = f.entry;
        f.block_mut(e).push(Op::Jmp(mid));
        f.block_mut(mid).push(Op::Jmp(end));
        f.block_mut(end).push(Op::Ret(None));
        thread_jumps(&mut f);
        assert_eq!(f.blocks[0].ops[0], Op::Jmp(end));
    }
}
