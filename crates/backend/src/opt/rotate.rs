//! Loop rotation (bottom-testing loops).
//!
//! A front-end `for`/`while` loop tests its condition in a dedicated
//! header block, costing a compare, a conditional branch, *and* the
//! latch's jump back — three program-control cycles per iteration on a
//! machine with a single PCU. DSPs avoid this with zero-overhead
//! hardware loops; an optimizing compiler gets most of that back by
//! *rotating* the loop so the condition is re-evaluated at the bottom:
//!
//! ```text
//! header:  cmp; br body, exit        header:  cmp; br body, exit   (entry only)
//! body:    ...; jmp header      =>   body:    ...; cmp'; br body, exit
//! ```
//!
//! The latch's unconditional jump and the header re-execution disappear
//! from the steady state, and the compare packs into the body's slack
//! slots.

use std::collections::HashMap;

use dsp_ir::ops::Op;
use dsp_ir::{Cfg, Function, LoopInfo, VReg};

/// Rotate every eligible natural loop of `f`, then retime the exit
/// tests.
pub fn run(f: &mut Function) {
    // Recompute loop structure after each rotation (block shapes
    // change); bounded by the number of loops.
    for _ in 0..f.blocks.len() {
        if !rotate_one(f) {
            break;
        }
    }
    retime_exit_tests(f);
}

/// Exit-test retiming: in a block of the form
///
/// ```text
/// ...
/// v = v + c          (the induction step)
/// ...
/// t = icmp.lt v, K
/// br t, ...
/// ```
///
/// the compare waits a full cycle for the incremented `v`, putting an
/// increment→compare→branch chain of three cycles on every iteration.
/// Comparing the *old* value against an adjusted bound (`v < K - c`)
/// issues the compare in parallel with the increment — the software
/// analogue of a DSP's decrement-and-branch.
fn retime_exit_tests(f: &mut Function) {
    use dsp_ir::ops::IOperand;
    use dsp_machine::{CmpKind, IntBinKind};
    for block in &mut f.blocks {
        let ops = &mut block.ops;
        let n = ops.len();
        if n < 3 {
            continue;
        }
        let Some(Op::Br { cond, .. }) = ops.last() else {
            continue;
        };
        let cond = *cond;
        // The compare defining the branch condition.
        let Some(jc) = ops[..n - 1].iter().rposition(|o| o.def() == Some(cond)) else {
            continue;
        };
        let Op::ICmp {
            kind: kind @ (CmpKind::Lt | CmpKind::Le | CmpKind::Gt | CmpKind::Ge),
            dst,
            lhs: v,
            rhs: IOperand::Imm(k),
        } = ops[jc]
        else {
            continue;
        };
        // `cond` must not be used or redefined between the compare and
        // the branch, nor may any operation the compare will jump over
        // touch it.
        if ops[jc + 1..n - 1]
            .iter()
            .any(|o| o.uses().contains(&dst) || o.def() == Some(dst))
        {
            continue;
        }
        let ju_probe = ops[..jc]
            .iter()
            .position(|o| o.def() == Some(v))
            .unwrap_or(jc);
        if ops[ju_probe..jc]
            .iter()
            .any(|o| o.uses().contains(&dst) || o.def() == Some(dst))
        {
            continue;
        }
        // The unique in-block step of `v` before the compare.
        let defs_of_v: Vec<usize> = ops[..jc]
            .iter()
            .enumerate()
            .filter(|(_, o)| o.def() == Some(v))
            .map(|(i, _)| i)
            .collect();
        let [ju] = defs_of_v.as_slice() else {
            continue;
        };
        let ju = *ju;
        let Op::IBin {
            kind: step_kind @ (IntBinKind::Add | IntBinKind::Sub),
            dst: sd,
            lhs: sl,
            rhs: IOperand::Imm(c),
        } = ops[ju]
        else {
            continue;
        };
        if sd != v || sl != v {
            continue;
        }
        let signed_step = i64::from(if step_kind == IntBinKind::Add { c } else { -c });
        let adjusted = i64::from(k) - signed_step;
        let Ok(adjusted) = i32::try_from(adjusted) else {
            continue;
        };
        // `v + s <kind> k  ⇔  v <kind> k - s` only without i32
        // wraparound of `v + s`. A wrap requires `v` within `|s|` of
        // the integer limits while still passing the original compare,
        // which in turn requires `k` near the limits — refuse those.
        let margin = i64::from(c).unsigned_abs();
        if i64::from(k).unsigned_abs() + margin >= i64::from(i32::MAX).unsigned_abs() {
            continue;
        }
        ops.remove(jc);
        ops.insert(
            ju,
            Op::ICmp {
                kind,
                dst,
                lhs: v,
                rhs: IOperand::Imm(adjusted),
            },
        );
    }
}

/// Find one rotatable loop and rotate it. Returns false when none is
/// left.
fn rotate_one(f: &mut Function) -> bool {
    let info = LoopInfo::compute(f);
    let cfg = Cfg::build(f);
    for looop in &info.loops {
        // Shape requirements:
        // * single latch, ending in an unconditional jump to the header;
        // * the header's ops are all pure computations feeding a
        //   conditional branch whose one arm leaves the loop;
        // * the header has no other in-loop predecessor.
        if looop.latches.len() != 1 {
            continue;
        }
        let latch = looop.latches[0];
        let header = looop.header;
        if latch == header {
            continue; // already bottom-testing
        }
        if !matches!(f.block(latch).terminator(), Some(Op::Jmp(t)) if *t == header) {
            continue;
        }
        let in_loop_preds = cfg.preds[header.index()]
            .iter()
            .filter(|p| looop.contains(**p))
            .count();
        if in_loop_preds != 1 {
            continue;
        }
        let header_ops = &f.block(header).ops;
        let Some(&Op::Br {
            cond,
            then_bb,
            else_bb,
        }) = header_ops.last()
        else {
            continue;
        };
        // One arm must exit the loop and the other continue into it.
        let exits_then = !looop.contains(then_bb);
        let exits_else = !looop.contains(else_bb);
        if exits_then == exits_else || then_bb == header || else_bb == header {
            continue;
        }
        // Header body must be recomputable at the latch.
        if !header_ops[..header_ops.len() - 1]
            .iter()
            .all(is_recomputable)
        {
            continue;
        }
        let cloned: Vec<Op> = header_ops[..header_ops.len() - 1].to_vec();
        // Special case with a big payoff: a minimal header
        // `t = icmp v, w; br` where `v` is a basic induction variable
        // stepped *in the latch* and `w` is a loop-invariant register.
        // Copying the compare verbatim would chain step → compare →
        // branch, three cycles per iteration. Instead, materialize the
        // adjusted bound `w' = w ∓ step` once in the preheader and
        // compare the pre-step value, letting the compare issue in
        // parallel with the step.
        //
        // Like every production compiler, this assumes induction
        // arithmetic does not wrap i32: a register bound within `step`
        // of the integer limits would make `w'` wrap and change the
        // trip count relative to the wrapping-arithmetic interpreter.
        let reg_bound_cmp = match &f.block(header).ops[..header_ops.len() - 1] {
            [Op::ICmp {
                kind,
                lhs: v,
                rhs: dsp_ir::ops::IOperand::Reg(w),
                ..
            }] => Some((*kind, *v, *w)),
            _ => None,
        };
        if let Some(pre) = crate::opt::licm::find_preheader(f, &cfg, looop) {
            if let Some((kind, v, w)) = reg_bound_cmp {
                if matches!(
                    kind,
                    dsp_machine::CmpKind::Lt
                        | dsp_machine::CmpKind::Le
                        | dsp_machine::CmpKind::Gt
                        | dsp_machine::CmpKind::Ge
                ) {
                    if let Some((step_pos, step)) = single_latch_step(f, looop, latch, v, w) {
                        let wp = f.new_vreg(dsp_ir::Type::Int);
                        let pre_ops = &mut f.block_mut(pre).ops;
                        let at = pre_ops.len() - 1;
                        pre_ops.insert(
                            at,
                            Op::IBin {
                                kind: dsp_machine::IntBinKind::Sub,
                                dst: wp,
                                lhs: w,
                                rhs: dsp_ir::ops::IOperand::Imm(step),
                            },
                        );
                        let tp = f.new_vreg(dsp_ir::Type::Int);
                        let latch_ops = &mut f.block_mut(latch).ops;
                        latch_ops.pop(); // the jmp back
                        latch_ops.insert(
                            step_pos,
                            Op::ICmp {
                                kind,
                                dst: tp,
                                lhs: v,
                                rhs: dsp_ir::ops::IOperand::Reg(wp),
                            },
                        );
                        latch_ops.push(Op::Br {
                            cond: tp,
                            then_bb,
                            else_bb,
                        });
                        return true;
                    }
                }
            }
        }
        // Rebuild the header's computation at the latch with fresh
        // destination registers.
        let mut remap: HashMap<VReg, VReg> = HashMap::new();
        let copies: Vec<Op> = cloned
            .iter()
            .map(|op| {
                let mut c = op.clone();
                c.map_uses(|v| remap.get(&v).copied().unwrap_or(v));
                if let Some(d) = c.def() {
                    let fresh = f_new_vreg_like(f, d, &mut remap);
                    set_def(&mut c, fresh);
                }
                c
            })
            .collect();
        let new_cond = remap.get(&cond).copied().unwrap_or(cond);
        let latch_ops = &mut f.block_mut(latch).ops;
        latch_ops.pop(); // the jmp back
        latch_ops.extend(copies);
        latch_ops.push(Op::Br {
            cond: new_cond,
            then_bb,
            else_bb,
        });
        return true;
    }
    false
}

/// For the adjusted-bound rotation: `v`'s unique in-loop definition
/// must be `v = v ± c` located in the latch block, and `w` must be
/// invariant in the loop. Returns the step op's position in the latch
/// and the signed step.
fn single_latch_step(
    f: &Function,
    looop: &dsp_ir::NaturalLoop,
    latch: dsp_ir::BlockId,
    v: VReg,
    w: VReg,
) -> Option<(usize, i32)> {
    use dsp_ir::ops::IOperand;
    use dsp_machine::IntBinKind;
    let mut found: Option<(usize, i32)> = None;
    for &bi in &looop.blocks {
        for (oi, op) in f.block(bi).ops.iter().enumerate() {
            if op.def() == Some(w) {
                return None; // bound not invariant
            }
            if op.def() == Some(v) {
                if found.is_some() || bi != latch {
                    return None; // multiple defs, or step outside latch
                }
                let Op::IBin {
                    kind: kind @ (IntBinKind::Add | IntBinKind::Sub),
                    dst,
                    lhs,
                    rhs: IOperand::Imm(c),
                } = op
                else {
                    return None;
                };
                if *dst != v || *lhs != v {
                    return None;
                }
                let step = if *kind == IntBinKind::Add { *c } else { -*c };
                found = Some((oi, step));
            }
        }
    }
    found
}

fn is_recomputable(op: &Op) -> bool {
    matches!(
        op,
        Op::MovI { .. }
            | Op::MovF { .. }
            | Op::IBin { .. }
            | Op::ICmp { .. }
            | Op::INeg { .. }
            | Op::INot { .. }
            | Op::FBin { .. }
            | Op::FCmp { .. }
            | Op::FNeg { .. }
            | Op::ItoF { .. }
            | Op::FtoI { .. }
            | Op::Load { .. }
    )
}

fn f_new_vreg_like(f: &mut Function, old: VReg, remap: &mut HashMap<VReg, VReg>) -> VReg {
    let fresh = f.new_vreg(f.vreg_ty(old));
    remap.insert(old, fresh);
    fresh
}

fn set_def(op: &mut Op, fresh: VReg) {
    match op {
        Op::MovI { dst, .. }
        | Op::MovF { dst, .. }
        | Op::IBin { dst, .. }
        | Op::ICmp { dst, .. }
        | Op::INeg { dst, .. }
        | Op::INot { dst, .. }
        | Op::FBin { dst, .. }
        | Op::FCmp { dst, .. }
        | Op::FNeg { dst, .. }
        | Op::ItoF { dst, .. }
        | Op::FtoI { dst, .. }
        | Op::Load { dst, .. } => *dst = fresh,
        _ => unreachable!("only recomputable ops get fresh defs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;
    use dsp_ir::Interpreter;

    fn rotated(src: &str) -> dsp_ir::Program {
        let mut p = compile_str(src).unwrap();
        for f in &mut p.funcs {
            run(f);
        }
        p.validate().expect("rotated program validates");
        p
    }

    #[test]
    fn for_loop_latch_gets_conditional_branch() {
        let p = rotated(
            "int out; void main() { int i; out = 0;
             for (i = 0; i < 10; i++) out += i; }",
        );
        let f = p.func(p.main.unwrap());
        // Some block other than the header must now end in a Br.
        let brs = f
            .blocks
            .iter()
            .filter(|b| matches!(b.terminator(), Some(Op::Br { .. })))
            .count();
        assert_eq!(brs, 2, "header + rotated latch:\n{}", f.dump());
    }

    #[test]
    fn semantics_preserved() {
        let src = "int out; void main() { int i; int j; out = 0;
                   for (i = 0; i < 7; i++)
                     for (j = 0; j < 5; j++)
                       out += i * j; }";
        let reference = compile_str(src).unwrap();
        let mut i0 = Interpreter::new(&reference);
        i0.run().unwrap();
        let want = i0.global_mem_by_name("out").unwrap()[0];
        let p = rotated(src);
        let mut i1 = Interpreter::new(&p);
        i1.run().unwrap();
        assert_eq!(i1.global_mem_by_name("out").unwrap()[0], want);
    }

    #[test]
    fn zero_trip_loop_still_skipped() {
        let src = "int out; void main() { int i; out = 5;
                   for (i = 0; i < 0; i++) out += 100; }";
        let p = rotated(src);
        let mut interp = Interpreter::new(&p);
        interp.run().unwrap();
        assert_eq!(interp.global_mem_by_name("out").unwrap()[0].as_i32(), 5);
    }

    #[test]
    fn while_loop_with_dynamic_bound() {
        let src = "int out; int n = 13;
                   void main() { int i; out = 0; i = 0;
                   while (i < n) { out += i; i++; } }";
        let reference = compile_str(src).unwrap();
        let mut i0 = Interpreter::new(&reference);
        i0.run().unwrap();
        let want = i0.global_mem_by_name("out").unwrap()[0];
        let p = rotated(src);
        let mut i1 = Interpreter::new(&p);
        i1.run().unwrap();
        assert_eq!(i1.global_mem_by_name("out").unwrap()[0], want);
    }
}
