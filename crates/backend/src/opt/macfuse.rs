//! Multiply-accumulate fusion.
//!
//! Rewrites the accumulation pattern
//!
//! ```text
//! t   = fmul a, b      (t single-def, single-use)
//! acc = fadd acc, t    (or fadd t, acc)
//! ```
//!
//! into the single-cycle `acc = fmac acc, a, b` — the operation DSP
//! data paths are built around (the paper's Figure 1 inner loop is one
//! `MAC` plus two parallel loads). Fusion halves the length of the
//! accumulation recurrence, which is what exposes the memory system as
//! the bottleneck the bank-partitioning algorithms then attack.
//!
//! The product and the sum keep their separate IEEE-754 roundings in
//! both the interpreter and the simulator, so fusion is bit-exact.

use std::collections::HashMap;

use dsp_ir::ops::Op;
use dsp_ir::{Function, VReg};
use dsp_machine::FpBinKind;

/// Run MAC fusion on every block of `f`.
pub fn run(f: &mut Function) {
    // Function-wide def/use counts keep the rewrite sound: the product
    // register must be produced once and consumed exactly once.
    let mut defs: HashMap<VReg, usize> = HashMap::new();
    let mut uses: HashMap<VReg, usize> = HashMap::new();
    for block in &f.blocks {
        for op in &block.ops {
            if let Some(d) = op.def() {
                *defs.entry(d).or_insert(0) += 1;
            }
            for u in op.uses() {
                *uses.entry(u).or_insert(0) += 1;
            }
        }
    }

    for block in &mut f.blocks {
        let ops = &mut block.ops;
        let mut i = 0;
        while i < ops.len() {
            let Op::FBin {
                kind: FpBinKind::Mul,
                dst: t,
                lhs: a,
                rhs: b,
            } = ops[i]
            else {
                i += 1;
                continue;
            };
            if defs.get(&t) != Some(&1) || uses.get(&t) != Some(&1) {
                i += 1;
                continue;
            }
            // Find the consumer within this block; bail if a or b (or t
            // itself) is redefined before it.
            let mut j = i + 1;
            let mut blocked = false;
            let consumer = loop {
                let Some(op) = ops.get(j) else {
                    break None;
                };
                if op.uses().contains(&t) {
                    break Some(j);
                }
                if let Some(d) = op.def() {
                    if d == a || d == b || d == t {
                        blocked = true;
                        break None;
                    }
                }
                j += 1;
            };
            let Some(j) = consumer else {
                i += 1;
                let _ = blocked;
                continue;
            };
            let Op::FBin {
                kind: FpBinKind::Add,
                dst,
                lhs,
                rhs,
            } = ops[j]
            else {
                i += 1;
                continue;
            };
            // Accumulation shape: the destination is also the other
            // addend (`acc = acc + t` or `acc = t + acc`).
            let acc = if lhs == t { rhs } else { lhs };
            if (lhs != t && rhs != t) || dst != acc || acc == t {
                i += 1;
                continue;
            }
            ops[j] = Op::FMac { acc, a, b };
            ops.remove(i);
            // Counts shift: t is gone entirely.
            defs.remove(&t);
            uses.remove(&t);
            // Do not advance: the op now at `i` deserves a look.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;

    fn fuse_main(src: &str) -> Function {
        let mut p = compile_str(src).unwrap();
        for f in &mut p.funcs {
            super::super::local::run(f);
            super::super::dce::run(f);
            run(f);
        }
        p.validate().expect("fused program validates");
        p.func(p.main.unwrap()).clone()
    }

    fn count_macs(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, Op::FMac { .. }))
            .count()
    }

    #[test]
    fn dot_product_fuses() {
        let f = fuse_main(
            "float A[8]; float B[8]; float out;
             void main() {
                 int i; float acc; acc = 0.0;
                 for (i = 0; i < 8; i++) acc += A[i] * B[i];
                 out = acc;
             }",
        );
        assert_eq!(count_macs(&f), 1, "{}", f.dump());
        // No bare fmul+fadd pair remains in the loop.
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| {
                matches!(
                    o,
                    Op::FBin {
                        kind: FpBinKind::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls, 0);
    }

    #[test]
    fn non_accumulating_add_not_fused() {
        // c = a*b + d with c != d: not an accumulation.
        let f = fuse_main(
            "float out; float d;
             void main(){ float a; float b; float c;
               a = 2.0; b = 3.0;
               c = a * b + d;
               out = c; }",
        );
        assert_eq!(count_macs(&f), 0, "{}", f.dump());
    }

    #[test]
    fn multi_use_product_not_fused() {
        let f = fuse_main(
            "float out;
             void main(){ float a; float b; float t; float acc;
               a = 2.0; b = 3.0; acc = 1.0;
               t = a * b;
               acc = acc + t;
               out = acc + t; }",
        );
        assert_eq!(count_macs(&f), 0, "{}", f.dump());
    }

    #[test]
    fn semantics_preserved() {
        let src = "float A[6] = {1.5, -2.0, 3.25, 0.5, -1.0, 2.0};
                   float B[6] = {2.0, 0.5, -1.5, 4.0, 1.25, -0.75};
                   float out;
                   void main() {
                       int i; float acc; acc = 0.125;
                       for (i = 0; i < 6; i++) acc += A[i] * B[i];
                       out = acc;
                   }";
        let reference = compile_str(src).unwrap();
        let mut i0 = dsp_ir::Interpreter::new(&reference);
        i0.run().unwrap();
        let want = i0.global_mem_by_name("out").unwrap()[0];

        let mut fused = compile_str(src).unwrap();
        for f in &mut fused.funcs {
            run(f);
        }
        let mut i1 = dsp_ir::Interpreter::new(&fused);
        i1.run().unwrap();
        assert_eq!(i1.global_mem_by_name("out").unwrap()[0], want);
    }

    #[test]
    fn factor_redefined_between_blocks_fusion() {
        // a redefined between mul and add: must not fuse.
        let f = fuse_main(
            "float out;
             void main(){ float a; float b; float t; float acc;
               a = 2.0; b = 3.0; acc = 0.0;
               t = a * b;
               a = 7.0;
               acc = acc + t;
               out = acc + a; }",
        );
        assert_eq!(count_macs(&f), 0, "{}", f.dump());
    }
}
