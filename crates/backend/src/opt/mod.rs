//! Machine-independent optimizations.
//!
//! The paper's baseline compiler runs "with all other optimizations
//! enabled" (§4.1) — the data-allocation experiments are differences
//! *on top of* an optimizing compiler. This module provides that
//! substrate:
//!
//! * [`local`] — per-block constant folding, constant/copy propagation
//!   and algebraic simplification;
//! * [`dce`] — dead-code elimination and unreachable-block removal;
//! * [`loops`] — preheader insertion and jump threading;
//! * [`licm`] — loop-invariant code motion (pure ops and safe loads);
//! * [`ivopt`] — induction-variable strength reduction, which rewrites
//!   in-loop address arithmetic like `signal[n + m]` into derived
//!   induction variables updated at the latch. This is what makes both
//!   loads of the paper's Figure-6 autocorrelation ready in the same
//!   cycle, exactly as the DSP56001's post-increment address registers
//!   would.

pub mod dce;
pub mod ivopt;
pub mod licm;
pub mod local;
pub mod loops;
pub mod macfuse;
pub mod rotate;

use dsp_ir::Program;

/// Wall time spent in one optimization pass, summed over every
/// invocation and every function in the pipeline run.
#[derive(Debug, Clone)]
pub struct PassTime {
    /// Pass name as listed in the module docs (e.g. `licm`, `ivopt`).
    pub pass: &'static str,
    /// Accumulated wall time.
    pub time: std::time::Duration,
}

/// Accumulate `elapsed` under `pass`, keeping first-run order.
fn record(acc: &mut Vec<PassTime>, pass: &'static str, elapsed: std::time::Duration) {
    if let Some(entry) = acc.iter_mut().find(|p| p.pass == pass) {
        entry.time += elapsed;
    } else {
        acc.push(PassTime {
            pass,
            time: elapsed,
        });
    }
}

fn timed(acc: &mut Vec<PassTime>, pass: &'static str, f: impl FnOnce()) {
    let start = std::time::Instant::now();
    f();
    record(acc, pass, start.elapsed());
}

/// Run the full optimization pipeline to a fixed point (bounded).
pub fn optimize(program: &mut Program) {
    let _ = optimize_timed(program);
}

/// [`optimize`], reporting per-pass wall times (summed across
/// functions and pipeline rounds, in first-run order).
pub fn optimize_timed(program: &mut Program) -> Vec<PassTime> {
    let mut acc = Vec::new();
    for f in &mut program.funcs {
        timed(&mut acc, "local", || local::run(f));
        timed(&mut acc, "dce", || dce::run(f));
        timed(&mut acc, "unreachable", || dce::remove_unreachable(f));
        timed(&mut acc, "merge", || loops::merge_blocks(f));
        // Two rounds let derived induction variables chain (e.g.
        // `B[k*10 + j]` needs the `k*10` IV before the `+ j` IV).
        for _ in 0..2 {
            timed(&mut acc, "preheaders", || {
                loops::insert_preheaders(f);
            });
            timed(&mut acc, "licm", || licm::run(f));
            timed(&mut acc, "ivopt", || ivopt::run(f));
            timed(&mut acc, "local", || local::run(f));
            timed(&mut acc, "dce", || dce::run(f));
        }
        timed(&mut acc, "macfuse", || macfuse::run(f));
        timed(&mut acc, "rotate", || rotate::run(f));
        timed(&mut acc, "thread", || loops::thread_jumps(f));
        timed(&mut acc, "unreachable", || dce::remove_unreachable(f));
        timed(&mut acc, "merge", || loops::merge_blocks(f));
        timed(&mut acc, "local", || local::run(f));
        timed(&mut acc, "dce", || dce::run(f));
        timed(&mut acc, "faint-dce", || dce::run_liveness(f));
    }
    debug_assert_eq!(program.validate(), Ok(()), "optimizer broke the program");
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;
    use dsp_ir::Interpreter;
    use dsp_machine::Word;

    /// Compile with and without optimization; both must compute the same
    /// `out` global, and the optimized version must not be larger.
    fn check_out(src: &str) -> (Vec<Word>, usize, usize) {
        let reference = compile_str(src).unwrap();
        let mut interp = Interpreter::new(&reference);
        interp.run().unwrap();
        let want = interp.global_mem_by_name("out").unwrap().to_vec();

        let mut optimized = compile_str(src).unwrap();
        optimize(&mut optimized);
        optimized.validate().expect("optimized program valid");
        let mut interp2 = Interpreter::new(&optimized);
        interp2.run().unwrap();
        let got = interp2.global_mem_by_name("out").unwrap().to_vec();
        assert_eq!(want, got, "optimization changed semantics");

        let size = |p: &dsp_ir::Program| p.funcs.iter().map(dsp_ir::Function::op_count).sum();
        (want, size(&reference), size(&optimized))
    }

    #[test]
    fn pipeline_preserves_fir() {
        let src = "float A[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
                   float B[16] = {1,1,2,2,3,3,4,4,5,5,6,6,7,7,8,8};
                   float out;
                   void main() {
                     int i; float acc; acc = 0.0;
                     for (i = 0; i < 16; i++) acc += A[i] * B[i];
                     out = acc;
                   }";
        let (_, before, after) = check_out(src);
        assert!(
            after <= before,
            "optimizer grew the program: {before} -> {after}"
        );
    }

    #[test]
    fn pipeline_preserves_autocorrelation_with_dynamic_lag() {
        let src = "float s[32] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,
                                  16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1};
                   float out; float R[8];
                   void main() {
                     int n; int m; float acc; acc = 0.0;
                     for (m = 1; m < 5; m++) {
                       for (n = 0; n < 8; n++)
                         R[n] += s[n] * s[n + m];
                     }
                     for (n = 0; n < 8; n++) acc += R[n];
                     out = acc;
                   }";
        check_out(src);
    }

    #[test]
    fn pipeline_preserves_control_flow_heavy_code() {
        let src = "int out;
                   int classify(int x) {
                     if (x > 100) return 3;
                     if (x > 10) { if (x % 2 == 0) return 2; else return 1; }
                     return 0;
                   }
                   void main() {
                     int i; out = 0;
                     for (i = 0; i < 200; i += 7) out += classify(i);
                   }";
        check_out(src);
    }

    #[test]
    fn pipeline_preserves_matrix_multiply() {
        let src = "float A[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
                   float B[16] = {2,0,1,3,1,1,4,2,0,5,2,2,3,1,0,1};
                   float C[16]; float out;
                   void main() {
                     int i; int j; int k;
                     for (i = 0; i < 4; i++)
                       for (j = 0; j < 4; j++) {
                         float acc; acc = 0.0;
                         for (k = 0; k < 4; k++)
                           acc += A[i * 4 + k] * B[k * 4 + j];
                         C[i * 4 + j] = acc;
                       }
                     out = C[5] + C[10];
                   }";
        check_out(src);
    }

    #[test]
    fn pipeline_preserves_recursion_and_calls() {
        let src = "int out;
                   int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                   void main() { out = fib(12); }";
        check_out(src);
    }
}
