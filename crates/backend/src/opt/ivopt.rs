//! Induction-variable strength reduction.
//!
//! Rewrites in-loop linear arithmetic on induction variables —
//! `u = iv + inv`, `u = iv - c`, `u = iv * c` — into *derived induction
//! variables* that are initialized in the preheader and stepped right
//! after the basic IV's own update. The replaced operation becomes a
//! plain register copy, so after copy propagation the array subscript
//! is available at the top of the loop body, the way a DSP's
//! auto-incremented address registers make it available. This is what
//! lets the trial compaction (and the final schedule) pair loads like
//! `signal[n]` and `signal[n+m]` in one instruction (paper Figure 6).

use std::collections::HashMap;

use dsp_ir::ops::{IOperand, Op};
use dsp_ir::{Cfg, Function, LoopInfo, NaturalLoop, Type, VReg};
use dsp_machine::IntBinKind;

use super::licm::find_preheader;

/// A basic or derived induction variable: `v` advances by `step` once
/// per iteration at a fixed update point.
#[derive(Debug, Clone, Copy)]
struct Iv {
    step: i32,
}

/// Run induction-variable rewriting on every natural loop of `f`.
/// Requires preheaders.
pub fn run(f: &mut Function) {
    let info = LoopInfo::compute(f);
    for looop in info.loops.clone() {
        rewrite_loop(f, &looop);
    }
}

fn rewrite_loop(f: &mut Function, looop: &NaturalLoop) {
    let cfg = Cfg::build(f);
    let Some(pre) = find_preheader(f, &cfg, looop) else {
        return;
    };
    let idom = cfg.immediate_dominators();

    // Fixpoint: derived IVs enable further rewrites (e.g. k*10 then +j).
    for _round in 0..4 {
        // Def counts.
        let mut def_count_fn: HashMap<VReg, usize> = HashMap::new();
        let mut defs_in_loop: HashMap<VReg, usize> = HashMap::new();
        for (bi, block) in f.iter_blocks() {
            for op in &block.ops {
                if let Some(d) = op.def() {
                    *def_count_fn.entry(d).or_insert(0) += 1;
                    if looop.contains(bi) {
                        *defs_in_loop.entry(d).or_insert(0) += 1;
                    }
                }
            }
        }
        let invariant = |v: VReg| defs_in_loop.get(&v).copied().unwrap_or(0) == 0;

        // Basic IVs: single in-loop def `v = v ± c` in a block that
        // dominates every latch (executes exactly once per iteration).
        let mut ivs: HashMap<VReg, Iv> = HashMap::new();
        for (bi, block) in f.iter_blocks() {
            if !looop.contains(bi) {
                continue;
            }
            let every_iter = looop.latches.iter().all(|&l| cfg.dominates(&idom, bi, l));
            if !every_iter {
                continue;
            }
            for op in &block.ops {
                if let Op::IBin {
                    kind: kind @ (IntBinKind::Add | IntBinKind::Sub),
                    dst,
                    lhs,
                    rhs: IOperand::Imm(c),
                } = op
                {
                    if dst == lhs
                        && defs_in_loop.get(dst) == Some(&1)
                        && f.vreg_ty(*dst) == Type::Int
                    {
                        let step = if *kind == IntBinKind::Add { *c } else { -*c };
                        ivs.insert(*dst, Iv { step });
                    }
                }
            }
        }
        if ivs.is_empty() {
            return;
        }

        // Find one rewrite candidate: `u = v <op> x` with v a basic IV,
        // u single-def, and the result linear in v. The tuple carries
        // (block, op index, defined vreg, the op, the IV vreg, step).
        let mut candidate: Option<(dsp_ir::BlockId, usize, VReg, Op, VReg, i32)> = None;
        'outer: for (bi, block) in f.iter_blocks() {
            if !looop.contains(bi) {
                continue;
            }
            for (oi, op) in block.ops.iter().enumerate() {
                let Op::IBin {
                    kind,
                    dst,
                    lhs,
                    rhs,
                } = op
                else {
                    continue;
                };
                if def_count_fn.get(dst) != Some(&1) || ivs.contains_key(dst) {
                    continue;
                }
                // The IV may appear on either side: `iv + w`, `iv - c`,
                // `iv * c`, or `w + iv` / `w - iv` with `w` invariant.
                let found = if let Some(iv) = ivs.get(lhs) {
                    match (kind, rhs) {
                        (IntBinKind::Add | IntBinKind::Sub, IOperand::Imm(_)) => {
                            Some((*lhs, iv.step))
                        }
                        (IntBinKind::Add | IntBinKind::Sub, IOperand::Reg(w)) => {
                            invariant(*w).then_some((*lhs, iv.step))
                        }
                        (IntBinKind::Mul, IOperand::Imm(c)) => {
                            Some((*lhs, iv.step.wrapping_mul(*c)))
                        }
                        _ => None,
                    }
                } else if let IOperand::Reg(r) = rhs {
                    match (ivs.get(r), invariant(*lhs), kind) {
                        (Some(iv), true, IntBinKind::Add) => Some((*r, iv.step)),
                        (Some(iv), true, IntBinKind::Sub) => Some((*r, -iv.step)),
                        _ => None,
                    }
                } else {
                    None
                };
                let Some((ivreg, dstep)) = found else {
                    continue;
                };
                candidate = Some((bi, oi, *dst, op.clone(), ivreg, dstep));
                break 'outer;
            }
        }
        let Some((bi, oi, u, op, ivreg, dstep)) = candidate else {
            return;
        };

        // Materialize the derived IV.
        let d = f.new_vreg(Type::Int);
        // Preheader: d = v <op> x  (computes f(v) at loop entry).
        let mut init = op.clone();
        if let Op::IBin { dst, .. } = &mut init {
            *dst = d;
        }
        let pre_ops = &mut f.block_mut(pre).ops;
        let at = pre_ops.len() - 1;
        pre_ops.insert(at, init);
        // Replace the original computation with a copy from d.
        f.block_mut(bi).ops[oi] = Op::MovI {
            dst: u,
            src: IOperand::Reg(d),
        };
        // Step d right after the basic IV's update.
        let v = ivreg;
        let _ = op;
        'insert: for (bj, block) in f.blocks.iter_mut().enumerate() {
            if !looop.contains(dsp_ir::BlockId(bj as u32)) {
                continue;
            }
            for oj in 0..block.ops.len() {
                if block.ops[oj].def() == Some(v) {
                    block.ops.insert(
                        oj + 1,
                        Op::IBin {
                            kind: IntBinKind::Add,
                            dst: d,
                            lhs: d,
                            rhs: IOperand::Imm(dstep),
                        },
                    );
                    break 'insert;
                }
            }
        }
        // `d` is itself an IV now; the next round may chain on it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;
    use dsp_ir::DepGraph;

    fn optimize(p: &mut dsp_ir::Program) {
        for f in &mut p.funcs {
            super::super::local::run(f);
            super::super::dce::run(f);
            for _ in 0..2 {
                super::super::loops::insert_preheaders(f);
                super::super::licm::run(f);
                run(f);
                super::super::local::run(f);
                super::super::dce::run(f);
            }
        }
        p.validate().expect("ivopt output validates");
    }

    /// After ivopt, the two `s[...]` loads in the autocorrelation body
    /// must both be ready at the top of the block: no in-block def may
    /// feed their index registers.
    #[test]
    fn autocorrelation_loads_become_coready() {
        let src = "float s[32]; float R[8]; float out;
                   void main() {
                     int n; int m;
                     m = 5;
                     for (n = 0; n < 8; n++)
                       R[n] += s[n] * s[n + m];
                     out = R[0];
                   }";
        let mut p = compile_str(src).unwrap();
        optimize(&mut p);
        let f = p.func(p.main.unwrap());
        let info = LoopInfo::compute(f);
        // Find the loop body block holding the loads.
        let mut checked = false;
        for (bi, block) in f.iter_blocks() {
            if info.depth_of(bi) == 0 {
                continue;
            }
            let loads: Vec<usize> = block
                .ops
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, Op::Load { .. }))
                .map(|(i, _)| i)
                .collect();
            if loads.len() < 3 {
                continue; // header or latch block
            }
            let graph = DepGraph::build(&block.ops);
            for &l in &loads {
                let gated = graph.pred_edges(l).any(|e| e.kind == dsp_ir::DepKind::Flow);
                assert!(
                    !gated,
                    "load at op {l} still waits on an in-block computation:\n{}",
                    f.dump()
                );
            }
            checked = true;
        }
        assert!(checked, "did not find the loop body:\n{}", f.dump());
        // Semantics preserved (all-zero arrays → out = 0).
        let mut i = dsp_ir::Interpreter::new(&p);
        i.run().unwrap();
        assert_eq!(i.global_mem_by_name("out").unwrap()[0].as_f32(), 0.0);
    }

    #[test]
    fn matrix_column_walk_strength_reduced() {
        // B[k*4 + j]: k*4 then +j should become derived IVs.
        let src = "float A[16]; float B[16]; float out;
                   void main() {
                     int j; int k; float acc;
                     j = 2; acc = 0.0;
                     for (k = 0; k < 4; k++)
                       acc += A[k] * B[k * 4 + j];
                     out = acc;
                   }";
        let mut p = compile_str(src).unwrap();
        optimize(&mut p);
        let f = p.func(p.main.unwrap());
        let info = LoopInfo::compute(f);
        // No multiplies should remain in the loop.
        let muls_in_loop = f
            .iter_blocks()
            .filter(|(bi, _)| info.depth_of(*bi) > 0)
            .flat_map(|(_, b)| &b.ops)
            .filter(|o| {
                matches!(
                    o,
                    Op::IBin {
                        kind: IntBinKind::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls_in_loop, 0, "{}", f.dump());
    }

    #[test]
    fn semantics_preserved_with_values() {
        let src = "int A[8] = {1,2,3,4,5,6,7,8}; int out;
                   void main() {
                     int i; int acc; acc = 0;
                     for (i = 0; i < 6; i++) acc += A[i] * A[i + 2];
                     out = acc;
                   }";
        let mut p = compile_str(src).unwrap();
        let mut i0 = dsp_ir::Interpreter::new(&p);
        i0.run().unwrap();
        let want = i0.global_mem_by_name("out").unwrap()[0];
        optimize(&mut p);
        let mut i1 = dsp_ir::Interpreter::new(&p);
        i1.run().unwrap();
        assert_eq!(i1.global_mem_by_name("out").unwrap()[0], want);
    }

    #[test]
    fn downward_counting_loop() {
        let src = "int A[8] = {1,2,3,4,5,6,7,8}; int out;
                   void main() {
                     int i; int acc; acc = 0;
                     for (i = 7; i >= 1; i--) acc += A[i] + A[i - 1];
                     out = acc;
                   }";
        let mut p = compile_str(src).unwrap();
        let mut i0 = dsp_ir::Interpreter::new(&p);
        i0.run().unwrap();
        let want = i0.global_mem_by_name("out").unwrap()[0];
        optimize(&mut p);
        let mut i1 = dsp_ir::Interpreter::new(&p);
        i1.run().unwrap();
        assert_eq!(i1.global_mem_by_name("out").unwrap()[0], want);
    }
}
