//! Loop-invariant code motion.
//!
//! Hoists pure computations and provably loop-invariant loads into the
//! loop preheader. Hoisting a load is legal when nothing in the loop
//! may store to the same object (no aliasing store, no call) — easy to
//! establish here because every memory reference names its object.

use std::collections::HashSet;

use dsp_ir::depgraph::refs_may_overlap;
use dsp_ir::ops::Op;
use dsp_ir::{BlockId, Cfg, Function, LoopInfo, NaturalLoop, VReg};

/// Find the preheader of `looop`: its unique out-of-loop predecessor
/// ending in an unconditional jump to the header.
pub fn find_preheader(f: &Function, cfg: &Cfg, looop: &NaturalLoop) -> Option<BlockId> {
    let entry_preds: Vec<BlockId> = cfg.preds[looop.header.index()]
        .iter()
        .copied()
        .filter(|p| !looop.contains(*p))
        .collect();
    match entry_preds.as_slice() {
        [p] if matches!(f.block(*p).terminator(), Some(Op::Jmp(t)) if *t == looop.header) => {
            Some(*p)
        }
        _ => None,
    }
}

/// Run LICM on every natural loop of `f`. Requires preheaders
/// ([`super::loops::insert_preheaders`]).
pub fn run(f: &mut Function) {
    let info = LoopInfo::compute(f);
    // Innermost-first: deeper headers first so invariants bubble outward
    // across repeated pipeline rounds.
    let mut order: Vec<usize> = (0..info.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(info.depth[info.loops[i].header.index()]));
    for li in order {
        let looop = info.loops[li].clone();
        hoist_loop(f, &looop);
    }
}

fn hoist_loop(f: &mut Function, looop: &NaturalLoop) {
    let cfg = Cfg::build(f);
    let Some(pre) = find_preheader(f, &cfg, looop) else {
        return;
    };
    let idom = cfg.immediate_dominators();

    // Iterate: hoisting one op may make another invariant.
    loop {
        // Facts about the loop in its current shape.
        let mut defs_in_loop: HashSet<VReg> = HashSet::new();
        let mut def_count_fn: std::collections::HashMap<VReg, usize> =
            std::collections::HashMap::new();
        let mut has_call = false;
        let mut stores: Vec<dsp_ir::MemRef> = Vec::new();
        for (bi, block) in f.iter_blocks() {
            for op in &block.ops {
                if let Some(d) = op.def() {
                    *def_count_fn.entry(d).or_insert(0) += 1;
                    if looop.contains(bi) {
                        defs_in_loop.insert(d);
                    }
                }
                if looop.contains(bi) {
                    match op {
                        Op::Call { .. } => has_call = true,
                        Op::Store { addr, .. } => stores.push(*addr),
                        _ => {}
                    }
                }
            }
        }
        // Uses: where is each vreg used (for the dominance condition)?
        let mut use_blocks: std::collections::HashMap<VReg, Vec<BlockId>> =
            std::collections::HashMap::new();
        for (bi, block) in f.iter_blocks() {
            for op in &block.ops {
                for u in op.uses() {
                    use_blocks.entry(u).or_default().push(bi);
                }
                if let Some(mr) = op.mem_ref() {
                    if let Some(ix) = mr.index {
                        use_blocks.entry(ix).or_default().push(bi);
                    }
                }
            }
        }

        let mut hoisted = false;
        'search: for &bi in &looop.blocks {
            // The candidate must execute on every iteration and its def
            // must dominate all its uses: require its block to dominate
            // every latch and every use block.
            let dominates_latches = looop.latches.iter().all(|&l| cfg.dominates(&idom, bi, l));
            if !dominates_latches {
                continue;
            }
            let ops_len = f.block(bi).ops.len();
            for oi in 0..ops_len {
                let op = &f.block(bi).ops[oi];
                let Some(d) = op.def() else { continue };
                if def_count_fn.get(&d).copied().unwrap_or(0) != 1 {
                    continue;
                }
                if !hoistable_kind(op, has_call, &stores) {
                    continue;
                }
                if op.uses().iter().any(|u| defs_in_loop.contains(u)) {
                    continue;
                }
                // Same-block uses before the def would be exposed to the
                // hoisted value — but with a single function-wide def,
                // such a use could only read an uninitialized register,
                // which validated lowering never produces. Check
                // dominance of use blocks (excluding the def block,
                // where textual order suffices given single-def).
                let dom_ok = use_blocks.get(&d).is_none_or(|ubs| {
                    ubs.iter()
                        .all(|&ub| ub == bi || cfg.dominates(&idom, bi, ub))
                });
                if !dom_ok {
                    continue;
                }
                // Hoist: move op to the preheader, before its Jmp.
                let op = f.block_mut(bi).ops.remove(oi);
                let pre_ops = &mut f.block_mut(pre).ops;
                let at = pre_ops.len() - 1;
                pre_ops.insert(at, op);
                hoisted = true;
                break 'search;
            }
        }
        if !hoisted {
            break;
        }
    }
}

fn hoistable_kind(op: &Op, loop_has_call: bool, loop_stores: &[dsp_ir::MemRef]) -> bool {
    match op {
        Op::MovI { .. }
        | Op::MovF { .. }
        | Op::IBin { .. }
        | Op::ICmp { .. }
        | Op::INeg { .. }
        | Op::INot { .. }
        | Op::FBin { .. }
        | Op::FCmp { .. }
        | Op::FNeg { .. }
        | Op::ItoF { .. }
        | Op::FtoI { .. } => true,
        Op::Load { addr, .. } => {
            !loop_has_call && !loop_stores.iter().any(|s| refs_may_overlap(s, addr))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;

    fn optimize_lightly(p: &mut dsp_ir::Program) {
        for f in &mut p.funcs {
            super::super::local::run(f);
            super::super::dce::run(f);
            super::super::loops::insert_preheaders(f);
            run(f);
            super::super::local::run(f);
            super::super::dce::run(f);
        }
    }

    /// Count loads inside loop bodies of `main`.
    fn loads_in_loops(p: &dsp_ir::Program) -> usize {
        let f = p.func(p.main.unwrap());
        let info = LoopInfo::compute(f);
        f.iter_blocks()
            .filter(|(bi, _)| info.depth_of(*bi) > 0)
            .flat_map(|(_, b)| &b.ops)
            .filter(|o| matches!(o, Op::Load { .. }))
            .count()
    }

    #[test]
    fn invariant_global_load_hoisted() {
        let src = "int m; int A[8]; int out;
                   void main() {
                     int i; out = 0;
                     m = 3;
                     for (i = 0; i < 8; i++) out += A[i] * m;
                   }";
        let mut p = compile_str(src).unwrap();
        // `out` is a global scalar: its load/store stay in the loop, but
        // the load of `m` must hoist.
        let before = loads_in_loops(&p);
        optimize_lightly(&mut p);
        let after = loads_in_loops(&p);
        assert!(after < before, "loads in loops: {before} -> {after}");
        // Semantics preserved.
        let mut i2 = dsp_ir::Interpreter::new(&p);
        i2.run().unwrap();
        assert_eq!(i2.global_mem_by_name("out").unwrap()[0].as_i32(), 0);
    }

    #[test]
    fn store_in_loop_blocks_load_hoist() {
        let src = "int m; int out;
                   void main() {
                     int i; out = 0;
                     for (i = 0; i < 8; i++) { m = i; out += m; }
                   }";
        let mut p = compile_str(src).unwrap();
        optimize_lightly(&mut p);
        // The load of m cannot hoist (m stored each iteration).
        let mut i2 = dsp_ir::Interpreter::new(&p);
        i2.run().unwrap();
        assert_eq!(i2.global_mem_by_name("out").unwrap()[0].as_i32(), 28);
    }

    #[test]
    fn call_in_loop_blocks_load_hoist() {
        let src = "int m = 5; int out;
                   void bump() { m += 1; }
                   void main() {
                     int i; out = 0;
                     for (i = 0; i < 3; i++) { bump(); out += m; }
                   }";
        let mut p = compile_str(src).unwrap();
        optimize_lightly(&mut p);
        let mut i2 = dsp_ir::Interpreter::new(&p);
        i2.run().unwrap();
        assert_eq!(i2.global_mem_by_name("out").unwrap()[0].as_i32(), 6 + 7 + 8);
    }

    #[test]
    fn invariant_arithmetic_hoisted_from_inner_loop() {
        let src = "float A[16]; float B[16]; float C[16]; float out;
                   void main() {
                     int i; int j;
                     for (i = 0; i < 4; i++)
                       for (j = 0; j < 4; j++)
                         C[i * 4 + j] = A[i * 4 + j] + B[i * 4 + j];
                     out = C[0];
                   }";
        let mut p = compile_str(src).unwrap();
        optimize_lightly(&mut p);
        p.validate().unwrap();
        // i*4 should no longer be computed in the inner loop.
        let f = p.func(p.main.unwrap());
        let info = LoopInfo::compute(f);
        let inner_muls = f
            .iter_blocks()
            .filter(|(bi, _)| info.depth_of(*bi) == 2)
            .flat_map(|(_, b)| &b.ops)
            .filter(|o| {
                matches!(
                    o,
                    Op::IBin {
                        kind: dsp_machine::IntBinKind::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(inner_muls, 0, "i*4 must hoist out of the j loop");
    }
}
