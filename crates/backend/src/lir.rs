//! Low-level IR: machine operations over physical registers, still
//! organized as basic blocks with symbolic branch targets.
//!
//! This is the form the *final* operation-compaction pass works on.
//! Each [`LirOp`] occupies exactly one functional-unit slot; memory
//! operations carry [`MemMeta`] — the alias class, the original memory
//! reference, and the bank claim — so the scheduler can disambiguate
//! accesses and honour (or, for duplicated data, exploit) bank
//! placement.

use dsp_bankalloc::Var;
use dsp_ir::ops::MemRef;
use dsp_ir::{BlockId, FuncId};
use dsp_machine::{AddrOp, Bank, FpOp, IReg, IntOp, IntOperand, MemAddr, MemOp, Reg};
use dsp_sched::MemClaim;

use crate::layout::FrameLayout;

/// What a memory operation's address can alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasKey {
    /// A program variable (alias class) with its original reference for
    /// offset-level disambiguation.
    Class(Var, MemRef),
    /// A frame slot (register save or spill) at an exact, unique
    /// per-function location. Frame slots never alias program
    /// variables.
    Frame(Bank, u32),
}

impl AliasKey {
    /// May two accesses touch the same word of the same bank?
    #[must_use]
    pub fn may_overlap(&self, other: &AliasKey) -> bool {
        match (self, other) {
            (AliasKey::Class(ca, ra), AliasKey::Class(cb, rb)) => {
                if ca != cb {
                    return false;
                }
                // Same class: distinct constant displacements off the
                // same (possibly absent) index register cannot collide.
                if ra.base == rb.base && ra.index == rb.index {
                    ra.offset == rb.offset
                } else {
                    true
                }
            }
            (AliasKey::Frame(ba, oa), AliasKey::Frame(bb, ob)) => ba == bb && oa == ob,
            // Static data and stack regions are disjoint.
            (AliasKey::Class(..), AliasKey::Frame(..))
            | (AliasKey::Frame(..), AliasKey::Class(..)) => false,
        }
    }
}

/// Scheduling metadata of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemMeta {
    /// What the access may alias.
    pub alias: AliasKey,
    /// Which memory unit(s) may execute it.
    pub claim: MemClaim,
}

/// One machine-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LirOp {
    /// Integer ALU operation (DU slot).
    Int(IntOp),
    /// Floating-point operation (FPU slot).
    Fp(FpOp),
    /// Address operation (AU slot).
    Addr(AddrOp),
    /// Memory operation (MU slot) with alias/claim metadata.
    Mem {
        /// The machine operation. Its `bank` field holds the home bank;
        /// the scheduler may retarget it when the claim is
        /// [`MemClaim::Either`].
        op: MemOp,
        /// Scheduling metadata.
        meta: MemMeta,
    },
    /// Interrupt-safe duplicated store: both copies of a duplicated
    /// variable are written in the *same cycle*, occupying MU0 and MU1
    /// together, so no interrupt can observe the copies out of sync
    /// (paper §3.2). Emitted instead of two independent stores when the
    /// driver's `interrupt_safe_dup` option is set.
    DupStorePair {
        /// The bank-X store.
        x: MemOp,
        /// The bank-Y store (same address, same source register).
        y: MemOp,
        /// What the pair may alias.
        alias: AliasKey,
    },
    /// Unconditional jump (PCU slot). Terminator.
    Jump(BlockId),
    /// Conditional branch (PCU slot). Terminator.
    Br {
        /// Condition register (branch taken when non-zero).
        cond: IReg,
        /// Target when non-zero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Function call (PCU slot). Reads its argument registers, writes
    /// the return register, and acts as a memory barrier.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument registers read at the call.
        reads: Vec<Reg>,
        /// Return register written by the callee.
        ret: Option<Reg>,
    },
    /// Return (PCU slot). Terminator.
    Ret {
        /// Registers the caller will read (the return value register).
        reads: Vec<Reg>,
    },
}

impl LirOp {
    /// True for block terminators.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, LirOp::Jump(_) | LirOp::Br { .. } | LirOp::Ret { .. })
    }

    /// Registers this operation reads.
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let addr_reads = |addr: &MemAddr, out: &mut Vec<Reg>| match addr {
            MemAddr::Absolute(_) => {}
            MemAddr::Base { base, .. } => out.push(Reg::Addr(*base)),
            MemAddr::AbsIndex { index, .. } => out.push(Reg::Int(*index)),
            MemAddr::BaseIndex { base, index, .. } => {
                out.push(Reg::Addr(*base));
                out.push(Reg::Int(*index));
            }
        };
        match self {
            LirOp::Int(op) => match *op {
                IntOp::Bin { lhs, rhs, .. } | IntOp::Cmp { lhs, rhs, .. } => {
                    out.push(Reg::Int(lhs));
                    if let IntOperand::Reg(r) = rhs {
                        out.push(Reg::Int(r));
                    }
                }
                IntOp::Mov { src, .. } | IntOp::Neg { src, .. } | IntOp::Not { src, .. } => {
                    out.push(Reg::Int(src));
                }
                IntOp::MovImm { .. } => {}
            },
            LirOp::Fp(op) => match *op {
                FpOp::Bin { lhs, rhs, .. } | FpOp::Cmp { lhs, rhs, .. } => {
                    out.push(Reg::Float(lhs));
                    out.push(Reg::Float(rhs));
                }
                FpOp::Mac { dst, a, b } => {
                    out.push(Reg::Float(dst));
                    out.push(Reg::Float(a));
                    out.push(Reg::Float(b));
                }
                FpOp::Mov { src, .. } | FpOp::Neg { src, .. } => out.push(Reg::Float(src)),
                FpOp::CvtItoF { src, .. } => out.push(Reg::Int(src)),
                FpOp::CvtFtoI { src, .. } => out.push(Reg::Float(src)),
                FpOp::MovImm { .. } => {}
            },
            LirOp::Addr(op) => match *op {
                AddrOp::Lea { .. } => {}
                AddrOp::AddIndex { base, index, .. } => {
                    out.push(Reg::Addr(base));
                    out.push(Reg::Int(index));
                }
                AddrOp::AddImm { base, .. } => out.push(Reg::Addr(base)),
                AddrOp::Mov { src, .. } => out.push(Reg::Addr(src)),
                AddrOp::ToInt { src, .. } => out.push(Reg::Addr(src)),
                AddrOp::FromInt { src, .. } => out.push(Reg::Int(src)),
            },
            LirOp::Mem { op, .. } => match op {
                MemOp::Load { addr, .. } => addr_reads(addr, &mut out),
                MemOp::Store { src, addr, .. } => {
                    out.push(*src);
                    addr_reads(addr, &mut out);
                }
            },
            LirOp::DupStorePair { x, .. } => {
                // Both halves read the same source and address registers.
                if let MemOp::Store { src, addr, .. } = x {
                    out.push(*src);
                    addr_reads(addr, &mut out);
                }
            }
            LirOp::Jump(_) => {}
            LirOp::Br { cond, .. } => out.push(Reg::Int(*cond)),
            LirOp::Call { reads, .. } => {
                out.extend(reads.iter().copied());
                // The callee observes and restores the stack pointers.
                out.push(Reg::Addr(dsp_machine::AReg::SP_X));
                out.push(Reg::Addr(dsp_machine::AReg::SP_Y));
            }
            LirOp::Ret { reads } => out.extend(reads.iter().copied()),
        }
        out
    }

    /// Registers this operation writes.
    #[must_use]
    pub fn writes(&self) -> Vec<Reg> {
        match self {
            LirOp::Int(op) => match *op {
                IntOp::Bin { dst, .. }
                | IntOp::Cmp { dst, .. }
                | IntOp::MovImm { dst, .. }
                | IntOp::Mov { dst, .. }
                | IntOp::Neg { dst, .. }
                | IntOp::Not { dst, .. } => vec![Reg::Int(dst)],
            },
            LirOp::Fp(op) => match *op {
                FpOp::Bin { dst, .. }
                | FpOp::Mac { dst, .. }
                | FpOp::MovImm { dst, .. }
                | FpOp::Mov { dst, .. }
                | FpOp::Neg { dst, .. }
                | FpOp::CvtItoF { dst, .. } => vec![Reg::Float(dst)],
                FpOp::Cmp { dst, .. } | FpOp::CvtFtoI { dst, .. } => vec![Reg::Int(dst)],
            },
            LirOp::Addr(op) => match *op {
                AddrOp::Lea { dst, .. }
                | AddrOp::AddIndex { dst, .. }
                | AddrOp::AddImm { dst, .. }
                | AddrOp::Mov { dst, .. }
                | AddrOp::FromInt { dst, .. } => vec![Reg::Addr(dst)],
                AddrOp::ToInt { dst, .. } => vec![Reg::Int(dst)],
            },
            LirOp::Mem { op, .. } => match op {
                MemOp::Load { dst, .. } => vec![*dst],
                MemOp::Store { .. } => vec![],
            },
            LirOp::DupStorePair { .. } => vec![],
            LirOp::Call { ret, .. } => {
                let mut out: Vec<Reg> = ret.iter().copied().collect();
                // Conservatively treat the stack pointers as written so
                // nothing migrates across the call.
                out.push(Reg::Addr(dsp_machine::AReg::SP_X));
                out.push(Reg::Addr(dsp_machine::AReg::SP_Y));
                out
            }
            LirOp::Jump(_) | LirOp::Br { .. } | LirOp::Ret { .. } => vec![],
        }
    }

    /// The memory metadata, for loads/stores.
    #[must_use]
    pub fn mem_meta(&self) -> Option<&MemMeta> {
        match self {
            LirOp::Mem { meta, .. } => Some(meta),
            _ => None,
        }
    }
}

/// A function lowered to LIR.
#[derive(Debug, Clone)]
pub struct LirFunction {
    /// Source-level name.
    pub name: String,
    /// Blocks indexed by [`BlockId`]; the entry is block
    /// [`LirFunction::entry`]. Every block ends with a terminator.
    pub blocks: Vec<Vec<LirOp>>,
    /// Entry block (the synthesized prologue block).
    pub entry: BlockId,
    /// Frame layout.
    pub frame: FrameLayout,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_ir::GlobalId;

    fn meta() -> MemMeta {
        MemMeta {
            alias: AliasKey::Class(
                Var::Global(GlobalId(0)),
                MemRef::direct(dsp_ir::MemBase::Global(GlobalId(0)), 0),
            ),
            claim: MemClaim::Fixed(Bank::X),
        }
    }

    #[test]
    fn reads_writes_of_mem_ops() {
        let load = LirOp::Mem {
            op: MemOp::Load {
                dst: Reg::Int(IReg(3)),
                addr: MemAddr::AbsIndex {
                    addr: 10,
                    index: IReg(4),
                },
                bank: Bank::X,
            },
            meta: meta(),
        };
        assert_eq!(load.reads(), vec![Reg::Int(IReg(4))]);
        assert_eq!(load.writes(), vec![Reg::Int(IReg(3))]);
    }

    #[test]
    fn frame_slots_do_not_alias_classes() {
        let a = AliasKey::Frame(Bank::X, 3);
        let b = AliasKey::Frame(Bank::X, 3);
        let c = AliasKey::Frame(Bank::X, 4);
        let d = AliasKey::Frame(Bank::Y, 3);
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c));
        assert!(!a.may_overlap(&d));
        let cls = match meta().alias {
            k @ AliasKey::Class(..) => k,
            AliasKey::Frame(..) => unreachable!(),
        };
        assert!(!a.may_overlap(&cls));
    }

    #[test]
    fn same_class_distinct_offsets_disjoint() {
        let base = dsp_ir::MemBase::Global(GlobalId(0));
        let k1 = AliasKey::Class(Var::Global(GlobalId(0)), MemRef::direct(base, 0));
        let k2 = AliasKey::Class(Var::Global(GlobalId(0)), MemRef::direct(base, 1));
        assert!(!k1.may_overlap(&k2));
        let k3 = AliasKey::Class(
            Var::Global(GlobalId(0)),
            MemRef::indexed(base, dsp_ir::VReg(9), 0),
        );
        assert!(k1.may_overlap(&k3));
    }

    #[test]
    fn call_reads_and_clobbers_stack_pointers() {
        let call = LirOp::Call {
            callee: FuncId(0),
            reads: vec![Reg::Int(IReg(1))],
            ret: Some(Reg::Int(IReg(0))),
        };
        assert!(call.reads().contains(&Reg::Addr(dsp_machine::AReg::SP_X)));
        assert!(call.writes().contains(&Reg::Addr(dsp_machine::AReg::SP_Y)));
        assert!(call.writes().contains(&Reg::Int(IReg(0))));
    }
}
