//! Liveness analysis and linear-scan register allocation.
//!
//! Virtual registers are mapped onto the physical integer and
//! floating-point files. Free registers are recycled through a FIFO so
//! short-lived temporaries spread across the file — reuse-induced
//! anti/output dependences are what limit the compaction pass, and a
//! FIFO keeps them rare. Excess pressure spills to the two stacks,
//! alternating banks so even spill traffic can pair.

use std::collections::{HashMap, HashSet, VecDeque};

use dsp_ir::{Function, Type, VReg};

use crate::conv::{FIRST_ALLOC, NUM_ALLOC};

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register index within the vreg's file.
    Reg(u8),
    /// A numbered spill slot (the frame layout maps slots to banks and
    /// offsets; slot k lands in bank k % 2).
    Spill(u32),
}

/// The allocation result for one function.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Location of every virtual register, indexed by [`VReg`].
    pub loc: Vec<Loc>,
    /// Number of spill slots used.
    pub spill_slots: u32,
}

impl Assignment {
    /// Location of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn of(&self, v: VReg) -> Loc {
        self.loc[v.index()]
    }
}

/// Per-block liveness sets.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// Virtual registers live at entry of each block.
    pub live_in: Vec<HashSet<VReg>>,
    /// Virtual registers live at exit of each block.
    pub live_out: Vec<HashSet<VReg>>,
}

/// Compute block-level liveness by iterative backward dataflow.
#[must_use]
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    // use[b]: upward-exposed uses; def[b]: defined before any use.
    let mut use_b = vec![HashSet::new(); n];
    let mut def_b = vec![HashSet::new(); n];
    for (bi, block) in f.blocks.iter().enumerate() {
        for op in &block.ops {
            for u in op.uses() {
                if !def_b[bi].contains(&u) {
                    use_b[bi].insert(u);
                }
            }
            if let Some(d) = op.def() {
                def_b[bi].insert(d);
            }
        }
    }
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| {
            b.terminator()
                .map(|t| t.successors().iter().map(|b| b.index()).collect())
                .unwrap_or_default()
        })
        .collect();
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out: HashSet<VReg> = HashSet::new();
            for &s in &succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<VReg> = out.difference(&def_b[b]).copied().collect();
            inn.extend(use_b[b].iter().copied());
            if inn != live_in[b] || out != live_out[b] {
                live_in[b] = inn;
                live_out[b] = out;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VReg,
    start: u32,
    end: u32,
}

/// Run linear-scan allocation over `f`.
///
/// Scalar parameters are treated as defined at position 0 (the prologue
/// copies them from the argument registers).
#[must_use]
pub fn allocate(f: &Function) -> Assignment {
    let live = liveness(f);
    // Linearize: global op positions in block order; record block spans.
    let mut pos = 0u32;
    let mut spans = Vec::with_capacity(f.blocks.len());
    for block in &f.blocks {
        let start = pos;
        pos += block.ops.len().max(1) as u32;
        spans.push((start, pos - 1));
    }

    let mut ivals: HashMap<VReg, Interval> = HashMap::new();
    let touch = |v: VReg, at: u32, ivals: &mut HashMap<VReg, Interval>| {
        let e = ivals.entry(v).or_insert(Interval {
            vreg: v,
            start: at,
            end: at,
        });
        e.start = e.start.min(at);
        e.end = e.end.max(at);
    };
    // Scalar params occupy the first vregs; they are live from entry.
    let mut scalar_params = 0u32;
    for p in &f.params {
        if matches!(p.kind, dsp_ir::ParamKind::Value(_)) {
            touch(VReg(scalar_params), 0, &mut ivals);
            scalar_params += 1;
        }
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        let (bstart, bend) = spans[bi];
        for v in &live.live_in[bi] {
            touch(*v, bstart, &mut ivals);
        }
        for v in &live.live_out[bi] {
            touch(*v, bend, &mut ivals);
        }
        for (oi, op) in block.ops.iter().enumerate() {
            let at = bstart + oi as u32;
            for u in op.uses() {
                touch(u, at, &mut ivals);
            }
            if let Some(d) = op.def() {
                touch(d, at, &mut ivals);
            }
        }
    }

    // Linear scan per class.
    let mut loc = vec![Loc::Reg(FIRST_ALLOC); f.vregs.len()];
    let mut spill_slots = 0u32;
    for class in [Type::Int, Type::Float] {
        let mut list: Vec<Interval> = ivals
            .values()
            .copied()
            .filter(|iv| f.vreg_ty(iv.vreg) == class)
            .collect();
        list.sort_by_key(|iv| (iv.start, iv.vreg));
        let mut free: VecDeque<u8> = (FIRST_ALLOC..FIRST_ALLOC + NUM_ALLOC as u8).collect();
        // Active intervals: (end, vreg, reg).
        let mut active: Vec<(u32, VReg, u8)> = Vec::new();
        for iv in list {
            active.retain(|&(end, _, reg)| {
                if end < iv.start {
                    free.push_back(reg);
                    false
                } else {
                    true
                }
            });
            if let Some(reg) = free.pop_front() {
                loc[iv.vreg.index()] = Loc::Reg(reg);
                active.push((iv.end, iv.vreg, reg));
            } else {
                // Spill the interval that ends last (it or the new one).
                let (furthest_idx, &(fend, fvreg, freg)) = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(end, _, _))| end)
                    .expect("active non-empty when out of registers");
                if fend > iv.end {
                    loc[fvreg.index()] = Loc::Spill(spill_slots);
                    loc[iv.vreg.index()] = Loc::Reg(freg);
                    active.remove(furthest_idx);
                    active.push((iv.end, iv.vreg, freg));
                } else {
                    loc[iv.vreg.index()] = Loc::Spill(spill_slots);
                }
                spill_slots += 1;
            }
        }
    }
    Assignment { loc, spill_slots }
}

/// The set of physical (class, register-index) pairs an assignment uses
/// — the prologue must save exactly these.
#[must_use]
pub fn used_regs(f: &Function, asn: &Assignment) -> Vec<(Type, u8)> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = bi;
        for op in &block.ops {
            if let Some(d) = op.def() {
                if let Loc::Reg(r) = asn.of(d) {
                    let key = (f.vreg_ty(d), r);
                    if seen.insert(key) {
                        out.push(key);
                    }
                }
            }
        }
    }
    out.sort_by_key(|&(ty, r)| (matches!(ty, Type::Float), r));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_frontend::compile_str;

    fn main_fn(src: &str) -> Function {
        let p = compile_str(src).unwrap();
        p.func(p.main.unwrap()).clone()
    }

    #[test]
    fn small_function_gets_registers() {
        let f = main_fn("int out; void main() { int a; int b; a = 1; b = 2; out = a + b; }");
        let asn = allocate(&f);
        assert_eq!(asn.spill_slots, 0);
        for l in &asn.loc {
            assert!(matches!(l, Loc::Reg(r) if *r >= FIRST_ALLOC));
        }
    }

    #[test]
    fn disjoint_lifetimes_share_registers() {
        // Many sequential temporaries: distinct vregs, but at most a few
        // live at once.
        let mut body = String::from("int out; void main() { out = 0;\n");
        for i in 0..200 {
            body.push_str(&format!("out = out + {i};\n"));
        }
        body.push('}');
        let f = main_fn(&body);
        let asn = allocate(&f);
        assert_eq!(asn.spill_slots, 0, "sequential temps must not spill");
    }

    #[test]
    fn high_pressure_spills() {
        // 30 simultaneously live scalars exceed the 23 allocatable regs.
        let mut src = String::from("int out; void main() {\n");
        for i in 0..30 {
            src.push_str(&format!("int v{i}; v{i} = {i};\n"));
        }
        src.push_str("out = 0;\n");
        for i in 0..30 {
            src.push_str(&format!("out = out + v{i};\n"));
        }
        src.push('}');
        let f = main_fn(&src);
        let asn = allocate(&f);
        assert!(asn.spill_slots > 0, "30 live values must spill");
        // No physical register may host two simultaneously live vregs:
        // spot-check by counting distinct assigned regs <= NUM_ALLOC.
        let distinct: HashSet<u8> = asn
            .loc
            .iter()
            .filter_map(|l| match l {
                Loc::Reg(r) => Some(*r),
                Loc::Spill(_) => None,
            })
            .collect();
        assert!(distinct.len() <= NUM_ALLOC);
    }

    #[test]
    fn liveness_through_loop() {
        let f = main_fn(
            "int out; void main() { int i; int acc; acc = 0;
             for (i = 0; i < 10; i++) acc = acc + i;
             out = acc; }",
        );
        let live = liveness(&f);
        // acc's vreg must be live around the loop back edge: find the
        // header (a block with a conditional branch) and check something
        // is live into it.
        let header = f
            .blocks
            .iter()
            .position(|b| matches!(b.terminator(), Some(dsp_ir::ops::Op::Br { .. })))
            .expect("has a header");
        assert!(!live.live_in[header].is_empty());
    }

    #[test]
    fn float_and_int_files_allocated_independently() {
        let f = main_fn(
            "float out; void main() { int i; float x; x = 0.0;
             for (i = 0; i < 4; i++) x = x + 1.5;
             out = x; }",
        );
        let asn = allocate(&f);
        assert_eq!(asn.spill_slots, 0);
    }
}
