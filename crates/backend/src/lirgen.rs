//! Lowering from register-allocated IR to LIR.
//!
//! Responsibilities:
//!
//! * addressing-mode selection (absolute, absolute+index, SP-relative);
//! * the calling convention (argument moves, return-value moves);
//! * prologue/epilogue: callee-saved register saves/restores split
//!   across the two stacks in alternation, and the dual stack-pointer
//!   adjustments (the paper's two program stacks, §3.1);
//! * spill-slot reloads/write-backs through the scratch registers;
//! * **duplicated-data maintenance**: a store to a duplicated variable
//!   emits one store per bank, and loads from duplicated variables are
//!   tagged [`MemClaim::Either`] so the compaction pass may satisfy them
//!   from whichever bank has a free memory unit (paper §3.2).

use dsp_bankalloc::BankAllocation;
use dsp_ir::ops::{Arg, MemBase, MemRef, Op};
use dsp_ir::{BlockId, FuncId, Function, ParamKind, Program, Type, VReg};
use dsp_machine::{AReg, AddrOp, Bank, FReg, FpOp, IReg, IntOp, IntOperand, MemAddr, MemOp, Reg};
use dsp_sched::MemClaim;

use crate::conv;
use crate::layout::{DataLayout, FrameLayout};
use crate::lir::{AliasKey, LirFunction, LirOp, MemMeta};
use crate::regalloc::{allocate, used_regs, Assignment, Loc};

/// Errors produced while lowering to LIR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LirGenError {
    /// A call passes more arguments of one kind than the convention has
    /// registers for.
    TooManyArgs {
        /// The offending function.
        func: String,
    },
}

impl std::fmt::Display for LirGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LirGenError::TooManyArgs { func } => {
                write!(
                    f,
                    "function `{func}` exceeds the {}-argument-per-kind convention",
                    conv::MAX_ARGS
                )
            }
        }
    }
}

impl std::error::Error for LirGenError {}

/// Code-generation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct LirGenOptions {
    /// Emit duplicated-data stores as atomic [`LirOp::DupStorePair`]s
    /// that update both bank copies in one cycle, so interrupts can
    /// never observe the copies out of sync (paper §3.2). Costs
    /// schedule flexibility: the pair needs both memory units free.
    pub interrupt_safe_dup: bool,
}

/// Lower one function.
///
/// # Errors
///
/// Returns [`LirGenError`] when a signature or call site exceeds the
/// argument-register convention.
pub fn lower_function(
    program: &Program,
    func: FuncId,
    alloc: &BankAllocation,
    layout: &DataLayout,
) -> Result<LirFunction, LirGenError> {
    lower_function_with(program, func, alloc, layout, LirGenOptions::default())
}

/// [`lower_function`] with explicit [`LirGenOptions`].
///
/// # Errors
///
/// Returns [`LirGenError`] when a signature or call site exceeds the
/// argument-register convention.
pub fn lower_function_with(
    program: &Program,
    func: FuncId,
    alloc: &BankAllocation,
    layout: &DataLayout,
    options: LirGenOptions,
) -> Result<LirFunction, LirGenError> {
    lower_function_timed(program, func, alloc, layout, options).map(|(lir, _)| lir)
}

/// Wall times of the two phases of lowering one function.
#[derive(Debug, Clone, Copy, Default)]
pub struct LirGenTimings {
    /// Register allocation ([`allocate`]).
    pub regalloc: std::time::Duration,
    /// Instruction selection and frame construction (everything else).
    pub lower: std::time::Duration,
}

/// [`lower_function_with`], reporting per-phase wall times.
///
/// # Errors
///
/// Returns [`LirGenError`] when a signature or call site exceeds the
/// argument-register convention.
pub fn lower_function_timed(
    program: &Program,
    func: FuncId,
    alloc: &BankAllocation,
    layout: &DataLayout,
    options: LirGenOptions,
) -> Result<(LirFunction, LirGenTimings), LirGenError> {
    let start = std::time::Instant::now();
    let f = program.func(func);
    check_arg_counts(f)?;
    let regalloc_start = std::time::Instant::now();
    let asn = allocate(f);
    let regalloc_time = regalloc_start.elapsed();

    // The save set: every allocatable register the body writes, the
    // homes of scalar and array parameters, and the spill scratches if
    // spilling happens at all.
    let mut saves: Vec<Reg> = Vec::new();
    for (ty, r) in used_regs(f, &asn) {
        saves.push(match ty {
            Type::Int => Reg::Int(IReg(r)),
            Type::Float => Reg::Float(FReg(r)),
        });
    }
    let mut scalar_seen = 0usize;
    let mut arrays_seen = 0usize;
    for (pi, p) in f.params.iter().enumerate() {
        match p.kind {
            ParamKind::Value(_) => {
                if let Loc::Reg(r) = asn.of(VReg(scalar_seen as u32)) {
                    let reg = match f.vreg_ty(VReg(scalar_seen as u32)) {
                        Type::Int => Reg::Int(IReg(r)),
                        Type::Float => Reg::Float(FReg(r)),
                    };
                    if !saves.contains(&reg) {
                        saves.push(reg);
                    }
                }
                scalar_seen += 1;
            }
            ParamKind::Array(_) => {
                let home = Reg::Addr(conv::param_home(pi_to_array_index(f, pi)));
                if !saves.contains(&home) {
                    saves.push(home);
                }
                arrays_seen += 1;
            }
        }
    }
    let _ = arrays_seen;
    if asn.spill_slots > 0 {
        for s in conv::SCRATCH_I {
            saves.push(Reg::Int(s));
        }
        for s in conv::SCRATCH_F {
            saves.push(Reg::Float(s));
        }
    }

    let frame = FrameLayout::compute(program, alloc, func, saves.len(), asn.spill_slots);

    let mut cx = Cx {
        program,
        func,
        f,
        alloc,
        layout,
        asn: &asn,
        frame: &frame,
        saves: &saves,
        options,
    };

    let mut blocks: Vec<Vec<LirOp>> = Vec::with_capacity(f.blocks.len() + 1);
    for (bi, block) in f.iter_blocks() {
        let mut out = Vec::new();
        for op in &block.ops {
            cx.lower_op(op, &mut out)?;
        }
        let _ = bi;
        blocks.push(out);
    }
    // Dedicated prologue block jumping to the IR entry (the IR entry may
    // be a branch target; the prologue must execute exactly once).
    let prologue_id = BlockId(blocks.len() as u32);
    let mut prologue = Vec::new();
    cx.emit_prologue(&mut prologue);
    prologue.push(LirOp::Jump(f.entry));
    blocks.push(prologue);

    let lir = LirFunction {
        name: f.name.clone(),
        blocks,
        entry: prologue_id,
        frame,
    };
    let timings = LirGenTimings {
        regalloc: regalloc_time,
        lower: start.elapsed().saturating_sub(regalloc_time),
    };
    Ok((lir, timings))
}

/// The index of parameter `pi` among the *array* parameters.
fn pi_to_array_index(f: &Function, pi: usize) -> usize {
    f.params[..pi]
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Array(_)))
        .count()
}

fn check_arg_counts(f: &Function) -> Result<(), LirGenError> {
    let ints = f
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Value(Type::Int)))
        .count();
    let floats = f
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Value(Type::Float)))
        .count();
    let arrays = f
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Array(_)))
        .count();
    if ints > conv::MAX_ARGS || floats > conv::MAX_ARGS || arrays > conv::MAX_ARGS {
        return Err(LirGenError::TooManyArgs {
            func: f.name.clone(),
        });
    }
    Ok(())
}

struct Cx<'a> {
    program: &'a Program,
    func: FuncId,
    f: &'a Function,
    alloc: &'a BankAllocation,
    layout: &'a DataLayout,
    asn: &'a Assignment,
    frame: &'a FrameLayout,
    saves: &'a [Reg],
    options: LirGenOptions,
}

impl Cx<'_> {
    /// Spill-slot address within its bank's frame, relative to the
    /// *current* (bumped) stack pointer.
    fn spill_addr(&self, slot: u32) -> (Bank, MemAddr, AliasKey) {
        let (bank, off) = self.frame.spill_off[slot as usize];
        let sp = sp_of(bank);
        let disp = off as i32 - self.frame.frame_words(bank) as i32;
        (
            bank,
            MemAddr::Base {
                base: sp,
                offset: disp,
            },
            AliasKey::Frame(bank, off),
        )
    }

    fn spill_load(&self, slot: u32, dst: Reg, out: &mut Vec<LirOp>) {
        let (bank, addr, alias) = self.spill_addr(slot);
        out.push(LirOp::Mem {
            op: MemOp::Load { dst, addr, bank },
            meta: MemMeta {
                alias,
                claim: MemClaim::Fixed(bank),
            },
        });
    }

    fn spill_store(&self, slot: u32, src: Reg, out: &mut Vec<LirOp>) {
        let (bank, addr, alias) = self.spill_addr(slot);
        out.push(LirOp::Mem {
            op: MemOp::Store { src, addr, bank },
            meta: MemMeta {
                alias,
                claim: MemClaim::Fixed(bank),
            },
        });
    }

    /// Materialize an integer vreg for reading; spilled vregs reload
    /// into scratch `which`.
    fn read_i(&self, v: VReg, which: usize, out: &mut Vec<LirOp>) -> IReg {
        match self.asn.of(v) {
            Loc::Reg(r) => IReg(r),
            Loc::Spill(slot) => {
                let s = conv::SCRATCH_I[which];
                self.spill_load(slot, Reg::Int(s), out);
                s
            }
        }
    }

    fn read_f(&self, v: VReg, which: usize, out: &mut Vec<LirOp>) -> FReg {
        match self.asn.of(v) {
            Loc::Reg(r) => FReg(r),
            Loc::Spill(slot) => {
                let s = conv::SCRATCH_F[which];
                self.spill_load(slot, Reg::Float(s), out);
                s
            }
        }
    }

    /// The destination register for defining `v`; spilled vregs compute
    /// into scratch 0 and `finish_write` stores it back.
    fn write_i(&self, v: VReg) -> IReg {
        match self.asn.of(v) {
            Loc::Reg(r) => IReg(r),
            Loc::Spill(_) => conv::SCRATCH_I[0],
        }
    }

    fn write_f(&self, v: VReg) -> FReg {
        match self.asn.of(v) {
            Loc::Reg(r) => FReg(r),
            Loc::Spill(_) => conv::SCRATCH_F[0],
        }
    }

    fn finish_write(&self, v: VReg, out: &mut Vec<LirOp>) {
        if let Loc::Spill(slot) = self.asn.of(v) {
            let reg = match self.f.vreg_ty(v) {
                Type::Int => Reg::Int(conv::SCRATCH_I[0]),
                Type::Float => Reg::Float(conv::SCRATCH_F[0]),
            };
            self.spill_store(slot, reg, out);
        }
    }

    /// Build the machine address + claim info for an IR memory
    /// reference.
    fn mem_addr(&self, addr: &MemRef, out: &mut Vec<LirOp>) -> (MemAddr, Bank, bool, AliasKey) {
        let bank = self.alloc.bank_of_base(self.func, addr.base);
        let dup = self.alloc.is_duplicated_base(self.func, addr.base);
        let class = self.alloc.alias().class_of_base(self.func, addr.base);
        let alias = AliasKey::Class(class, *addr);
        let idx = addr.index.map(|v| self.read_i(v, 1, out));
        let machine = match addr.base {
            MemBase::Global(g) => {
                let base = self.layout.global_addr[g.index()] as i64 + i64::from(addr.offset);
                match idx {
                    None => {
                        debug_assert!(base >= 0, "direct access below the bank");
                        MemAddr::Absolute(base as u32)
                    }
                    Some(i) => MemAddr::AbsIndex {
                        addr: base as i32,
                        index: i,
                    },
                }
            }
            MemBase::Local(l) => {
                let (lbank, off) = self.frame.local_off[l.index()];
                debug_assert_eq!(lbank, bank, "local bank mismatch");
                let sp = sp_of(bank);
                let disp = off as i32 + addr.offset - self.frame.frame_words(bank) as i32;
                match idx {
                    None => MemAddr::Base {
                        base: sp,
                        offset: disp,
                    },
                    Some(i) => MemAddr::BaseIndex {
                        base: sp,
                        index: i,
                        offset: disp,
                    },
                }
            }
            MemBase::Param(pi) => {
                let home = conv::param_home(pi_to_array_index(self.f, pi));
                match idx {
                    None => MemAddr::Base {
                        base: home,
                        offset: addr.offset,
                    },
                    Some(i) => MemAddr::BaseIndex {
                        base: home,
                        index: i,
                        offset: addr.offset,
                    },
                }
            }
        };
        (machine, bank, dup, alias)
    }

    #[allow(clippy::too_many_lines)]
    fn lower_op(&mut self, op: &Op, out: &mut Vec<LirOp>) -> Result<(), LirGenError> {
        match op {
            Op::MovI { dst, src } => {
                let d = self.write_i(*dst);
                let lir = match src {
                    dsp_ir::ops::IOperand::Imm(c) => IntOp::MovImm { dst: d, imm: *c },
                    dsp_ir::ops::IOperand::Reg(r) => IntOp::Mov {
                        dst: d,
                        src: self.read_i(*r, 0, out),
                    },
                };
                out.push(LirOp::Int(lir));
                self.finish_write(*dst, out);
            }
            Op::MovF { dst, src } => {
                let d = self.write_f(*dst);
                let lir = match src {
                    dsp_ir::ops::FOperand::Imm(c) => FpOp::MovImm { dst: d, imm: *c },
                    dsp_ir::ops::FOperand::Reg(r) => FpOp::Mov {
                        dst: d,
                        src: self.read_f(*r, 0, out),
                    },
                };
                out.push(LirOp::Fp(lir));
                self.finish_write(*dst, out);
            }
            Op::IBin {
                kind,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.read_i(*lhs, 0, out);
                let b = match rhs {
                    dsp_ir::ops::IOperand::Imm(c) => IntOperand::Imm(*c),
                    dsp_ir::ops::IOperand::Reg(r) => IntOperand::Reg(self.read_i(*r, 1, out)),
                };
                let d = self.write_i(*dst);
                out.push(LirOp::Int(IntOp::Bin {
                    kind: *kind,
                    dst: d,
                    lhs: a,
                    rhs: b,
                }));
                self.finish_write(*dst, out);
            }
            Op::ICmp {
                kind,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.read_i(*lhs, 0, out);
                let b = match rhs {
                    dsp_ir::ops::IOperand::Imm(c) => IntOperand::Imm(*c),
                    dsp_ir::ops::IOperand::Reg(r) => IntOperand::Reg(self.read_i(*r, 1, out)),
                };
                let d = self.write_i(*dst);
                out.push(LirOp::Int(IntOp::Cmp {
                    kind: *kind,
                    dst: d,
                    lhs: a,
                    rhs: b,
                }));
                self.finish_write(*dst, out);
            }
            Op::INeg { dst, src } => {
                let s = self.read_i(*src, 0, out);
                let d = self.write_i(*dst);
                out.push(LirOp::Int(IntOp::Neg { dst: d, src: s }));
                self.finish_write(*dst, out);
            }
            Op::INot { dst, src } => {
                let s = self.read_i(*src, 0, out);
                let d = self.write_i(*dst);
                out.push(LirOp::Int(IntOp::Not { dst: d, src: s }));
                self.finish_write(*dst, out);
            }
            Op::FBin {
                kind,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.read_f(*lhs, 0, out);
                let b = self.read_f(*rhs, 1, out);
                let d = self.write_f(*dst);
                out.push(LirOp::Fp(FpOp::Bin {
                    kind: *kind,
                    dst: d,
                    lhs: a,
                    rhs: b,
                }));
                self.finish_write(*dst, out);
            }
            Op::FCmp {
                kind,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.read_f(*lhs, 0, out);
                let b = self.read_f(*rhs, 1, out);
                let d = self.write_i(*dst);
                out.push(LirOp::Fp(FpOp::Cmp {
                    kind: *kind,
                    dst: d,
                    lhs: a,
                    rhs: b,
                }));
                self.finish_write(*dst, out);
            }
            Op::FNeg { dst, src } => {
                let s = self.read_f(*src, 0, out);
                let d = self.write_f(*dst);
                out.push(LirOp::Fp(FpOp::Neg { dst: d, src: s }));
                self.finish_write(*dst, out);
            }
            Op::FMac { acc, a, b } => {
                let fa = self.read_f(*a, 0, out);
                let fb = self.read_f(*b, 1, out);
                // The accumulator is read and written; a spilled
                // accumulator flows through the float return register,
                // which is free between calls (both scratches may be
                // busy with the factors).
                let d = match self.asn.of(*acc) {
                    Loc::Reg(r) => FReg(r),
                    Loc::Spill(slot) => {
                        let s = conv::RET_F;
                        self.spill_load(slot, Reg::Float(s), out);
                        s
                    }
                };
                out.push(LirOp::Fp(FpOp::Mac {
                    dst: d,
                    a: fa,
                    b: fb,
                }));
                if let Loc::Spill(slot) = self.asn.of(*acc) {
                    self.spill_store(slot, Reg::Float(d), out);
                }
            }
            Op::ItoF { dst, src } => {
                let s = self.read_i(*src, 0, out);
                let d = self.write_f(*dst);
                out.push(LirOp::Fp(FpOp::CvtItoF { dst: d, src: s }));
                self.finish_write(*dst, out);
            }
            Op::FtoI { dst, src } => {
                let s = self.read_f(*src, 0, out);
                let d = self.write_i(*dst);
                out.push(LirOp::Fp(FpOp::CvtFtoI { dst: d, src: s }));
                self.finish_write(*dst, out);
            }
            Op::Load { dst, addr } => {
                let (machine, bank, dup, alias) = self.mem_addr(addr, out);
                let d = match self.f.vreg_ty(*dst) {
                    Type::Int => Reg::Int(self.write_i(*dst)),
                    Type::Float => Reg::Float(self.write_f(*dst)),
                };
                let claim = if dup {
                    MemClaim::Either
                } else {
                    MemClaim::Fixed(bank)
                };
                out.push(LirOp::Mem {
                    op: MemOp::Load {
                        dst: d,
                        addr: machine,
                        bank,
                    },
                    meta: MemMeta { alias, claim },
                });
                self.finish_write(*dst, out);
            }
            Op::Store { src, addr } => {
                let (machine, bank, dup, alias) = self.mem_addr(addr, out);
                let s = match self.f.vreg_ty(*src) {
                    Type::Int => Reg::Int(self.read_i(*src, 0, out)),
                    Type::Float => Reg::Float(self.read_f(*src, 0, out)),
                };
                if dup && self.options.interrupt_safe_dup {
                    // Atomic pair: both copies written in one cycle.
                    let (xb, yb) = match bank {
                        Bank::X => (bank, bank.other()),
                        Bank::Y => (bank.other(), bank),
                    };
                    out.push(LirOp::DupStorePair {
                        x: MemOp::Store {
                            src: s,
                            addr: machine,
                            bank: xb,
                        },
                        y: MemOp::Store {
                            src: s,
                            addr: machine,
                            bank: yb,
                        },
                        alias,
                    });
                } else {
                    out.push(LirOp::Mem {
                        op: MemOp::Store {
                            src: s,
                            addr: machine,
                            bank,
                        },
                        meta: MemMeta {
                            alias,
                            claim: MemClaim::Fixed(bank),
                        },
                    });
                    if dup {
                        // The bookkeeping store keeping the second copy
                        // coherent (paper §3.2).
                        let other = bank.other();
                        out.push(LirOp::Mem {
                            op: MemOp::Store {
                                src: s,
                                addr: machine,
                                bank: other,
                            },
                            meta: MemMeta {
                                alias,
                                claim: MemClaim::Fixed(other),
                            },
                        });
                    }
                }
            }
            Op::Call { dst, callee, args } => {
                let callee_f = self.program.func(*callee);
                let mut reads = Vec::new();
                let mut ints = 0usize;
                let mut floats = 0usize;
                let mut arrays = 0usize;
                for (a, p) in args.iter().zip(&callee_f.params) {
                    match (a, p.kind) {
                        (Arg::Value(v), ParamKind::Value(Type::Int)) => {
                            if ints >= conv::MAX_ARGS {
                                return Err(LirGenError::TooManyArgs {
                                    func: callee_f.name.clone(),
                                });
                            }
                            let dst = conv::arg_i(ints);
                            let s = self.read_i(*v, 0, out);
                            out.push(LirOp::Int(IntOp::Mov { dst, src: s }));
                            reads.push(Reg::Int(dst));
                            ints += 1;
                        }
                        (Arg::Value(v), ParamKind::Value(Type::Float)) => {
                            if floats >= conv::MAX_ARGS {
                                return Err(LirGenError::TooManyArgs {
                                    func: callee_f.name.clone(),
                                });
                            }
                            let dst = conv::arg_f(floats);
                            let s = self.read_f(*v, 0, out);
                            out.push(LirOp::Fp(FpOp::Mov { dst, src: s }));
                            reads.push(Reg::Float(dst));
                            floats += 1;
                        }
                        (Arg::Array(base), ParamKind::Array(_)) => {
                            if arrays >= conv::MAX_ARGS {
                                return Err(LirGenError::TooManyArgs {
                                    func: callee_f.name.clone(),
                                });
                            }
                            let dst = conv::arg_a(arrays);
                            let op = match base {
                                MemBase::Global(g) => AddrOp::Lea {
                                    dst,
                                    addr: self.layout.global_addr[g.index()],
                                },
                                MemBase::Local(l) => {
                                    let (bank, off) = self.frame.local_off[l.index()];
                                    AddrOp::AddImm {
                                        dst,
                                        base: sp_of(bank),
                                        imm: off as i32 - self.frame.frame_words(bank) as i32,
                                    }
                                }
                                MemBase::Param(pi) => AddrOp::Mov {
                                    dst,
                                    src: conv::param_home(pi_to_array_index(self.f, *pi)),
                                },
                            };
                            out.push(LirOp::Addr(op));
                            reads.push(Reg::Addr(dst));
                            arrays += 1;
                        }
                        _ => unreachable!("validated call matches signature"),
                    }
                }
                let ret = dst.map(|d| match self.f.vreg_ty(d) {
                    Type::Int => Reg::Int(conv::RET_I),
                    Type::Float => Reg::Float(conv::RET_F),
                });
                out.push(LirOp::Call {
                    callee: *callee,
                    reads,
                    ret,
                });
                if let Some(d) = dst {
                    match self.f.vreg_ty(*d) {
                        Type::Int => {
                            let t = self.write_i(*d);
                            out.push(LirOp::Int(IntOp::Mov {
                                dst: t,
                                src: conv::RET_I,
                            }));
                        }
                        Type::Float => {
                            let t = self.write_f(*d);
                            out.push(LirOp::Fp(FpOp::Mov {
                                dst: t,
                                src: conv::RET_F,
                            }));
                        }
                    }
                    self.finish_write(*d, out);
                }
            }
            Op::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.read_i(*cond, 0, out);
                out.push(LirOp::Br {
                    cond: c,
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                });
            }
            Op::Jmp(b) => out.push(LirOp::Jump(*b)),
            Op::Ret(v) => {
                let mut reads = Vec::new();
                if let Some(v) = v {
                    match self.f.vreg_ty(*v) {
                        Type::Int => {
                            let s = self.read_i(*v, 0, out);
                            out.push(LirOp::Int(IntOp::Mov {
                                dst: conv::RET_I,
                                src: s,
                            }));
                            reads.push(Reg::Int(conv::RET_I));
                        }
                        Type::Float => {
                            let s = self.read_f(*v, 0, out);
                            out.push(LirOp::Fp(FpOp::Mov {
                                dst: conv::RET_F,
                                src: s,
                            }));
                            reads.push(Reg::Float(conv::RET_F));
                        }
                    }
                }
                self.emit_epilogue(out);
                out.push(LirOp::Ret { reads });
            }
        }
        Ok(())
    }

    /// Saves, stack bumps, and parameter moves.
    fn emit_prologue(&self, out: &mut Vec<LirOp>) {
        // 1. Save callee-saved registers at [entry SP + save offset].
        for (k, reg) in self.saves.iter().enumerate() {
            let (bank, off) = self.frame.save_off[k];
            out.push(LirOp::Mem {
                op: MemOp::Store {
                    src: *reg,
                    addr: MemAddr::Base {
                        base: sp_of(bank),
                        offset: off as i32,
                    },
                    bank,
                },
                meta: MemMeta {
                    alias: AliasKey::Frame(bank, off),
                    claim: MemClaim::Fixed(bank),
                },
            });
        }
        // 2. Bump both stack pointers.
        for bank in Bank::ALL {
            let words = self.frame.frame_words(bank);
            if words > 0 {
                out.push(LirOp::Addr(AddrOp::AddImm {
                    dst: sp_of(bank),
                    base: sp_of(bank),
                    imm: words as i32,
                }));
            }
        }
        // 3. Move incoming arguments into their homes.
        let mut scalar_vreg = 0u32;
        let mut ints = 0usize;
        let mut floats = 0usize;
        let mut arrays = 0usize;
        for p in &self.f.params {
            match p.kind {
                ParamKind::Value(Type::Int) => {
                    let v = VReg(scalar_vreg);
                    match self.asn.of(v) {
                        Loc::Reg(r) => out.push(LirOp::Int(IntOp::Mov {
                            dst: IReg(r),
                            src: conv::arg_i(ints),
                        })),
                        Loc::Spill(slot) => {
                            self.spill_store(slot, Reg::Int(conv::arg_i(ints)), out);
                        }
                    }
                    ints += 1;
                    scalar_vreg += 1;
                }
                ParamKind::Value(Type::Float) => {
                    let v = VReg(scalar_vreg);
                    match self.asn.of(v) {
                        Loc::Reg(r) => out.push(LirOp::Fp(FpOp::Mov {
                            dst: FReg(r),
                            src: conv::arg_f(floats),
                        })),
                        Loc::Spill(slot) => {
                            self.spill_store(slot, Reg::Float(conv::arg_f(floats)), out);
                        }
                    }
                    floats += 1;
                    scalar_vreg += 1;
                }
                ParamKind::Array(_) => {
                    out.push(LirOp::Addr(AddrOp::Mov {
                        dst: conv::param_home(arrays),
                        src: conv::arg_a(arrays),
                    }));
                    arrays += 1;
                }
            }
        }
    }

    /// Stack release and register restores (emitted before every `ret`).
    fn emit_epilogue(&self, out: &mut Vec<LirOp>) {
        // 1. Release the frames: SP returns to the frame base…
        for bank in Bank::ALL {
            let words = self.frame.frame_words(bank);
            if words > 0 {
                out.push(LirOp::Addr(AddrOp::AddImm {
                    dst: sp_of(bank),
                    base: sp_of(bank),
                    imm: -(words as i32),
                }));
            }
        }
        // 2. …so the save slots are at [SP + save offset] again.
        for (k, reg) in self.saves.iter().enumerate() {
            let (bank, off) = self.frame.save_off[k];
            out.push(LirOp::Mem {
                op: MemOp::Load {
                    dst: *reg,
                    addr: MemAddr::Base {
                        base: sp_of(bank),
                        offset: off as i32,
                    },
                    bank,
                },
                meta: MemMeta {
                    alias: AliasKey::Frame(bank, off),
                    claim: MemClaim::Fixed(bank),
                },
            });
        }
    }
}

/// The stack-pointer register of a bank.
#[must_use]
pub fn sp_of(bank: Bank) -> AReg {
    match bank {
        Bank::X => AReg::SP_X,
        Bank::Y => AReg::SP_Y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_bankalloc::{AllocOptions, DuplicationMode};
    use dsp_frontend::compile_str;

    fn lower_main(src: &str, opts: &AllocOptions) -> (Program, LirFunction) {
        let mut p = compile_str(src).unwrap();
        crate::opt::optimize(&mut p);
        let alloc = BankAllocation::compute(&p, opts, None);
        let layout = DataLayout::compute(&p, &alloc);
        let main = p.main.unwrap();
        let lir = lower_function(&p, main, &alloc, &layout).unwrap();
        (p, lir)
    }

    fn all_ops(lir: &LirFunction) -> impl Iterator<Item = &LirOp> {
        lir.blocks.iter().flatten()
    }

    #[test]
    fn store_to_duplicated_global_is_doubled() {
        let src = "float s[8]; float R[4];
                   void main() {
                     int n;
                     for (n = 0; n < 4; n++) R[n] += s[n] * s[n + 1];
                     s[0] = R[0];
                   }";
        let opts = AllocOptions {
            duplication: DuplicationMode::Partial,
            ..AllocOptions::default()
        };
        let (p, lir) = lower_main(src, &opts);
        let s = p.global_by_name("s").unwrap();
        let _ = s;
        // Count stores per bank touching class `s` (absolute addressing
        // of address 0..8 in both banks).
        let dup_stores: Vec<&LirOp> = all_ops(&lir)
            .filter(|o| {
                matches!(o, LirOp::Mem { op: MemOp::Store { .. }, meta }
                    if matches!(meta.alias, AliasKey::Class(v, _)
                        if matches!(v, dsp_bankalloc::Var::Global(g) if g == s)))
            })
            .collect();
        assert_eq!(dup_stores.len(), 2, "one store per bank: {dup_stores:?}");
        let banks: Vec<Bank> = dup_stores
            .iter()
            .filter_map(|o| match o {
                LirOp::Mem {
                    op: MemOp::Store { bank, .. },
                    ..
                } => Some(*bank),
                _ => None,
            })
            .collect();
        assert!(banks.contains(&Bank::X) && banks.contains(&Bank::Y));
    }

    #[test]
    fn duplicated_loads_claim_either_unit() {
        let src = "float s[8]; float R[4];
                   void main() {
                     int n;
                     for (n = 0; n < 4; n++) R[n] += s[n] * s[n + 1];
                   }";
        let opts = AllocOptions {
            duplication: DuplicationMode::Partial,
            ..AllocOptions::default()
        };
        let (_, lir) = lower_main(src, &opts);
        let either_loads = all_ops(&lir)
            .filter(|o| {
                matches!(o, LirOp::Mem { op: MemOp::Load { .. }, meta }
                    if meta.claim == MemClaim::Either)
            })
            .count();
        assert!(either_loads >= 2, "both s-loads should claim Either");
    }

    #[test]
    fn prologue_saves_alternate_banks() {
        let src = "int out; void main() { int a; int b; a = 1; b = 2; out = a * b; }";
        let (_, lir) = lower_main(src, &AllocOptions::default());
        let prologue = &lir.blocks[lir.entry.index()];
        let save_banks: Vec<Bank> = prologue
            .iter()
            .filter_map(|o| match o {
                LirOp::Mem {
                    op: MemOp::Store { bank, .. },
                    meta,
                } if matches!(meta.alias, AliasKey::Frame(..)) => Some(*bank),
                _ => None,
            })
            .collect();
        assert!(!save_banks.is_empty());
        for pair in save_banks.windows(2) {
            assert_ne!(pair[0], pair[1], "saves must alternate: {save_banks:?}");
        }
    }

    #[test]
    fn epilogue_restores_what_prologue_saves() {
        let src = "int out; void main() { int a; a = 3; out = a + a; }";
        let (_, lir) = lower_main(src, &AllocOptions::default());
        let saves: usize = lir.blocks[lir.entry.index()]
            .iter()
            .filter(|o| {
                matches!(o, LirOp::Mem { op: MemOp::Store { .. }, meta }
                    if matches!(meta.alias, AliasKey::Frame(..)))
            })
            .count();
        let restores: usize = all_ops(&lir)
            .filter(|o| {
                matches!(o, LirOp::Mem { op: MemOp::Load { .. }, meta }
                    if matches!(meta.alias, AliasKey::Frame(..)))
            })
            .count();
        assert_eq!(saves, restores);
    }

    #[test]
    fn local_arrays_use_stack_relative_addressing() {
        let src = "int out;
                   void main() {
                     int t[4]; int i;
                     for (i = 0; i < 4; i++) t[i] = i;
                     out = t[2];
                   }";
        let (_, lir) = lower_main(src, &AllocOptions::default());
        let stack_mem = all_ops(&lir)
            .filter(|o| {
                matches!(o, LirOp::Mem { op, .. }
                    if matches!(op, MemOp::Store { addr: MemAddr::BaseIndex { .. }, .. }
                              | MemOp::Load { addr: MemAddr::Base { .. }, .. }
                              | MemOp::Load { addr: MemAddr::BaseIndex { .. }, .. }))
            })
            .count();
        assert!(stack_mem >= 2, "local array accesses must be SP-relative");
    }

    #[test]
    fn global_scalar_uses_absolute_addressing() {
        let src = "int g; int out; void main() { g = 3; out = g; }";
        let (_, lir) = lower_main(src, &AllocOptions::default());
        let absolute = all_ops(&lir)
            .filter(|o| {
                matches!(o, LirOp::Mem { op, .. }
                    if matches!(op, MemOp::Store { addr: MemAddr::Absolute(_), .. }
                              | MemOp::Load { addr: MemAddr::Absolute(_), .. }))
            })
            .count();
        assert!(absolute >= 2);
    }

    #[test]
    fn call_sequence_loads_arg_regs() {
        let src = "float A[4]; float out;
                   float head(float v[], int n) { return v[n]; }
                   void main() { out = head(A, 2); }";
        let mut p = compile_str(src).unwrap();
        crate::opt::optimize(&mut p);
        let alloc = BankAllocation::compute(&p, &AllocOptions::default(), None);
        let layout = DataLayout::compute(&p, &alloc);
        let lir = lower_function(&p, p.main.unwrap(), &alloc, &layout).unwrap();
        let call = all_ops(&lir)
            .find_map(|o| match o {
                LirOp::Call { reads, ret, .. } => Some((reads.clone(), *ret)),
                _ => None,
            })
            .expect("has a call");
        assert!(call.0.contains(&Reg::Addr(conv::arg_a(0))));
        assert!(call.0.contains(&Reg::Int(conv::arg_i(0))));
        assert_eq!(call.1, Some(Reg::Float(conv::RET_F)));
    }
}
