#![warn(missing_docs)]
//! Experiment harness reproducing the paper's figures and tables.
//!
//! The bench targets of this crate regenerate every evaluation artifact
//! of the paper (run with `cargo bench -p dsp-bench --bench <name>`):
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `fig7_kernels` | Figure 7 — kernel performance gain, CB vs Ideal |
//! | `fig8_applications` | Figure 8 — application gain, CB / Pr / Dup / Ideal |
//! | `table3_cost` | Table 3 — PG / CI / PCR for Full Dup, Partial Dup, CB, Ideal |
//! | `ablation_weights` | §4.1 ablation — loop-depth vs profile vs uniform edge weights |
//! | `algo_scaling` | wall-clock scaling of the partitioner and scheduler |
//!
//! Absolute cycle counts differ from the paper's (different substrate,
//! different benchmark data); the *shape* — who wins, by roughly what
//! factor, where the crossovers fall — is the reproduction target.

use std::sync::OnceLock;

use dsp_backend::Strategy;
use dsp_driver::{Engine, EngineError, RunReport};
use dsp_workloads::runner::{Measurement, RunError};
use dsp_workloads::Benchmark;

/// Percentage gain of `opt` cycles over `base` cycles.
#[must_use]
pub fn gain_pct(base: u64, opt: u64) -> f64 {
    (base as f64 / opt as f64 - 1.0) * 100.0
}

/// The process-wide [`Engine`] every bench target shares: repeated
/// measurements of the same (source, strategy) pair — common when one
/// target tabulates several overlapping strategy sets — compile exactly
/// once, and `parse`/`optimize`/`profile`/`reference` run once per
/// source across the whole process.
pub fn shared_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::default)
}

/// Run a full benches × strategies matrix on the [`shared_engine`],
/// returning the structured report (stage times, cache stats, JSON).
///
/// # Errors
///
/// Returns the first failing job in matrix order.
pub fn sweep_report(
    benches: &[Benchmark],
    strategies: &[Strategy],
) -> Result<RunReport, EngineError> {
    shared_engine().run_matrix(benches, strategies)
}

/// Measure a benchmark under the given strategies via the
/// [`shared_engine`] (parse/optimize/profile run once per source,
/// compiled artifacts are reused across calls).
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn measure_strategies(
    bench: &Benchmark,
    strategies: &[Strategy],
) -> Result<Vec<Measurement>, RunError> {
    let report = shared_engine()
        .run_matrix(std::slice::from_ref(bench), strategies)
        .map_err(|e| e.error)?;
    Ok(report.jobs.into_iter().map(|j| j.measurement).collect())
}

/// One-line cache/timing summary of the [`shared_engine`], printed by
/// bench targets after their tables.
#[must_use]
pub fn telemetry_footer() -> String {
    let c = shared_engine().cache().stats();
    format!(
        "[driver] cache: {} hits / {} misses ({:.0}% hit rate) — artifacts compiled {}, reused {}",
        c.hits(),
        c.misses(),
        c.hit_rate() * 100.0,
        c.artifact_misses,
        c.artifact_hits,
    )
}

/// Render an aligned text table.
#[must_use]
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width = vec![0usize; ncol];
    for (c, h) in headers.iter().enumerate() {
        width[c] = width[c].max(h.len());
    }
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            width[c] = width[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], width: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c == 0 {
                line.push_str(&format!("{cell:<w$}", w = width[c]));
            } else {
                line.push_str(&format!("  {cell:>w$}", w = width[c]));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers, &width));
    let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &width));
    }
    out
}

/// Geometric-mean free arithmetic mean, as the paper's Table 3 uses.
#[must_use]
pub fn arith_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_math() {
        assert!((gain_pct(149, 100) - 49.0).abs() < 1e-9);
        assert_eq!(gain_pct(100, 100), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name".into(), "v".into()],
            &[vec!["fir".into(), "49.0".into()]],
        );
        assert!(t.contains("fir"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn mean() {
        assert!((arith_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(arith_mean(&[]), 0.0);
    }
}
