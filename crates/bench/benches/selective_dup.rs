//! §5 extension experiment: selective (PCR-aware) duplication.
//!
//! The paper closes by proposing that the compiler "be more selective
//! in duplicating data to minimize storage while meeting the
//! performance requirements", using profiling to estimate performance
//! at compile time. [`dsp_backend::Strategy::SelectiveDup`] implements
//! that refinement: a duplication candidate is copied only when its
//! profiled same-array load pairing opportunities outweigh the
//! bookkeeping stores it would gain.
//!
//! This bench compares indiscriminate partial duplication against the
//! selective policy on the three applications the paper identified as
//! having duplication candidates, plus one with none as a control.
//!
//! Run: `cargo bench -p dsp-bench --bench selective_dup`

use dsp_backend::Strategy;
use dsp_bankalloc::TradeOff;
use dsp_bench::{measure_strategies, render_table};

fn main() {
    println!("== Selective duplication (paper §5 refinement) ==\n");
    let headers: Vec<String> = [
        "application",
        "Dup vars",
        "Sel vars",
        "Dup PG",
        "Dup CI",
        "Dup PCR",
        "Sel PG",
        "Sel CI",
        "Sel PCR",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    for name in ["lpc", "spectral", "V32encode", "edge_detect"] {
        let bench = dsp_workloads::by_name(name).expect("known benchmark");
        let ms = measure_strategies(
            &bench,
            &[
                Strategy::Baseline,
                Strategy::PartialDup,
                Strategy::SelectiveDup,
            ],
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let base = &ms[0];
        let dup = &ms[1];
        let sel = &ms[2];
        let t_dup = TradeOff::compute(base.cycles, base.memory_cost, dup.cycles, dup.memory_cost);
        let t_sel = TradeOff::compute(base.cycles, base.memory_cost, sel.cycles, sel.memory_cost);
        rows.push(vec![
            name.to_string(),
            dup.duplicated_vars.to_string(),
            sel.duplicated_vars.to_string(),
            format!("{:.2}", t_dup.pg),
            format!("{:.2}", t_dup.ci),
            format!("{:.2}", t_dup.pcr),
            format!("{:.2}", t_sel.pg),
            format!("{:.2}", t_sel.ci),
            format!("{:.2}", t_sel.pcr),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    println!(
        "Expected: lpc keeps its profitable copy (autocorrelation pairs far\n\
         outnumber window stores) and even sheds an unprofitable one;\n\
         spectral drops its store-heavy segment buffers, recovering plain\n\
         CB's better PCR; V32encode's scrambler passes the cycle criterion\n\
         but not a storage-aware one — the very case the paper says needs\n\
         the designer's performance/area priorities (§4.2); edge_detect is\n\
         a control with no candidates."
    );
    println!("\n{}", dsp_bench::telemetry_footer());
}
